//! Fault-injection suite: the serving runtime survives every fault class of
//! DESIGN.md §10 — kernel panics, NaN-poisoned frames, severed workers,
//! slow workers, and corrupted model bytes — with containment the contract:
//! the fault surfaces as a typed value, the blast radius is one task / one
//! lane / one load, and everything else stays bit-identical to serial.
//!
//! Every fault is manufactured by the seeded [`rtm_sim::faults`] harness,
//! so any failure here reproduces exactly from its seed.

use rtm_exec::{ExecError, Executor};
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtm_sim::faults::FaultInjector;
use rtm_sparse::BspcMatrix;
use rtm_tensor::rng::StdRng;
use rtm_tensor::Matrix;
use rtmobile::deploy::{BatchedSession, CompiledNetwork, RuntimePrecision};
use rtmobile::health::{HealthPolicy, NumericFault};
use rtmobile::model_file;

fn bsp_weight(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let keep: Vec<bool> = (0..cols).map(|_| rng.gen_f32() < 0.5).collect();
    Matrix::from_fn(rows, cols, |r, c| {
        if keep[c] {
            0.05 + ((r * 13 + c * 5) % 19) as f32 / 8.0
        } else {
            0.0
        }
    })
}

fn net() -> GruNetwork {
    GruNetwork::new(
        &NetworkConfig {
            input_dim: 6,
            hidden_dims: vec![12, 12],
            num_classes: 4,
        },
        23,
    )
}

fn stream(seed: usize, len: usize) -> Vec<Vec<f32>> {
    (0..len)
        .map(|t| {
            (0..6)
                .map(|i| ((seed * 131 + t * 6 + i) as f32 * 0.19).sin() * 0.5)
                .collect()
        })
        .collect()
}

/// Silences the default "thread panicked" chatter while injected panics
/// fly; restores the default hook on drop so other tests keep diagnostics.
struct QuietPanics;

impl QuietPanics {
    fn install() -> QuietPanics {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

#[test]
fn panic_storm_pool_stays_serviceable() {
    let _quiet = QuietPanics::install();
    let mut inj = FaultInjector::new(0xF00D);
    let w = bsp_weight(96, 64, 7);
    let m = BspcMatrix::from_dense(&w, 4, 4).unwrap();
    let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.11).cos()).collect();
    let serial_spmv = m.spmv(&x).unwrap();
    let xs: Vec<f32> = (0..64 * 4).map(|i| (i as f32 * 0.07).sin()).collect();
    let serial_spmm = m.spmm(&xs, 4).unwrap();

    let exec = Executor::new(4);
    for round in 0..20 {
        // Each storm round dispatches a batch in which one task panics.
        let victim = inj.pick(8);
        let tasks: Vec<rtm_exec::Task<'_>> = (0..8)
            .map(|t| -> rtm_exec::Task<'_> {
                if t == victim {
                    Box::new(move || panic!("storm {round}"))
                } else {
                    Box::new(move || {
                        std::hint::black_box(t);
                    })
                }
            })
            .collect();
        let err = exec.run(tasks).unwrap_err();
        assert!(err.is_panic(), "round {round}: {err:?}");
        match &err {
            ExecError::WorkerPanicked { message } => {
                assert!(message.contains("storm"), "payload survives: {message}")
            }
            other => panic!("wrong error class: {other:?}"),
        }
        // The very next batch on the same pool computes clean results,
        // bit-identical to serial.
        assert_eq!(
            exec.spmv_bspc(&m, &x).unwrap(),
            serial_spmv,
            "round {round}"
        );
        let mut ys = vec![0.0f32; 96 * 4];
        exec.spmm_bspc_into(&m, &xs, 4, &mut ys).unwrap();
        assert_eq!(ys, serial_spmm, "round {round}");
    }
    // Task panics never kill worker threads, so nothing was respawned.
    assert_eq!(exec.respawned_workers(), 0);
}

#[test]
fn severed_workers_respawn_and_serve() {
    let w = bsp_weight(64, 48, 11);
    let m = BspcMatrix::from_dense(&w, 4, 4).unwrap();
    let x: Vec<f32> = (0..48).map(|i| (i as f32 * 0.3).sin()).collect();
    let serial = m.spmv(&x).unwrap();
    let exec = Executor::new(4);
    assert_eq!(exec.spmv_bspc(&m, &x).unwrap(), serial);
    for _ in 0..3 {
        // Kill every worker thread; the next dispatch must heal the pool.
        exec.sever_workers();
        assert_eq!(exec.spmv_bspc(&m, &x).unwrap(), serial);
    }
    assert_eq!(exec.respawned_workers(), 9, "3 workers × 3 severances");
}

#[test]
fn slow_workers_change_nothing_but_wall_clock() {
    let mut inj = FaultInjector::new(0x0510);
    let w = bsp_weight(64, 48, 13);
    let m = BspcMatrix::from_dense(&w, 4, 4).unwrap();
    let x: Vec<f32> = (0..48).map(|i| (i as f32 * 0.21).cos()).collect();
    let serial = m.spmv(&x).unwrap();
    let exec = Executor::new(4);
    for _ in 0..5 {
        // A batch where some tasks stall on-CPU before computing.
        let mut out = vec![vec![0.0f32; 64]; 6];
        let tasks: Vec<rtm_exec::Task<'_>> = out
            .iter_mut()
            .map(|slot| {
                let stall = inj.fire(0.5);
                let m = &m;
                let x = &x;
                let task: rtm_exec::Task<'_> = Box::new(move || {
                    if stall {
                        FaultInjector::new(1).busy_wait_us(200);
                    }
                    m.spmv_into(x, slot).unwrap();
                });
                task
            })
            .collect();
        exec.run(tasks).unwrap();
        for slot in &out {
            assert_eq!(slot, &serial);
        }
    }
}

/// The acceptance scenario: one NaN-poisoned frame in an 8-lane batch is
/// quarantined while the remaining 7 lanes stay bit-identical to serial and
/// `ServeStats` reports exactly one quarantine.
#[test]
fn nan_lane_in_8_lane_batch_is_quarantined_alone() {
    let mut inj = FaultInjector::new(0xBAD_F00D);
    let compiled = CompiledNetwork::compile(&net(), 4, 4, RuntimePrecision::F32).unwrap();
    let mut streams: Vec<Vec<Vec<f32>>> = (0..8).map(|s| stream(s, 9)).collect();
    let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| compiled.forward(s)).collect();

    let victim = inj.pick(8);
    let frame = inj.pick(9);
    let (at, poison) = inj.poison_frame(&mut streams[victim][frame]);
    assert!(poison.is_nan());
    assert!(at < 6);

    for threads in [1usize, 2, 4] {
        let exec = Executor::new(threads);
        let mut session =
            BatchedSession::new(&compiled, &exec, 8).with_health(HealthPolicy::Quarantine);
        let out = session.run(&streams);
        let stats = session.stats();
        assert_eq!(stats.quarantined, 1, "exactly one quarantine");
        assert_eq!(stats.admitted, 8);
        assert_eq!(stats.completed, 7);
        for (s, (o, expect)) in out.iter().zip(&serial).enumerate() {
            if s == victim {
                // The poisoned stream stops at its last healthy frame.
                assert_eq!(o.len(), frame);
                assert_eq!(o[..], expect[..frame]);
            } else {
                assert_eq!(o, expect, "healthy lane {s} bit-identical to serial");
            }
        }
        assert_eq!(session.faults().len(), 1);
        let fault = session.faults()[0];
        assert_eq!(fault.stream, victim);
        assert_eq!(fault.frame, frame);
        assert_eq!(fault.fault, NumericFault::NaN);
    }
}

#[test]
fn check_mode_observes_the_fault_without_dropping_it() {
    let mut inj = FaultInjector::new(0xC0FFEE);
    let compiled = CompiledNetwork::compile(&net(), 4, 4, RuntimePrecision::F32).unwrap();
    let mut streams: Vec<Vec<Vec<f32>>> = (0..4).map(|s| stream(s, 6)).collect();
    let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| compiled.forward(s)).collect();
    let victim = inj.pick(4);
    inj.poison_frame(&mut streams[victim][2]);

    let exec = Executor::new(2);
    let mut session = BatchedSession::new(&compiled, &exec, 4).with_health(HealthPolicy::Check);
    let out = session.run(&streams);
    assert_eq!(session.stats().quarantined, 0);
    assert_eq!(session.stats().completed, 4);
    assert!(!session.faults().is_empty());
    assert_eq!(session.faults()[0].stream, victim);
    for (s, (o, expect)) in out.iter().zip(&serial).enumerate() {
        assert_eq!(o.len(), expect.len(), "stream {s} fully served");
        if s != victim {
            assert_eq!(o, expect, "healthy stream {s} bit-identical");
        }
    }
}

/// Seeded bit-flip and truncation fuzz over the `.rtm` decoder: ~10k
/// mutations (tunable via `RTM_FUZZ_ITERS`), and decoding must never panic
/// — every outcome is `Ok` or a typed `DecodeError`.
#[test]
fn model_decoder_survives_bitflip_and_truncation_fuzz() {
    let iters: usize = rtmobile::env::fuzz_iters().ok().flatten().unwrap_or(10_000);
    let compiled = CompiledNetwork::compile(&net(), 4, 4, RuntimePrecision::F16).unwrap();
    let pristine = model_file::to_bytes(&compiled);
    let mut inj = FaultInjector::new(0xFE11);
    let mut decoded_ok = 0usize;
    let mut rejected = 0usize;
    for i in 0..iters {
        let mut bytes = pristine.clone();
        if inj.fire(0.25) {
            // Truncation: a strictly short prefix.
            let at = inj.truncate_at(bytes.len());
            bytes.truncate(at);
        } else {
            // 1–3 bit flips anywhere in the file.
            for _ in 0..=inj.pick(3) {
                inj.flip_bit(&mut bytes);
            }
        }
        // Alternate between the plain decoder and the health-validating
        // one: both must return a value, never panic. (Value-section flips
        // can decode to NaN/Inf weights — exactly what the validating path
        // rejects as NonFinite.)
        let result = if i % 2 == 0 {
            model_file::from_bytes(&bytes).map(|_| ())
        } else {
            model_file::from_bytes_with(&bytes, HealthPolicy::Quarantine).map(|_| ())
        };
        match result {
            Ok(()) => decoded_ok += 1,
            Err(_) => rejected += 1,
        }
    }
    assert_eq!(decoded_ok + rejected, iters);
    // Sanity: the fuzz actually exercised the reject paths.
    assert!(rejected > iters / 4, "only {rejected}/{iters} rejected");
    // And the pristine bytes still decode under full validation.
    assert!(model_file::from_bytes_with(&pristine, HealthPolicy::Quarantine).is_ok());
}

/// The same bit-flip/truncation fuzz over a v3 model whose layers use the
/// non-default storage formats (BBS and CSB at int8): every per-format
/// wire codec behind the format-dispatched gate blobs must reject
/// corruption with a typed `DecodeError`, never a panic — and a flipped
/// format tag byte must surface as `BadFormat`/`BadMagic`, not as a
/// mis-dispatched decode.
#[test]
fn format_zoo_decoder_survives_bitflip_and_truncation_fuzz() {
    use rtmobile::RuntimeFormat;
    let iters: usize = rtmobile::env::fuzz_iters().ok().flatten().unwrap_or(10_000);
    let compiled = CompiledNetwork::compile_with_formats(
        &net(),
        4,
        4,
        &[],
        RuntimePrecision::Int8,
        &[RuntimeFormat::Bbs, RuntimeFormat::Csb],
        RuntimeFormat::Csr,
    )
    .unwrap();
    let pristine = model_file::to_bytes(&compiled);
    let mut inj = FaultInjector::new(0xF0F0);
    let mut decoded_ok = 0usize;
    let mut rejected = 0usize;
    for i in 0..iters {
        let mut bytes = pristine.clone();
        if inj.fire(0.25) {
            let at = inj.truncate_at(bytes.len());
            bytes.truncate(at);
        } else {
            for _ in 0..=inj.pick(3) {
                inj.flip_bit(&mut bytes);
            }
        }
        let result = if i % 2 == 0 {
            model_file::from_bytes(&bytes).map(|_| ())
        } else {
            model_file::from_bytes_with(&bytes, HealthPolicy::Quarantine).map(|_| ())
        };
        match result {
            Ok(()) => decoded_ok += 1,
            Err(_) => rejected += 1,
        }
    }
    assert_eq!(decoded_ok + rejected, iters);
    assert!(rejected > iters / 4, "only {rejected}/{iters} rejected");
    assert!(model_file::from_bytes_with(&pristine, HealthPolicy::Quarantine).is_ok());
}
