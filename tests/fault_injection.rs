//! Fault-injection suite: the serving runtime survives every fault class of
//! DESIGN.md §10 — kernel panics, NaN-poisoned frames, severed workers,
//! slow workers, and corrupted model bytes — plus the connection-level
//! faults of the §14 TCP front end (torn length prefixes, mid-stream
//! disconnects, slow writers) — with containment the contract: the fault
//! surfaces as a typed value, the blast radius is one task / one lane /
//! one connection, and everything else stays bit-identical to serial.
//!
//! Every randomized fault is manufactured by the seeded
//! [`rtm_sim::faults`] harness, so any failure here reproduces exactly
//! from its seed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

use rtm_exec::{ExecError, Executor};
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtm_sim::faults::FaultInjector;
use rtm_sparse::BspcMatrix;
use rtm_tensor::rng::StdRng;
use rtm_tensor::wire::FrameDecoder;
use rtm_tensor::Matrix;
use rtmobile::deploy::{BatchedSession, CompiledNetwork, RuntimePrecision};
use rtmobile::health::{HealthPolicy, NumericFault};
use rtmobile::model_file;
use rtmobile::serve::protocol::put_client_msg;
use rtmobile::serve::{ClientMsg, ServerMsg};
use rtmobile::{RuntimeConfig, ServeStats, Server, StreamClient};

fn bsp_weight(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let keep: Vec<bool> = (0..cols).map(|_| rng.gen_f32() < 0.5).collect();
    Matrix::from_fn(rows, cols, |r, c| {
        if keep[c] {
            0.05 + ((r * 13 + c * 5) % 19) as f32 / 8.0
        } else {
            0.0
        }
    })
}

fn net() -> GruNetwork {
    GruNetwork::new(
        &NetworkConfig {
            input_dim: 6,
            hidden_dims: vec![12, 12],
            num_classes: 4,
        },
        23,
    )
}

fn stream(seed: usize, len: usize) -> Vec<Vec<f32>> {
    (0..len)
        .map(|t| {
            (0..6)
                .map(|i| ((seed * 131 + t * 6 + i) as f32 * 0.19).sin() * 0.5)
                .collect()
        })
        .collect()
}

/// Silences the default "thread panicked" chatter while injected panics
/// fly; restores the default hook on drop so other tests keep diagnostics.
struct QuietPanics;

impl QuietPanics {
    fn install() -> QuietPanics {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

#[test]
fn panic_storm_pool_stays_serviceable() {
    let _quiet = QuietPanics::install();
    let mut inj = FaultInjector::new(0xF00D);
    let w = bsp_weight(96, 64, 7);
    let m = BspcMatrix::from_dense(&w, 4, 4).unwrap();
    let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.11).cos()).collect();
    let serial_spmv = m.spmv(&x).unwrap();
    let xs: Vec<f32> = (0..64 * 4).map(|i| (i as f32 * 0.07).sin()).collect();
    let serial_spmm = m.spmm(&xs, 4).unwrap();

    let exec = Executor::new(4);
    for round in 0..20 {
        // Each storm round dispatches a batch in which one task panics.
        let victim = inj.pick(8);
        let tasks: Vec<rtm_exec::Task<'_>> = (0..8)
            .map(|t| -> rtm_exec::Task<'_> {
                if t == victim {
                    Box::new(move || panic!("storm {round}"))
                } else {
                    Box::new(move || {
                        std::hint::black_box(t);
                    })
                }
            })
            .collect();
        let err = exec.run(tasks).unwrap_err();
        assert!(err.is_panic(), "round {round}: {err:?}");
        match &err {
            ExecError::WorkerPanicked { message } => {
                assert!(message.contains("storm"), "payload survives: {message}")
            }
            other => panic!("wrong error class: {other:?}"),
        }
        // The very next batch on the same pool computes clean results,
        // bit-identical to serial.
        assert_eq!(
            exec.spmv_bspc(&m, &x).unwrap(),
            serial_spmv,
            "round {round}"
        );
        let mut ys = vec![0.0f32; 96 * 4];
        exec.spmm_bspc_into(&m, &xs, 4, &mut ys).unwrap();
        assert_eq!(ys, serial_spmm, "round {round}");
    }
    // Task panics never kill worker threads, so nothing was respawned.
    assert_eq!(exec.respawned_workers(), 0);
}

#[test]
fn severed_workers_respawn_and_serve() {
    let w = bsp_weight(64, 48, 11);
    let m = BspcMatrix::from_dense(&w, 4, 4).unwrap();
    let x: Vec<f32> = (0..48).map(|i| (i as f32 * 0.3).sin()).collect();
    let serial = m.spmv(&x).unwrap();
    let exec = Executor::new(4);
    assert_eq!(exec.spmv_bspc(&m, &x).unwrap(), serial);
    for _ in 0..3 {
        // Kill every worker thread; the next dispatch must heal the pool.
        exec.sever_workers();
        assert_eq!(exec.spmv_bspc(&m, &x).unwrap(), serial);
    }
    assert_eq!(exec.respawned_workers(), 9, "3 workers × 3 severances");
}

#[test]
fn slow_workers_change_nothing_but_wall_clock() {
    let mut inj = FaultInjector::new(0x0510);
    let w = bsp_weight(64, 48, 13);
    let m = BspcMatrix::from_dense(&w, 4, 4).unwrap();
    let x: Vec<f32> = (0..48).map(|i| (i as f32 * 0.21).cos()).collect();
    let serial = m.spmv(&x).unwrap();
    let exec = Executor::new(4);
    for _ in 0..5 {
        // A batch where some tasks stall on-CPU before computing.
        let mut out = vec![vec![0.0f32; 64]; 6];
        let tasks: Vec<rtm_exec::Task<'_>> = out
            .iter_mut()
            .map(|slot| {
                let stall = inj.fire(0.5);
                let m = &m;
                let x = &x;
                let task: rtm_exec::Task<'_> = Box::new(move || {
                    if stall {
                        FaultInjector::new(1).busy_wait_us(200);
                    }
                    m.spmv_into(x, slot).unwrap();
                });
                task
            })
            .collect();
        exec.run(tasks).unwrap();
        for slot in &out {
            assert_eq!(slot, &serial);
        }
    }
}

/// The acceptance scenario: one NaN-poisoned frame in an 8-lane batch is
/// quarantined while the remaining 7 lanes stay bit-identical to serial and
/// `ServeStats` reports exactly one quarantine.
#[test]
fn nan_lane_in_8_lane_batch_is_quarantined_alone() {
    let mut inj = FaultInjector::new(0xBAD_F00D);
    let compiled = CompiledNetwork::compile(&net(), 4, 4, RuntimePrecision::F32).unwrap();
    let mut streams: Vec<Vec<Vec<f32>>> = (0..8).map(|s| stream(s, 9)).collect();
    let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| compiled.forward(s)).collect();

    let victim = inj.pick(8);
    let frame = inj.pick(9);
    let (at, poison) = inj.poison_frame(&mut streams[victim][frame]);
    assert!(poison.is_nan());
    assert!(at < 6);

    for threads in [1usize, 2, 4] {
        let exec = Executor::new(threads);
        let mut session =
            BatchedSession::new(&compiled, &exec, 8).with_health(HealthPolicy::Quarantine);
        let out = session.run(&streams);
        let stats = session.stats();
        assert_eq!(stats.quarantined, 1, "exactly one quarantine");
        assert_eq!(stats.admitted, 8);
        assert_eq!(stats.completed, 7);
        for (s, (o, expect)) in out.iter().zip(&serial).enumerate() {
            if s == victim {
                // The poisoned stream stops at its last healthy frame.
                assert_eq!(o.len(), frame);
                assert_eq!(o[..], expect[..frame]);
            } else {
                assert_eq!(o, expect, "healthy lane {s} bit-identical to serial");
            }
        }
        assert_eq!(session.faults().len(), 1);
        let fault = session.faults()[0];
        assert_eq!(fault.stream, victim);
        assert_eq!(fault.frame, frame);
        assert_eq!(fault.fault, NumericFault::NaN);
    }
}

#[test]
fn check_mode_observes_the_fault_without_dropping_it() {
    let mut inj = FaultInjector::new(0xC0FFEE);
    let compiled = CompiledNetwork::compile(&net(), 4, 4, RuntimePrecision::F32).unwrap();
    let mut streams: Vec<Vec<Vec<f32>>> = (0..4).map(|s| stream(s, 6)).collect();
    let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| compiled.forward(s)).collect();
    let victim = inj.pick(4);
    inj.poison_frame(&mut streams[victim][2]);

    let exec = Executor::new(2);
    let mut session = BatchedSession::new(&compiled, &exec, 4).with_health(HealthPolicy::Check);
    let out = session.run(&streams);
    assert_eq!(session.stats().quarantined, 0);
    assert_eq!(session.stats().completed, 4);
    assert!(!session.faults().is_empty());
    assert_eq!(session.faults()[0].stream, victim);
    for (s, (o, expect)) in out.iter().zip(&serial).enumerate() {
        assert_eq!(o.len(), expect.len(), "stream {s} fully served");
        if s != victim {
            assert_eq!(o, expect, "healthy stream {s} bit-identical");
        }
    }
}

/// Seeded bit-flip and truncation fuzz over the `.rtm` decoder: ~10k
/// mutations (tunable via `RTM_FUZZ_ITERS`), and decoding must never panic
/// — every outcome is `Ok` or a typed `DecodeError`.
#[test]
fn model_decoder_survives_bitflip_and_truncation_fuzz() {
    let iters: usize = rtmobile::env::fuzz_iters().ok().flatten().unwrap_or(10_000);
    let compiled = CompiledNetwork::compile(&net(), 4, 4, RuntimePrecision::F16).unwrap();
    let pristine = model_file::to_bytes(&compiled);
    let mut inj = FaultInjector::new(0xFE11);
    let mut decoded_ok = 0usize;
    let mut rejected = 0usize;
    for i in 0..iters {
        let mut bytes = pristine.clone();
        if inj.fire(0.25) {
            // Truncation: a strictly short prefix.
            let at = inj.truncate_at(bytes.len());
            bytes.truncate(at);
        } else {
            // 1–3 bit flips anywhere in the file.
            for _ in 0..=inj.pick(3) {
                inj.flip_bit(&mut bytes);
            }
        }
        // Alternate between the plain decoder and the health-validating
        // one: both must return a value, never panic. (Value-section flips
        // can decode to NaN/Inf weights — exactly what the validating path
        // rejects as NonFinite.)
        let result = if i % 2 == 0 {
            model_file::from_bytes(&bytes).map(|_| ())
        } else {
            model_file::from_bytes_with(&bytes, HealthPolicy::Quarantine).map(|_| ())
        };
        match result {
            Ok(()) => decoded_ok += 1,
            Err(_) => rejected += 1,
        }
    }
    assert_eq!(decoded_ok + rejected, iters);
    // Sanity: the fuzz actually exercised the reject paths.
    assert!(rejected > iters / 4, "only {rejected}/{iters} rejected");
    // And the pristine bytes still decode under full validation.
    assert!(model_file::from_bytes_with(&pristine, HealthPolicy::Quarantine).is_ok());
}

/// The same bit-flip/truncation fuzz over a v3 model whose layers use the
/// non-default storage formats (BBS and CSB at int8): every per-format
/// wire codec behind the format-dispatched gate blobs must reject
/// corruption with a typed `DecodeError`, never a panic — and a flipped
/// format tag byte must surface as `BadFormat`/`BadMagic`, not as a
/// mis-dispatched decode.
#[test]
fn format_zoo_decoder_survives_bitflip_and_truncation_fuzz() {
    use rtmobile::RuntimeFormat;
    let iters: usize = rtmobile::env::fuzz_iters().ok().flatten().unwrap_or(10_000);
    let compiled = CompiledNetwork::compile_with_formats(
        &net(),
        4,
        4,
        &[],
        RuntimePrecision::Int8,
        &[RuntimeFormat::Bbs, RuntimeFormat::Csb],
        RuntimeFormat::Csr,
    )
    .unwrap();
    let pristine = model_file::to_bytes(&compiled);
    let mut inj = FaultInjector::new(0xF0F0);
    let mut decoded_ok = 0usize;
    let mut rejected = 0usize;
    for i in 0..iters {
        let mut bytes = pristine.clone();
        if inj.fire(0.25) {
            let at = inj.truncate_at(bytes.len());
            bytes.truncate(at);
        } else {
            for _ in 0..=inj.pick(3) {
                inj.flip_bit(&mut bytes);
            }
        }
        let result = if i % 2 == 0 {
            model_file::from_bytes(&bytes).map(|_| ())
        } else {
            model_file::from_bytes_with(&bytes, HealthPolicy::Quarantine).map(|_| ())
        };
        match result {
            Ok(()) => decoded_ok += 1,
            Err(_) => rejected += 1,
        }
    }
    assert_eq!(decoded_ok + rejected, iters);
    assert!(rejected > iters / 4, "only {rejected}/{iters} rejected");
    assert!(model_file::from_bytes_with(&pristine, HealthPolicy::Quarantine).is_ok());
}

// ---------------------------------------------------------------------------
// Connection-level faults against the `rtm serve` front end (DESIGN.md §14).
// ---------------------------------------------------------------------------

/// Runs a serve loop on its own thread until `body` returns, then raises
/// the stop flag and hands back the final stats. The stop flag (rather
/// than `max_streams`) keeps drain accounting out of fault scenarios where
/// how many streams "finish" is exactly what's under test.
fn serve_faulted<R>(
    net: &CompiledNetwork,
    config: RuntimeConfig,
    body: impl FnOnce(SocketAddr) -> R,
) -> (ServeStats, R) {
    /// Raises the stop flag even if `body` panics — otherwise the scope
    /// would hang forever joining a server that was never told to stop,
    /// turning an assertion failure into a timeout.
    struct StopOnDrop<'a>(&'a AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel();
        let (net, stop) = (net, &stop);
        let handle = scope.spawn(move || {
            let exec = Executor::new(config.threads);
            let mut server = Server::bind(net, &exec, &config).expect("bind");
            tx.send(server.local_addr()).expect("addr handoff");
            server.run_until(stop).expect("serve")
        });
        let addr = rx.recv().expect("server bound");
        let out = {
            let _guard = StopOnDrop(stop);
            body(addr)
        };
        (handle.join().expect("server thread"), out)
    })
}

/// Streams an utterance through a well-behaved client, closed-loop.
fn serve_stream(addr: SocketAddr, tenant: u32, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let mut client = StreamClient::connect(addr).expect("connect");
    client.start(tenant).expect("start");
    let logits = frames
        .iter()
        .map(|f| client.infer(f).expect("infer"))
        .collect();
    client.finish().expect("finish");
    logits
}

/// Blocking-reads one server message from a raw socket.
fn read_server_msg(stream: &mut TcpStream, dec: &mut FrameDecoder) -> ServerMsg {
    let mut buf = [0u8; 1024];
    loop {
        if let Some(payload) = dec.next_frame().expect("well-formed server frame") {
            return ServerMsg::decode(&payload).expect("typed server message");
        }
        let n = stream.read(&mut buf).expect("read");
        assert!(n > 0, "server closed mid-message");
        dec.push(&buf[..n]);
    }
}

fn assert_rows_bit_equal(served: &[Vec<f32>], serial: &[Vec<f32>], what: &str) {
    assert_eq!(served.len(), serial.len(), "{what}: frame count");
    for (t, (a, b)) in served.iter().zip(serial).enumerate() {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: frame {t} logit {i}");
        }
    }
}

/// One connection tears its wire frame at a seeded byte (possibly inside
/// the 4-byte length prefix) and disconnects; another sends a length
/// prefix claiming a frame beyond `MAX_FRAME_LEN`. The first is a
/// disconnect, the second a protocol violation — both kill only their own
/// connection while a concurrent stream is served bit-identically.
#[test]
fn torn_and_oversized_wire_frames_kill_only_their_connection() {
    let mut inj = FaultInjector::new(0x70A2);
    let compiled = CompiledNetwork::compile(&net(), 4, 4, RuntimePrecision::F32).unwrap();
    let frames = stream(61, 8);
    let serial = compiled.forward(&frames);

    let config = RuntimeConfig::default().with_batch(3);
    let (stats, _) = serve_faulted(&compiled, config, |addr| {
        // The survivor proves admission with a first round trip before any
        // fault is injected.
        let mut survivor = StreamClient::connect(addr).expect("connect");
        survivor.start(0).expect("start");
        let mut logits = vec![survivor.infer(&frames[0]).expect("infer")];

        // Torn frame: a valid Start, then a strict prefix of a Frame
        // message (the tear point is seeded and may fall inside the
        // length prefix itself), then EOF.
        let mut torn = TcpStream::connect(addr).expect("connect");
        let mut bytes = Vec::new();
        put_client_msg(&mut bytes, &ClientMsg::Start { tenant: 7 });
        let mut framed = Vec::new();
        put_client_msg(&mut framed, &ClientMsg::Frame(frames[0].clone()));
        let tear = inj.truncate_at(framed.len()).max(1);
        bytes.extend_from_slice(&framed[..tear]);
        torn.write_all(&bytes).expect("write torn");
        drop(torn);

        // Oversized frame: a length prefix past `MAX_FRAME_LEN` is a
        // protocol violation; the server must close this connection.
        let mut oversized = TcpStream::connect(addr).expect("connect");
        let mut bytes = Vec::new();
        put_client_msg(&mut bytes, &ClientMsg::Start { tenant: 8 });
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        oversized.write_all(&bytes).expect("write oversized");
        oversized
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .expect("timeout");
        // Drain until the server's close: the violation must not leave the
        // connection half-alive. (Whether the greeting got flushed first
        // is a race against the killing pass — only the close is the
        // contract.)
        let mut sink = [0u8; 64];
        loop {
            match oversized.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => panic!("expected EOF after violation, got {e}"),
            }
        }

        // The survivor streams to completion through both faults.
        for f in &frames[1..] {
            logits.push(survivor.infer(f).expect("infer"));
        }
        assert_rows_bit_equal(&logits, &serial, "survivor");
        survivor.finish().expect("finish");
    });
    assert_eq!(stats.completed, 1, "only the survivor completes");
    assert_eq!(stats.quarantined, 0);
    assert_eq!(stats.shed, 0, "faults are not admission sheds");
}

/// A connection that vanishes mid-stream (no `End`) releases its lane: a
/// newcomer is admitted into it and both the concurrent survivor and the
/// newcomer stay bit-identical to serial.
#[test]
fn mid_stream_disconnect_frees_the_lane_for_a_newcomer() {
    let compiled = CompiledNetwork::compile(&net(), 4, 4, RuntimePrecision::F32).unwrap();
    let streams: Vec<Vec<Vec<f32>>> = (0..3).map(|s| stream(s + 70, 7)).collect();
    let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| compiled.forward(s)).collect();

    // Two lanes only: the newcomer can run iff the victim's lane is
    // actually reclaimed.
    let config = RuntimeConfig::default().with_batch(2);
    let (stats, _) = serve_faulted(&compiled, config, |addr| {
        let mut survivor = StreamClient::connect(addr).expect("connect");
        survivor.start(0).expect("start");
        let mut logits = vec![survivor.infer(&streams[0][0]).expect("infer")];

        // The victim holds the second lane, serves two frames bit-exactly,
        // then vanishes without an `End`.
        let mut victim = StreamClient::connect(addr).expect("connect");
        victim.start(1).expect("start");
        for t in 0..2 {
            let row = victim.infer(&streams[1][t]).expect("infer");
            assert_rows_bit_equal(&[row], &serial[1][t..t + 1], &format!("victim frame {t}"));
        }
        drop(victim);

        // The newcomer parks until the severed lane is reaped, then runs
        // an entire stream through it.
        let newcomer = serve_stream(addr, 2, &streams[2]);
        assert_rows_bit_equal(&newcomer, &serial[2], "newcomer");

        for f in &streams[0][1..] {
            logits.push(survivor.infer(f).expect("infer"));
        }
        assert_rows_bit_equal(&logits, &serial[0], "survivor");
        survivor.finish().expect("finish");
    });
    assert_eq!(
        stats.admitted, 3,
        "victim, survivor and newcomer all admitted"
    );
    assert_eq!(
        stats.completed, 2,
        "the disconnected stream never completes"
    );
    assert_eq!(stats.shed, 0);
}

/// A writer that stalls mid-frame must not stall the event loop: an
/// entire other stream is served start-to-finish between the stalled
/// connection's dribbles, and the slow stream still gets its exact logits
/// once the frame finally lands. Single-threaded and deterministic — the
/// test itself sequences the dribbles around the survivor's full run.
#[test]
fn slow_writer_stall_does_not_block_other_connections() {
    let compiled = CompiledNetwork::compile(&net(), 4, 4, RuntimePrecision::F32).unwrap();
    let slow_frames = stream(91, 1);
    let slow_serial = compiled.forward(&slow_frames);
    let fast_frames = stream(92, 8);
    let fast_serial = compiled.forward(&fast_frames);

    let config = RuntimeConfig::default().with_batch(2);
    let (stats, _) = serve_faulted(&compiled, config, |addr| {
        let mut slow = TcpStream::connect(addr).expect("connect");
        slow.set_nodelay(true).expect("nodelay");
        let mut start = Vec::new();
        put_client_msg(&mut start, &ClientMsg::Start { tenant: 0 });
        slow.write_all(&start).expect("start");
        let mut framed = Vec::new();
        put_client_msg(&mut framed, &ClientMsg::Frame(slow_frames[0].clone()));

        // Stall with the frame torn three bytes in — inside the length
        // prefix, the nastiest place to stop.
        slow.write_all(&framed[..3]).expect("dribble");

        // The entire fast stream runs while the slow writer is stalled.
        let fast = serve_stream(addr, 1, &fast_frames);
        assert_rows_bit_equal(&fast, &fast_serial, "fast stream during stall");

        // Finish the frame in small dribbles; the server reassembles it
        // and serves the exact logits as if it had arrived whole.
        for chunk in framed[3..].chunks(2) {
            slow.write_all(chunk).expect("dribble");
        }
        let mut dec = FrameDecoder::new();
        match read_server_msg(&mut slow, &mut dec) {
            ServerMsg::Hello { .. } => {}
            other => panic!("expected Hello, got {other:?}"),
        }
        match read_server_msg(&mut slow, &mut dec) {
            ServerMsg::Logits(row) => {
                assert_rows_bit_equal(&[row], &slow_serial, "slow stream");
            }
            other => panic!("expected Logits, got {other:?}"),
        }
        let mut end = Vec::new();
        put_client_msg(&mut end, &ClientMsg::End);
        slow.write_all(&end).expect("end");
        match read_server_msg(&mut slow, &mut dec) {
            ServerMsg::Done { frames } => assert_eq!(frames, 1),
            other => panic!("expected Done, got {other:?}"),
        }
    });
    assert_eq!(
        stats.completed, 2,
        "both the slow and the fast stream finish"
    );
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.quarantined, 0);
}

// ---------------------------------------------------------------------------
// v5 bundle container faults (DESIGN.md §15): per-section corruption and
// torn publishes must surface as typed `DecodeError`s, never as a panic or
// a silently-wrong model.
// ---------------------------------------------------------------------------

/// A flipped byte inside any one section payload is caught twice over:
/// the whole-file CRC refuses the raw flip, and — even with the file CRC
/// forged to match — the per-section CRC still names the poisoned section.
#[test]
fn v5_section_bitflips_are_caught_per_section_even_under_a_forged_file_crc() {
    use rtm_sparse::io::DecodeError;
    use rtmobile::bundle;

    let compiled = CompiledNetwork::compile(&net(), 4, 4, RuntimePrecision::F16).unwrap();
    let pristine = bundle::to_bytes(&compiled);
    let layout = bundle::probe(&pristine).expect("pristine probe");
    assert_eq!(layout.version, 5);
    assert_eq!(layout.file_crc_ok, Some(true));
    assert_eq!(layout.sections.len(), 3, "WGHT + TUNE + HLTH");

    let mut inj = FaultInjector::new(0x5EC7);
    for section in &layout.sections {
        assert!(section.crc_ok, "pristine section {:?}", section.tag);
        // TUNE is empty for an untuned network; nothing to flip inside.
        if section.len == 0 {
            continue;
        }
        let at = section.payload_offset + inj.pick(section.len);
        let mut bytes = pristine.clone();
        bytes[at] ^= 1 << inj.pick(8);

        // Raw flip: the outer integrity wall.
        match bundle::from_bytes(&bytes) {
            Err(DecodeError::FileChecksum) => {}
            other => panic!(
                "section {:?}: expected FileChecksum, got {other:?}",
                section.tag
            ),
        }

        // Forge the file CRC (the trailer's last 4 bytes cover everything
        // before them): the per-section CRC is the inner wall and must
        // name the culprit.
        let crc_at = bytes.len() - 4;
        let forged = bundle::crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&forged.to_le_bytes());
        match bundle::from_bytes(&bytes) {
            Err(DecodeError::SectionChecksum(tag)) => {
                assert_eq!(tag, section.tag, "the named section is the flipped one")
            }
            other => panic!(
                "section {:?}: expected SectionChecksum, got {other:?}",
                section.tag
            ),
        }
    }
}

/// A torn rename (a strict prefix of the published file, any cut point) is
/// rejected by the 16-byte trailer: the magic/CRC at the *end* of the file
/// only exists once the whole file does.
#[test]
fn v5_torn_publishes_are_rejected_by_the_trailer() {
    use rtm_sparse::io::DecodeError;
    use rtmobile::bundle;

    let compiled = CompiledNetwork::compile(&net(), 4, 4, RuntimePrecision::F16).unwrap();
    let pristine = bundle::to_bytes(&compiled);
    let mut inj = FaultInjector::new(0x7EAE);
    // Every tail-torn length near the trailer plus seeded cuts everywhere.
    let mut cuts: Vec<usize> = (pristine.len().saturating_sub(20)..pristine.len()).collect();
    cuts.extend((0..64).map(|_| inj.truncate_at(pristine.len())));
    for cut in cuts {
        let torn = &pristine[..cut];
        match bundle::from_bytes(torn) {
            Err(
                DecodeError::Truncated
                | DecodeError::BadTrailer
                | DecodeError::FileChecksum
                | DecodeError::BadMagic,
            ) => {}
            Ok(_) => panic!("torn publish of {cut}/{} bytes decoded", pristine.len()),
            Err(other) => panic!("cut {cut}: untyped rejection {other:?}"),
        }
    }
    // And the un-torn bytes still decode.
    assert!(bundle::from_bytes(&pristine).is_ok());
}

// ---------------------------------------------------------------------------
// Decoder-input fuzz (DESIGN.md §16): hostile logits at the Decoder API.
// ---------------------------------------------------------------------------

/// Seeded fuzz over every decoder the config can build: NaN/∞-poisoned
/// logits rows, saturated values, empty frames and zero-length utterances.
/// The contract is containment — a decoder must never panic, its final
/// hypothesis must stay structurally sound (symbols bounded by frames
/// pushed, no blank leakage from the CTC family), and `reset` must fully
/// recover the instance for the next utterance.
#[test]
fn decoders_survive_poisoned_logits_fuzz() {
    use rtmobile::DecoderChoice;
    let iters: usize = rtmobile::env::fuzz_iters().ok().flatten().unwrap_or(10_000);
    let choices = [
        DecoderChoice::Argmax,
        DecoderChoice::Viterbi,
        DecoderChoice::CtcGreedy,
        DecoderChoice::CtcBeam(1),
        DecoderChoice::CtcBeam(4),
    ];
    let mut inj = FaultInjector::new(0xDECC0DE);
    let classes = 6usize;
    let blank = rtm_speech::blank_for(classes);
    // One long-lived decoder per choice: reset() is part of what's fuzzed.
    let mut decoders: Vec<_> = choices.iter().map(|c| c.build(classes)).collect();
    for i in 0..iters {
        let frames = inj.pick(8); // 0..=7 — zero-length utterances included
        let mut utterance: Vec<Vec<f32>> = (0..frames)
            .map(|t| {
                (0..classes)
                    .map(|c| ((i + t * classes + c) as f32 * 0.7).sin() * 4.0)
                    .collect()
            })
            .collect();
        // Poison roughly half the rows (NaN / ±Inf / saturated rotate),
        // and occasionally make a row empty (must be ignored, not fatal).
        for row in &mut utterance {
            if inj.fire(0.5) {
                inj.poison_frame(row);
            }
            if inj.fire(0.1) {
                row.clear();
            }
        }
        let which = i % decoders.len();
        let d = &mut decoders[which];
        d.reset();
        let mut pushed = 0usize;
        for row in &utterance {
            if !row.is_empty() {
                pushed += 1;
            }
            let _ = d.push_frame(row);
        }
        let hyp = d.finish();
        assert!(hyp.is_final, "iter {i} ({which}): finish marks final");
        assert!(
            hyp.symbols.len() <= pushed.max(1) * 2,
            "iter {i} ({which}): {} symbols from {pushed} frames",
            hyp.symbols.len()
        );
        if which >= 2 {
            // The CTC family never emits its blank.
            assert!(
                hyp.symbols.iter().all(|&s| s != blank),
                "iter {i} ({which}): blank leaked"
            );
        }
    }
    // After the storm every instance still decodes a clean utterance.
    let clean: Vec<Vec<f32>> = (0..5)
        .map(|t| {
            (0..classes)
                .map(|c| if c == t % classes { 5.0 } else { 0.0 })
                .collect()
        })
        .collect();
    for (choice, d) in choices.iter().zip(&mut decoders) {
        let after = rtm_speech::decode_offline(d.as_mut(), &clean);
        let fresh = rtm_speech::decode_offline(choice.build(classes).as_mut(), &clean);
        assert_eq!(
            after,
            fresh,
            "{}: fuzzed instance differs from fresh",
            choice.label()
        );
    }
}
