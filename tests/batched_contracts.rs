//! Dimension-mismatch contracts of the batched public APIs: a caller who
//! hands lane-major buffers of the wrong width gets a typed error (or a
//! documented panic) *before* any kernel runs — never UB, never silent
//! truncation, never partially-written garbage passed off as a result.

use rtm_exec::{ExecError, Executor};
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtm_sparse::{BspcMatrix, CsrMatrix};
use rtm_tensor::Matrix;
use rtmobile::deploy::{CompiledNetwork, GruRuntimeScratch, RuntimePrecision};

fn weight(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        if c % 3 == 0 {
            0.1 + ((r * 5 + c) % 11) as f32 / 7.0
        } else {
            0.0
        }
    })
}

fn compiled() -> CompiledNetwork {
    let net = GruNetwork::new(
        &NetworkConfig {
            input_dim: 6,
            hidden_dims: vec![12],
            num_classes: 4,
        },
        41,
    );
    CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).unwrap()
}

#[test]
fn sparse_spmm_into_rejects_mismatched_lane_buffers() {
    let w = weight(24, 18);
    let bspc = BspcMatrix::from_dense(&w, 4, 3).unwrap();
    let csr = CsrMatrix::from_dense(&w);
    let b = 4;
    let good_x = vec![0.5f32; 18 * b];
    let mut good_y = vec![0.0f32; 24 * b];
    assert!(bspc.spmm_into(&good_x, b, &mut good_y).is_ok());
    assert!(csr.spmm_into(&good_x, b, &mut good_y).is_ok());
    // Wrong input width, wrong output width, wrong lane count: all typed
    // errors, and the output buffer length is never "fixed up" silently.
    for (xs_len, ys_len, lanes) in [
        (18 * b - 1, 24 * b, b),
        (18 * b, 24 * b + 3, b),
        (18 * (b - 1), 24 * b, b),
        (18 * b, 24 * b, b + 1),
    ] {
        let xs = vec![0.5f32; xs_len];
        let mut ys = vec![0.0f32; ys_len];
        assert!(
            bspc.spmm_into(&xs, lanes, &mut ys).is_err(),
            "bspc {xs_len}/{ys_len}/{lanes}"
        );
        assert!(
            csr.spmm_into(&xs, lanes, &mut ys).is_err(),
            "csr {xs_len}/{ys_len}/{lanes}"
        );
        assert_eq!(ys.len(), ys_len, "buffer length untouched");
    }
}

#[test]
fn executor_batched_kernels_reject_mismatches_before_dispatch() {
    let w = weight(24, 18);
    let bspc = BspcMatrix::from_dense(&w, 4, 3).unwrap();
    let csr = CsrMatrix::from_dense(&w);
    let b = 3;
    for threads in [1usize, 4] {
        let exec = Executor::new(threads);
        let xs = vec![0.25f32; 18 * b];
        let mut ys = vec![0.0f32; 24 * b];
        assert!(exec.spmm_bspc_into(&bspc, &xs, b, &mut ys).is_ok());
        assert!(exec.spmm_csr_into(&csr, &xs, b, &mut ys).is_ok());
        assert!(exec.gemm_dense_into(&w, &xs, b, &mut ys).is_ok());

        let short_x = vec![0.25f32; 18 * b - 2];
        let mut short_y = vec![0.0f32; 24 * b - 2];
        let probes: [Result<(), ExecError>; 6] = [
            exec.spmm_bspc_into(&bspc, &short_x, b, &mut ys),
            exec.spmm_bspc_into(&bspc, &xs, b, &mut short_y),
            exec.spmm_csr_into(&csr, &short_x, b, &mut ys),
            exec.spmm_csr_into(&csr, &xs, b, &mut short_y),
            exec.gemm_dense_into(&w, &short_x, b, &mut ys),
            exec.gemm_dense_into(&w, &xs, b, &mut short_y),
        ];
        for (i, r) in probes.into_iter().enumerate() {
            let err = r.expect_err("probe must fail");
            assert!(
                matches!(err, ExecError::Shape(_)),
                "probe {i} at {threads} threads: {err:?}"
            );
        }
        // The pool is untouched by rejected calls: a good call still works
        // and matches serial bit for bit.
        let mut clean = vec![0.0f32; 24 * b];
        exec.spmm_bspc_into(&bspc, &xs, b, &mut clean).unwrap();
        assert_eq!(clean, bspc.spmm(&xs, b).unwrap());
    }
}

#[test]
fn step_batch_into_rejects_wrong_lane_widths() {
    let net = compiled();
    let layer = &net.layers()[0];
    let exec = Executor::new(2);
    let b = 4;
    let mut scratch = GruRuntimeScratch::new();
    let mut hs_out = Vec::new();
    let xs = vec![0.1f32; 6 * b];
    let hs = vec![0.0f32; 12 * b];
    assert!(layer
        .step_batch_into(
            &exec,
            &xs,
            &hs,
            b,
            RuntimePrecision::F32,
            &mut scratch,
            &mut hs_out
        )
        .is_ok());
    assert_eq!(hs_out.len(), 12 * b);

    // Wrong input width and wrong hidden width both surface as Shape.
    let bad_xs = vec![0.1f32; 6 * b - 1];
    let err = layer
        .step_batch_into(
            &exec,
            &bad_xs,
            &hs,
            b,
            RuntimePrecision::F32,
            &mut scratch,
            &mut hs_out,
        )
        .unwrap_err();
    assert!(matches!(err, ExecError::Shape(_)), "{err:?}");

    let bad_hs = vec![0.0f32; 12 * (b + 1)];
    let err = layer
        .step_batch_into(
            &exec,
            &xs,
            &bad_hs,
            b,
            RuntimePrecision::F32,
            &mut scratch,
            &mut hs_out,
        )
        .unwrap_err();
    assert!(matches!(err, ExecError::Shape(_)), "{err:?}");
}

#[test]
fn forward_frame_batch_rejects_mismatched_activation_planes() {
    let net = compiled();
    let exec = Executor::new(2);
    let b = 3;
    let mut scratch = GruRuntimeScratch::new();
    let mut hs_next = Vec::new();
    let mut logits = Vec::new();

    let mut xs = vec![0.2f32; 6 * b];
    let mut states = vec![vec![0.0f32; 12 * b]];
    assert!(net
        .forward_frame_batch(
            &exec,
            &mut xs,
            b,
            &mut states,
            &mut scratch,
            &mut hs_next,
            &mut logits
        )
        .is_ok());
    assert_eq!(logits.len(), 4 * b);

    // Wrong frame width: typed error, nothing silently truncated.
    let mut bad_xs = vec![0.2f32; 6 * b + 1];
    let err = net
        .forward_frame_batch(
            &exec,
            &mut bad_xs,
            b,
            &mut states,
            &mut scratch,
            &mut hs_next,
            &mut logits,
        )
        .unwrap_err();
    assert!(matches!(err, ExecError::Shape(_)), "{err:?}");

    // Wrong state plane width for the declared lane count.
    let mut xs = vec![0.2f32; 6 * b];
    let mut bad_states = vec![vec![0.0f32; 12 * (b - 1)]];
    let err = net
        .forward_frame_batch(
            &exec,
            &mut xs,
            b,
            &mut bad_states,
            &mut scratch,
            &mut hs_next,
            &mut logits,
        )
        .unwrap_err();
    assert!(matches!(err, ExecError::Shape(_)), "{err:?}");
}

#[test]
fn session_mismatched_stream_dims_panic_contract() {
    // BatchedSession documents a panic (not UB) when streams disagree on
    // the frame dimension mid-batch.
    let net = compiled();
    let exec = Executor::new(1);
    let good: Vec<Vec<f32>> = (0..3).map(|_| vec![0.1f32; 6]).collect();
    let bad: Vec<Vec<f32>> = (0..3).map(|_| vec![0.1f32; 5]).collect();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut session = rtmobile::deploy::BatchedSession::new(&net, &exec, 2);
        session.run(&[good, bad])
    }));
    let payload = result.unwrap_err();
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(message.contains("frame dim mismatch"), "{message}");
}
