//! Cross-crate consistency tests: the contracts between the pruning,
//! sparse-format, compiler and simulator layers.
//!
//! Each test checks an invariant that no single crate can verify alone —
//! e.g. that a mask produced by `rtm-pruning`'s BSP really yields the
//! shared-pattern structure `rtm-sparse`'s BSPC format and
//! `rtm-compiler`'s RLE analysis assume.

use rtm_compiler::plan::{ExecutionPlan, StorageFormat};
use rtm_compiler::profile::KernelProfile;
use rtm_compiler::reorder::ReorderPlan;
use rtm_compiler::rle::analyze_loads;
use rtm_pruning::admm::AdmmConfig;
use rtm_pruning::bsp::{BspConfig, BspPruner};
use rtm_pruning::projection::{BspColumnBlock, Projection};
use rtm_pruning::schedule::CompressionTarget;
use rtm_rnn::model::{GruNetwork, NetworkConfig};
use rtm_sim::{CpuModel, GpuModel};
use rtm_sparse::footprint::{Footprint, Precision};
use rtm_sparse::{BspcMatrix, CsrMatrix};
use rtm_tensor::gemm;
use rtm_tensor::Matrix;

fn oneshot_admm() -> AdmmConfig {
    AdmmConfig {
        admm_iterations: 1,
        epochs_per_iteration: 0,
        finetune_epochs: 0,
        ..AdmmConfig::default()
    }
}

fn pruned_network(target: CompressionTarget) -> GruNetwork {
    let mut net = GruNetwork::new(
        &NetworkConfig {
            input_dim: 16,
            hidden_dims: vec![32, 32],
            num_classes: 8,
        },
        42,
    );
    BspPruner::new(BspConfig {
        num_stripes: 4,
        num_blocks: 4,
        target,
        admm: oneshot_admm(),
    })
    .prune(&mut net, &[]);
    net
}

/// BSP-pruned weights convert to BSPC losslessly and SpMV through BSPC
/// matches the dense product.
#[test]
fn bsp_output_is_bspc_exact() {
    let net = pruned_network(CompressionTarget::new(4.0, 2.0));
    for (name, w) in net.prunable() {
        let bspc =
            BspcMatrix::from_dense(w, 4.min(w.rows()), 4.min(w.cols())).expect("partition fits");
        assert_eq!(bspc.to_dense(), *w, "{name} must round-trip");
        let x: Vec<f32> = (0..w.cols()).map(|i| (i as f32 * 0.7).sin()).collect();
        let want = gemm::gemv(w, &x).expect("dims");
        let got = bspc.spmv(&x).expect("dims");
        for (a, b) in want.iter().zip(&got) {
            assert!((a - b).abs() < 1e-4, "{name} spmv mismatch");
        }
    }
}

/// The BSP projection's mask yields exactly the stripe-shared patterns the
/// RLE analysis exploits: within a stripe, surviving rows share one column
/// set, so per-run unions collapse to the pattern size.
#[test]
fn bsp_masks_unlock_rle_sharing() {
    let mut rng = rtm_tensor::init::rng_from_seed(9);
    let w = rtm_tensor::init::uniform(32, 32, -1.0, 1.0, &mut rng);
    let proj = BspColumnBlock::new(4, 4, 0.25);
    let z = proj.project(&w);

    // Consecutive rows inside one stripe (height 8) share their pattern, so
    // a run of 8 rows loads exactly its pattern size.
    let stats = analyze_loads(&z, None, 8);
    let per_stripe_pattern: usize = 8; // 4 blocks x 8 cols x 25% = 2 cols/block
    assert_eq!(stats.rle_loads, 4 * per_stripe_pattern);
    assert!(
        (stats.elimination_ratio() - 8.0).abs() < 1e-9,
        "stripe height sharing"
    );
}

/// BSPC storage beats CSR on a BSP-pruned network, at both precisions —
/// the §IV-B-c claim quantified.
#[test]
fn bspc_footprint_beats_csr_on_bsp_pruned_weights() {
    let net = pruned_network(CompressionTarget::new(8.0, 2.0));
    for prec in [Precision::F32, Precision::F16] {
        let mut csr_total = 0usize;
        let mut bspc_total = 0usize;
        for (_, w) in net.prunable() {
            csr_total += Footprint::csr(&CsrMatrix::from_dense(w), prec).total();
            bspc_total += Footprint::bspc(
                &BspcMatrix::from_dense(w, 4.min(w.rows()), 4.min(w.cols())).expect("fits"),
                prec,
            )
            .total();
        }
        assert!(
            bspc_total < csr_total,
            "{prec:?}: bspc {bspc_total} vs csr {csr_total}"
        );
    }
}

/// Reorder permutations computed by the compiler are valid inputs to the
/// BSPC format's reorder slot.
#[test]
fn reorder_permutation_attaches_to_bspc() {
    let net = pruned_network(CompressionTarget::new(4.0, 2.0));
    let (_, w) = &net.prunable()[1];
    let plan = ReorderPlan::compute(w, 8);
    let perm: Vec<u32> = plan.perm.iter().map(|&p| p as u32).collect();
    let bspc = BspcMatrix::from_dense(w, 4, 4)
        .expect("fits")
        .with_reorder(perm)
        .expect("compiler permutation is a bijection");
    assert_eq!(bspc.reorder().expect("attached").len(), w.rows());
}

/// Cost-model ordering on one BSP-pruned tensor: for both devices,
/// BSPC ≤ CSR and pruned-anything ≤ dense.
#[test]
fn cost_model_orders_formats_consistently() {
    let net = pruned_network(CompressionTarget::new(8.0, 2.0));
    let (_, w) = &net.prunable()[1]; // 32x32 recurrent tensor
                                     // Scale it up so the costs dominate launch overhead. The 32-row BSP
                                     // pattern (4 stripes of 8) tiles to 32 stripes of 8 in 256 rows; the
                                     // BSPC plans below use that matched partition, exactly as the pipeline
                                     // derives it from the pruner configuration.
    let big = Matrix::from_fn(256, 256, |r, c| w[(r % 32, c % 32)]);

    let gpu = GpuModel::adreno640();
    let cpu = CpuModel::kryo485();

    let gpu_cost = |fmt: StorageFormat| {
        let plan = match fmt {
            StorageFormat::Dense => {
                ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations()
            }
            f => ExecutionPlan::gpu_default(f).with_bsp_partition(32, 4),
        };
        gpu.kernel_cost(&KernelProfile::analyze(&big, &plan), &plan)
            .total_us()
    };
    let cpu_cost = |fmt: StorageFormat| {
        let plan = match fmt {
            StorageFormat::Dense => {
                ExecutionPlan::cpu_default(StorageFormat::Dense).without_optimizations()
            }
            f => ExecutionPlan::cpu_default(f).with_bsp_partition(32, 4),
        };
        cpu.kernel_cost(&KernelProfile::analyze(&big, &plan), &plan)
            .total_us()
    };

    for cost in [&gpu_cost as &dyn Fn(StorageFormat) -> f64, &cpu_cost] {
        let dense = cost(StorageFormat::Dense);
        let csr = cost(StorageFormat::Csr);
        let bspc = cost(StorageFormat::Bspc);
        assert!(bspc <= csr, "bspc {bspc} vs csr {csr}");
        assert!(csr <= dense, "csr {csr} vs dense {dense}");
    }
}

/// Mask application and masked retraining keep the pruned support stable:
/// after further training steps under the mask, no pruned weight revives.
#[test]
fn masked_training_preserves_support() {
    let mut net = GruNetwork::new(
        &NetworkConfig {
            input_dim: 8,
            hidden_dims: vec![16],
            num_classes: 4,
        },
        7,
    );
    let report = BspPruner::new(BspConfig {
        num_stripes: 4,
        num_blocks: 4,
        target: CompressionTarget::new(4.0, 1.0),
        admm: oneshot_admm(),
    })
    .prune(&mut net, &[]);

    // Extra masked training on toy data.
    let frames = vec![vec![0.5; 8]; 6];
    let targets = vec![1usize; 6];
    let mut opt = rtm_rnn::Adam::new(0.01);
    for _ in 0..10 {
        net.train_step(&frames, &targets, &mut opt, None);
        report.mask.apply(&mut net);
    }
    for (name, w) in net.prunable() {
        let mask = report.mask.get(&name).expect("mask exists");
        for (wi, mi) in w.as_slice().iter().zip(mask.as_slice()) {
            if *mi == 0.0 {
                assert_eq!(*wi, 0.0, "{name}: pruned weight revived");
            }
        }
    }
}
