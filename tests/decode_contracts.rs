//! Decoder-API contracts (DESIGN.md §16): the streaming [`Decoder`] trait
//! behaves as one deterministic function of the logits sequence, whatever
//! path drives it.
//!
//! - **CTC semantics**: best-path collapse rules (repeats collapse, blanks
//!   drop, a blank separates genuine doubles) on golden lattices; prefix
//!   beam search recovers mass that greedy's single path loses.
//! - **beam(1) == greedy**: an API guarantee, checked bit-for-bit on
//!   random lattices.
//! - **Streaming == offline**: pushing frames one at a time is
//!   bit-identical to [`decode_offline`] over the same logits, for every
//!   decoder the [`DecoderChoice`] config can build.
//! - **Serial == batched == wire**: the compiled runtime's serial
//!   [`CompiledNetwork::decode_with`] and the lane-sharing
//!   [`BatchedSession::run_decoded`] produce bit-identical hypotheses.
//! - **Legacy wrappers**: `viterbi_decode` and argmax + `collapse_frames`
//!   still equal their trait-path counterparts exactly.

use rtm_exec::Executor;
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtm_speech::ctc::DEFAULT_TRAILING_BLANKS;
use rtm_speech::per::collapse_frames;
use rtm_speech::{
    blank_for, decode_offline, viterbi_decode, ArgmaxDecoder, CtcBeamDecoder, CtcGreedyDecoder,
    Decoder, ViterbiDecoder,
};
use rtm_tensor::rng::StdRng;
use rtmobile::deploy::{BatchedSession, CompiledNetwork, RuntimePrecision};
use rtmobile::DecoderChoice;

/// Logits strongly favouring one class per frame.
fn clean_logits(labels: &[usize], classes: usize) -> Vec<Vec<f32>> {
    labels
        .iter()
        .map(|&l| {
            (0..classes)
                .map(|c| if c == l { 6.0 } else { 0.0 })
                .collect()
        })
        .collect()
}

/// A seeded random lattice: `frames` rows of `classes` logits in [-4, 4].
fn random_logits(frames: usize, classes: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..frames)
        .map(|_| (0..classes).map(|_| rng.gen_f32() * 8.0 - 4.0).collect())
        .collect()
}

#[test]
fn ctc_greedy_collapses_repeats_and_drops_blanks() {
    // blank = 0 for a 4-class head (< 39 phones).
    assert_eq!(blank_for(4), 0);
    let logits = clean_logits(&[0, 1, 1, 1, 0, 2, 2, 0, 0], 4);
    let hyp = decode_offline(&mut CtcGreedyDecoder::new(0), &logits);
    assert_eq!(hyp.symbols, vec![1, 2]);
    assert!(hyp.is_final);
    assert_eq!(hyp.frames, logits.len());
}

#[test]
fn blank_separates_doubled_symbols() {
    // 1 1 -> one symbol; 1 blank 1 -> the double survives.
    let collapsed = decode_offline(&mut CtcGreedyDecoder::new(0), &clean_logits(&[1, 1], 4));
    assert_eq!(collapsed.symbols, vec![1]);
    let doubled = decode_offline(&mut CtcGreedyDecoder::new(0), &clean_logits(&[1, 0, 1], 4));
    assert_eq!(doubled.symbols, vec![1, 1]);
}

#[test]
fn ctc_outputs_are_blank_free_and_bounded() {
    for seed in 0..20u64 {
        let logits = random_logits(30, 6, seed);
        for hyp in [
            decode_offline(&mut CtcGreedyDecoder::new(0), &logits),
            decode_offline(&mut CtcBeamDecoder::new(0, 4), &logits),
        ] {
            assert!(
                hyp.symbols.iter().all(|&s| s != 0),
                "seed {seed}: blank leaked into {:?}",
                hyp.symbols
            );
            assert!(hyp.symbols.len() <= logits.len());
            assert!(hyp.score.is_finite());
        }
    }
}

#[test]
fn beam_width_one_is_greedy_bitwise() {
    for seed in 0..20u64 {
        let logits = random_logits(40, 8, seed);
        let greedy = decode_offline(&mut CtcGreedyDecoder::new(0), &logits);
        let beam1 = decode_offline(&mut CtcBeamDecoder::new(0, 1), &logits);
        assert_eq!(beam1.symbols, greedy.symbols, "seed {seed}");
        assert_eq!(
            beam1.score.to_bits(),
            greedy.score.to_bits(),
            "seed {seed}: scores must be bit-identical, not merely close"
        );
        assert_eq!(beam1.endpoint, greedy.endpoint, "seed {seed}");
    }
}

#[test]
fn golden_lattice_beam_recovers_mass_greedy_loses() {
    // The classic prefix-search example (Hannun et al. 2014): per-frame
    // the blank is the argmax, so greedy decodes the empty sequence — but
    // the three alignments collapsing to [a] carry more total mass than
    // the all-blank path (0.6*0.6 = 0.36 vs 0.4*0.6 + 0.6*0.4 + 0.4*0.4
    // = 0.64). Beam search with width >= 2 must sum them and return [a].
    let frame: Vec<f32> = vec![0.6f32.ln(), 0.4f32.ln()];
    let logits = vec![frame.clone(), frame];
    let greedy = decode_offline(&mut CtcGreedyDecoder::new(0), &logits);
    assert_eq!(
        greedy.symbols,
        Vec::<usize>::new(),
        "greedy takes the blank path"
    );
    let beam = decode_offline(&mut CtcBeamDecoder::new(0, 2), &logits);
    assert_eq!(beam.symbols, vec![1], "beam sums the [a] alignments");
    assert!(
        (beam.score - 0.64f32.ln()).abs() < 1e-4,
        "merged mass: got {}, want ln 0.64",
        beam.score
    );
}

#[test]
fn streaming_is_bit_identical_to_offline_for_every_choice() {
    let choices = [
        DecoderChoice::Argmax,
        DecoderChoice::Viterbi,
        DecoderChoice::CtcGreedy,
        DecoderChoice::CtcBeam(1),
        DecoderChoice::CtcBeam(4),
    ];
    for seed in 0..10u64 {
        let logits = random_logits(25, 39 + 1, seed);
        let classes = logits[0].len();
        for choice in choices {
            let mut streaming = choice.build(classes);
            for row in &logits {
                let _ = streaming.push_frame(row);
            }
            let streamed = streaming.finish();
            let offline = decode_offline(choice.build(classes).as_mut(), &logits);
            assert_eq!(
                streamed.symbols,
                offline.symbols,
                "{} seed {seed}",
                choice.label()
            );
            assert_eq!(
                streamed.score.to_bits(),
                offline.score.to_bits(),
                "{} seed {seed}",
                choice.label()
            );
            // And reset() really clears: a second offline pass repeats.
            let again = decode_offline(streaming.as_mut(), &logits);
            assert_eq!(
                again,
                offline,
                "{} seed {seed}: reset mid-object",
                choice.label()
            );
        }
    }
}

#[test]
fn endpoint_fires_after_trailing_blanks_and_clears_on_speech() {
    let mut d = CtcGreedyDecoder::with_endpoint(0, 3);
    let logits = clean_logits(&[1, 0, 0, 0, 2, 0, 0, 0], 4);
    let mut states = Vec::new();
    let mut endpoint = false;
    for row in &logits {
        if let Some(h) = d.push_frame(row) {
            endpoint = h.endpoint;
        }
        states.push(endpoint);
    }
    assert_eq!(
        states,
        vec![false, false, false, true, false, false, false, true],
        "fires on the 3rd trailing blank, clears on speech, re-fires"
    );
    assert!(d.finish().endpoint);
    // The default threshold is the documented 200 ms at the 10 ms hop.
    assert_eq!(DEFAULT_TRAILING_BLANKS, 20);
}

#[test]
fn legacy_free_functions_match_the_trait_path() {
    let logits = random_logits(30, 5, 99);
    // viterbi_decode is a thin wrapper over ViterbiDecoder.
    let mut vd = ViterbiDecoder::new(2.5);
    assert_eq!(
        viterbi_decode(&logits, 2.5),
        decode_offline(&mut vd, &logits).symbols
    );
    // Argmax collapse equals the historical argmax + collapse_frames path.
    let frame_preds: Vec<usize> = logits
        .iter()
        .map(|f| rtm_tensor::Vector::argmax(f))
        .collect();
    assert_eq!(
        decode_offline(&mut ArgmaxDecoder::new(), &logits).symbols,
        collapse_frames(&frame_preds)
    );
}

#[test]
fn blank_maps_to_silence_for_the_phone_head() {
    assert_eq!(blank_for(39), rtm_speech::phones::SILENCE);
    assert_eq!(blank_for(4), 0);
}

fn compiled_net() -> CompiledNetwork {
    let net = GruNetwork::new(
        &NetworkConfig {
            input_dim: 6,
            hidden_dims: vec![12, 12],
            num_classes: 5,
        },
        2020,
    );
    CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16).expect("valid BSP")
}

fn utterance(frames: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..frames)
        .map(|_| (0..6).map(|_| rng.gen_f32() * 2.0 - 1.0).collect())
        .collect()
}

#[test]
fn serial_batched_and_offline_decodes_agree_bitwise() {
    let net = compiled_net();
    let exec = Executor::new(1);
    let choice = DecoderChoice::CtcBeam(3);
    let streams: Vec<Vec<Vec<f32>>> = (0..5).map(|s| utterance(10 + s, s as u64)).collect();

    // Serial: forward + offline decode per stream, via the deploy helper.
    let serial: Vec<_> = streams
        .iter()
        .map(|u| net.decode_with(&exec, u, choice))
        .collect();

    // Batched: lanes shared mid-flight, one decoder per lane.
    let mut session = BatchedSession::new(&net, &exec, 2).with_decoder(choice);
    let (batched_logits, batched_hyps) = session.run_decoded(&streams);

    for (s, (hyp, logits)) in batched_hyps.iter().zip(&batched_logits).enumerate() {
        let hyp = hyp.as_ref().expect("stream decoded");
        assert_eq!(hyp.symbols, serial[s].symbols, "stream {s}");
        assert_eq!(hyp.score.to_bits(), serial[s].score.to_bits(), "stream {s}");
        assert!(hyp.is_final);
        // And both equal an offline decode of the served logits.
        let offline = decode_offline(choice.build(logits[0].len()).as_mut(), logits);
        assert_eq!(offline.symbols, hyp.symbols, "stream {s}");
        assert_eq!(offline.score.to_bits(), hyp.score.to_bits(), "stream {s}");
    }
}

#[test]
fn decoder_choice_parse_roundtrip_and_rejection() {
    for (s, want) in [
        ("argmax", DecoderChoice::Argmax),
        ("viterbi", DecoderChoice::Viterbi),
        ("ctc-greedy", DecoderChoice::CtcGreedy),
        ("ctc-beam:1", DecoderChoice::CtcBeam(1)),
        ("ctc-beam:16", DecoderChoice::CtcBeam(16)),
    ] {
        assert_eq!(DecoderChoice::parse(s), Some(want), "{s}");
        assert_eq!(
            DecoderChoice::parse(&want.label()),
            Some(want),
            "label roundtrip {s}"
        );
    }
    for bad in [
        "",
        "ctc",
        "ctc-beam",
        "ctc-beam:0",
        "ctc-beam:x",
        "beam:4",
        "ARGMAX ",
    ] {
        assert_eq!(DecoderChoice::parse(bad), None, "{bad:?} must be rejected");
    }
}
