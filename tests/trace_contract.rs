//! Contracts of the observability layer (DESIGN.md §11).
//!
//! This suite runs in its own test binary (see `crates/rtmobile/Cargo.toml`)
//! because it mutates two process-global switches — the trace config and
//! the SIMD dispatch policy — that would race any other test reading them
//! from a shared test process. Within the binary, every test serializes on
//! one lock, and each restores the trace switch to off before releasing it.
//!
//! The contracts:
//!
//! * spans nest: a child span records its parent's id, across stack depth;
//! * kernel counters are *exact*: one serial `spmv_into` on a known BSPC
//!   matrix adds exactly one `kernel.spmv.bspc` call, `kept_rows` rows and
//!   `stored_len` (== nnz) touched values, and the executor entry adds the
//!   same amounts to the same keys (never double-counted);
//! * histograms are deterministic: identical value sequences produce
//!   identical snapshots;
//! * tracing off is free of *behavior*: `predict_with` outputs are
//!   bit-identical with tracing off and on, for every SIMD policy.

use rtm_exec::Executor;
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtm_sparse::BspcMatrix;
use rtm_tensor::simd::{SimdPolicy, Variant};
use rtm_tensor::Matrix;
use rtmobile::deploy::{CompiledNetwork, RuntimePrecision};
use rtmobile::TraceConfig;
use std::sync::Mutex;

/// Serializes the tests in this binary; poison-resilient so one failing
/// test does not cascade into every later one.
static LOCK: Mutex<()> = Mutex::new(());

/// Locks, switches tracing on and clears the registry. The guard must stay
/// alive for the duration of the test; callers restore `off` before drop.
fn traced() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    rtm_trace::set_config(TraceConfig::on());
    rtm_trace::global().reset();
    guard
}

fn bsp_weight(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        if (r / 8 + c) % 3 == 0 {
            0.05 + ((r * 7 + c * 13) % 23) as f32 / 29.0
        } else {
            0.0
        }
    })
}

#[test]
fn spans_nest_correctly() {
    let _guard = traced();
    {
        let _root = rtm_trace::span("test.root");
        {
            let _child = rtm_trace::span("test.child");
            let _grandchild = rtm_trace::span("test.grandchild");
        }
        let _sibling = rtm_trace::span("test.sibling");
    }
    let spans = rtm_trace::global().spans();
    rtm_trace::set_config(TraceConfig::off());

    let by_name = |name: &str| {
        spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("span {name} not recorded"))
    };
    let root = by_name("test.root");
    let child = by_name("test.child");
    let grandchild = by_name("test.grandchild");
    let sibling = by_name("test.sibling");
    assert_eq!(root.parent, None);
    assert_eq!(child.parent, Some(root.id));
    assert_eq!(grandchild.parent, Some(child.id));
    assert_eq!(sibling.parent, Some(root.id));
    // Monotonic timing: every span closes at or after it opens, and a
    // child lives within its parent's window.
    for s in &spans {
        assert!(s.dur_us >= 0.0, "{}: dur {}", s.name, s.dur_us);
    }
    assert!(grandchild.start_us >= child.start_us);
    assert!(child.start_us >= root.start_us);
}

#[test]
fn kernel_counters_are_exact_for_a_known_matrix() {
    let _guard = traced();
    let w = bsp_weight(32, 24);
    let bspc = BspcMatrix::from_dense(&w, 4, 3).expect("valid partition");
    let rows = bspc.kept_rows().len() as u64;
    let nnz = bspc.stored_len() as u64;
    assert!(nnz > 0, "test matrix must have nonzeros");
    let x = vec![0.5f32; 24];
    let mut y = vec![0.0f32; 32];

    let reg = rtm_trace::global();

    // One serial call: exactly one dispatch, `rows` rows, `nnz` values.
    bspc.spmv_into(&x, &mut y).unwrap();
    assert_eq!(reg.counter(rtm_trace::key::SPMV_BSPC), 1);
    assert_eq!(reg.counter(rtm_trace::key::KERNEL_ROWS), rows);
    assert_eq!(reg.counter(rtm_trace::key::KERNEL_NNZ), nnz);

    // The executor entry point counts the same keys once per call — its
    // internal chunk kernels are deliberately uncounted, so serial and
    // parallel execution of the same call sequence agree exactly.
    for threads in [1usize, 3] {
        let exec = Executor::new(threads);
        exec.spmv_bspc_into(&bspc, &x, &mut y).unwrap();
    }
    assert_eq!(reg.counter(rtm_trace::key::SPMV_BSPC), 3);
    assert_eq!(reg.counter(rtm_trace::key::KERNEL_ROWS), 3 * rows);
    assert_eq!(reg.counter(rtm_trace::key::KERNEL_NNZ), 3 * nnz);

    // Batched SpMM: one call regardless of lane count; rows/nnz count the
    // weight walk (once per call), not per lane.
    let b = 4;
    let xs = vec![0.25f32; 24 * b];
    let mut ys = vec![0.0f32; 32 * b];
    bspc.spmm_into(&xs, b, &mut ys).unwrap();
    assert_eq!(reg.counter(rtm_trace::key::SPMM_BSPC), 1);
    assert_eq!(reg.counter(rtm_trace::key::KERNEL_ROWS), 4 * rows);
    assert_eq!(reg.counter(rtm_trace::key::KERNEL_NNZ), 4 * nnz);

    rtm_trace::set_config(TraceConfig::off());
}

#[test]
fn histograms_are_deterministic() {
    let values: Vec<f64> = (0..1000).map(|i| 0.5 + (i % 97) as f64 * 3.25).collect();
    let mut snapshots = Vec::new();
    for _ in 0..2 {
        let _guard = traced();
        let reg = rtm_trace::global();
        for &v in &values {
            reg.hist_record("test.hist", v);
        }
        let snap = reg.hist("test.hist").expect("recorded");
        let json = reg.metrics_json();
        rtm_trace::set_config(TraceConfig::off());
        snapshots.push((snap, json));
        // Locks are not held across iterations; the registry is re-reset.
    }
    assert_eq!(snapshots[0].0, snapshots[1].0);
    assert_eq!(snapshots[0].1, snapshots[1].1);
    let snap = &snapshots[0].0;
    assert_eq!(snap.count, 1000);
    assert!(snap.min >= 0.5 && snap.max <= 97.0 * 3.25 + 0.5);
    assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);
}

#[test]
fn tracing_off_leaves_outputs_bit_identical() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let net = GruNetwork::new(
        &NetworkConfig {
            input_dim: 6,
            hidden_dims: vec![16],
            num_classes: 5,
        },
        77,
    );
    let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16).unwrap();
    let exec = Executor::new(2);
    let frames: Vec<Vec<f32>> = (0..9)
        .map(|t| (0..6).map(|i| ((t * 6 + i) as f32 * 0.37).sin()).collect())
        .collect();

    for policy in [
        SimdPolicy::Auto,
        SimdPolicy::Fixed(Variant::ScalarU1),
        SimdPolicy::Fixed(Variant::ScalarU8),
        SimdPolicy::Fixed(Variant::Vector),
    ] {
        rtm_tensor::simd::set_policy(policy);
        rtm_trace::set_config(TraceConfig::off());
        let untraced: Vec<Vec<u32>> = compiled
            .forward_with(&exec, &frames)
            .iter()
            .map(|row| row.iter().map(|v| v.to_bits()).collect())
            .collect();
        rtm_trace::set_config(TraceConfig::on());
        rtm_trace::global().reset();
        let traced: Vec<Vec<u32>> = compiled
            .forward_with(&exec, &frames)
            .iter()
            .map(|row| row.iter().map(|v| v.to_bits()).collect())
            .collect();
        rtm_trace::set_config(TraceConfig::off());
        assert_eq!(untraced, traced, "policy {policy:?}");
        // And the traced run did record kernel activity.
        assert!(rtm_trace::global().counter(rtm_trace::key::KERNEL_NNZ) > 0);
    }
    rtm_tensor::simd::set_policy(SimdPolicy::Auto);
}
