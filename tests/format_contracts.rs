//! Contracts of the sparse-format zoo (DESIGN.md §13): every storage
//! format (BSPC, CSR, BBS, CSB) produces identical f32 logits to the dense
//! reference, every format × precision is bit-identical across the serial,
//! pooled and batched engines at every thread count, a mixed-format model
//! survives the `.rtm` round-trip bit-exactly, and the `auto` format mode
//! ships a per-layer selection while the pipeline's PER guard holds.

use rtm_exec::Executor;
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtmobile::deploy::{BatchedSession, CompiledNetwork, RuntimeFormat, RuntimePrecision};
use rtmobile::{model_file, FormatChoice, RtMobile};

const ALL_FORMATS: [RuntimeFormat; 4] = [
    RuntimeFormat::Bspc,
    RuntimeFormat::Csr,
    RuntimeFormat::Bbs,
    RuntimeFormat::Csb,
];

const ALL_PRECISIONS: [RuntimePrecision; 3] = [
    RuntimePrecision::F32,
    RuntimePrecision::F16,
    RuntimePrecision::Int8,
];

fn network(seed: u64) -> GruNetwork {
    GruNetwork::new(
        &NetworkConfig {
            input_dim: 6,
            hidden_dims: vec![12, 12],
            num_classes: 4,
        },
        seed,
    )
}

fn frames(count: usize, dim: usize, phase: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|t| {
            (0..dim)
                .map(|i| (((phase * 37 + t * dim + i) as f32) * 0.23 + 0.11).sin() * 0.6)
                .collect()
        })
        .collect()
}

fn compile_uniform(
    net: &GruNetwork,
    format: RuntimeFormat,
    precision: RuntimePrecision,
) -> CompiledNetwork {
    CompiledNetwork::compile_with_formats(net, 4, 4, &[], precision, &[], format).unwrap()
}

fn assert_bits_equal(a: &[Vec<f32>], b: &[Vec<f32>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: frame count");
    for (t, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{what}: frame {t} width");
        for (i, (p, q)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{what}: frame {t} logit {i}: {p} vs {q}"
            );
        }
    }
}

/// Storage format is a layout decision, never a semantic one: at f32 every
/// format stores the exact same values, so all four compiled runtimes must
/// agree with the BSPC reference to within float-summation-reorder noise
/// (each format accumulates its dot products in its own traversal order,
/// so the last bits may differ — but nothing else may).
#[test]
fn every_format_matches_the_bspc_reference_at_f32() {
    let net = network(91);
    let input = frames(10, 6, 2);
    let reference = compile_uniform(&net, RuntimeFormat::Bspc, RuntimePrecision::F32);
    let base = reference.forward(&input);
    for format in ALL_FORMATS {
        let rt = compile_uniform(&net, format, RuntimePrecision::F32);
        assert_eq!(rt.format(), format);
        let got = rt.forward(&input);
        for (t, (x, y)) in base.iter().zip(&got).enumerate() {
            for (i, (p, q)) in x.iter().zip(y).enumerate() {
                assert!(
                    (p - q).abs() < 1e-5,
                    "{format:?} vs BSPC: frame {t} logit {i}: {p} vs {q}"
                );
            }
        }
    }
}

/// One numeric result per (format, precision), regardless of engine: the
/// serial loop, the pooled executor at every thread count, and the
/// lane-major batched session must agree bit for bit — the acceptance
/// contract of the format zoo.
#[test]
fn serial_pooled_and_batched_agree_bit_for_bit_per_format_and_precision() {
    let net = network(47);
    let lens = [5usize, 2, 7, 3];
    let streams: Vec<Vec<Vec<f32>>> = lens
        .iter()
        .enumerate()
        .map(|(s, &len)| frames(len, 6, s))
        .collect();
    for format in ALL_FORMATS {
        for precision in ALL_PRECISIONS {
            let compiled = compile_uniform(&net, format, precision);
            let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| compiled.forward(s)).collect();
            for threads in [1usize, 3] {
                let exec = Executor::new(threads);
                for (s, stream) in streams.iter().enumerate() {
                    assert_bits_equal(
                        &serial[s],
                        &compiled.forward_with(&exec, stream),
                        &format!("pooled {format:?}/{precision:?} stream {s} at {threads} threads"),
                    );
                }
                let mut session = BatchedSession::new(&compiled, &exec, 3);
                let batched = session.run(&streams);
                for (s, got) in batched.iter().enumerate() {
                    assert_bits_equal(
                        &serial[s],
                        got,
                        &format!(
                            "batched {format:?}/{precision:?} stream {s} at {threads} threads"
                        ),
                    );
                }
            }
        }
    }
}

/// A per-layer mixed-format model survives the `.rtm` v3 round-trip with
/// bit-identical logits at every precision, and the decoded network
/// reports the same per-layer formats it was compiled with.
#[test]
fn mixed_format_model_file_roundtrip_is_bit_exact() {
    let net = network(63);
    let input = frames(8, 6, 4);
    let per_layer = [RuntimeFormat::Bbs, RuntimeFormat::Csb];
    for precision in ALL_PRECISIONS {
        let compiled = CompiledNetwork::compile_with_formats(
            &net,
            4,
            4,
            &[],
            precision,
            &per_layer,
            RuntimeFormat::Csr,
        )
        .unwrap();
        let bytes = model_file::to_bytes(&compiled);
        let decoded = model_file::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.layer_formats(), per_layer.to_vec());
        assert_bits_equal(
            &compiled.forward(&input),
            &decoded.forward(&input),
            &format!("roundtrip at {precision:?}"),
        );
        // Re-encoding the decoded network is byte-identical: the codec has
        // one canonical form per model.
        assert_eq!(bytes, model_file::to_bytes(&decoded));
    }
}

/// The acceptance-criterion pipeline run: `auto` times the four formats
/// against each layer's actual pruned weights and ships a per-layer
/// selection. Every layer must report a format, the resolved tag must be
/// `auto`, and the compiled PER must stay coherent with the pruned f32
/// accuracy — i.e. the format guard's contract (format never moves
/// accuracy) holds on a real run.
#[test]
fn auto_format_selects_per_layer_within_per_guard() {
    let (report, _, compiled) = RtMobile::builder()
        .corpus(rtm_speech::corpus::CorpusConfig {
            speakers: 12,
            sentences_per_speaker: 3,
            phones_per_sentence: 5,
            noise: 0.35,
            ..rtm_speech::corpus::CorpusConfig::default_scaled()
        })
        .hidden(24)
        .dense_training(8, 0.01)
        .compression(4.0, 2.0)
        .partition(4, 4)
        .admm(rtm_pruning::admm::AdmmConfig {
            rho: 2.0,
            admm_iterations: 1,
            epochs_per_iteration: 3,
            finetune_epochs: 6,
            lr: 4e-3,
            clip: Some(rtm_rnn::GradClip::new(5.0)),
        })
        .sim_hidden(256)
        .seed(3)
        .format(FormatChoice::Auto)
        .run_keeping_model();

    let p = &report.performance;
    assert_eq!(p.format, "auto");
    assert_eq!(
        p.layers_bspc + p.layers_csr + p.layers_bbs + p.layers_csb,
        2,
        "every layer reports a storage format"
    );
    // The probe's measurements ride with the model: one cost per layer,
    // each naming the format the layer shipped with, persisted through the
    // `.rtm` v4 cost section so a serving-side load skips the probe.
    let costs = compiled.tuner_costs();
    assert_eq!(costs.len(), 2, "one format probe record per layer");
    for (i, c) in costs.iter().enumerate() {
        assert_eq!(c.layer, i);
        assert_eq!(c.format, compiled.layer_formats()[i]);
        assert!(c.micros > 0.0, "layer {i} measured cost must be positive");
    }
    let decoded = model_file::from_bytes(&model_file::to_bytes(&compiled)).expect("decodes");
    assert_eq!(decoded.tuner_costs(), costs);
    let a = &report.accuracy;
    assert!(
        (a.compiled_per - a.pruned_per).abs() < 20.0,
        "auto-format PER {:.2}% incoherent with pruned f32 PER {:.2}%",
        a.compiled_per,
        a.pruned_per
    );
}

/// A fixed non-default format flows end to end through the pipeline and
/// into the report: every layer lands in the requested format and the
/// accuracy is untouched versus the BSPC default (format is layout, not
/// semantics — at f32 the PER may only move by summation-reorder noise,
/// which on this easy task is zero decisions flipped).
#[test]
fn fixed_format_choice_flows_into_report_with_identical_accuracy() {
    let quick = || {
        RtMobile::builder()
            .corpus(rtm_speech::corpus::CorpusConfig {
                speakers: 8,
                sentences_per_speaker: 2,
                phones_per_sentence: 4,
                ..rtm_speech::corpus::CorpusConfig::tiny()
            })
            .hidden(16)
            .dense_training(6, 0.01)
            .sim_hidden(128)
            .compression(1.0, 1.0)
            .seed(5)
            .precision(rtmobile::PrecisionChoice::Fixed(RuntimePrecision::F32))
    };
    // Pin both runs explicitly: the baseline must stay BSPC even when the
    // suite runs under `RTM_FORMAT=auto` (the CI fifth pass).
    let bspc = quick()
        .format(FormatChoice::Fixed(RuntimeFormat::Bspc))
        .run();
    let csb = quick()
        .format(FormatChoice::Fixed(RuntimeFormat::Csb))
        .run();
    assert_eq!(bspc.performance.format, "bspc");
    assert_eq!(bspc.performance.layers_bspc, 2);
    assert_eq!(csb.performance.format, "csb");
    assert_eq!(csb.performance.layers_csb, 2);
    assert_eq!(csb.performance.layers_bspc, 0);
    assert!(
        (bspc.accuracy.compiled_per - csb.accuracy.compiled_per).abs() < 1.0,
        "f32 accuracy must be format-independent: bspc {:.2}% csb {:.2}%",
        bspc.accuracy.compiled_per,
        csb.accuracy.compiled_per
    );
}
