//! Serialization integration tests: the full train → prune → compile →
//! save → load → predict loop through the filesystem, plus adversarial
//! corruption of stored models.

use rtm_pruning::admm::AdmmConfig;
use rtm_pruning::bsp::{BspConfig, BspPruner};
use rtm_pruning::schedule::CompressionTarget;
use rtm_speech::corpus::CorpusConfig;
use rtm_speech::task::SpeechTask;
use rtmobile::deploy::{CompiledNetwork, RuntimePrecision};
use rtmobile::model_file;

fn build_compiled() -> (SpeechTask, CompiledNetwork) {
    let task = SpeechTask::new(
        &CorpusConfig {
            speakers: 8,
            sentences_per_speaker: 2,
            phones_per_sentence: 4,
            ..CorpusConfig::tiny()
        },
        55,
    );
    let mut net = task.new_network(16, 55);
    task.train(&mut net, 6, 0.01);
    BspPruner::new(BspConfig {
        num_stripes: 4,
        num_blocks: 2,
        target: CompressionTarget::new(3.0, 1.0),
        admm: AdmmConfig {
            admm_iterations: 1,
            epochs_per_iteration: 2,
            finetune_epochs: 3,
            ..AdmmConfig::default()
        },
    })
    .prune(&mut net, &task.training_data());
    let compiled =
        CompiledNetwork::compile(&net, 4, 2, RuntimePrecision::F16).expect("partition fits");
    (task, compiled)
}

#[test]
fn save_load_predict_through_filesystem() {
    let (task, compiled) = build_compiled();
    let bytes = model_file::to_bytes(&compiled);

    let dir = std::env::temp_dir().join("rtm_serialization_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.rtm");
    std::fs::write(&path, &bytes).expect("write model");

    let loaded_bytes = std::fs::read(&path).expect("read model");
    assert_eq!(loaded_bytes, bytes, "filesystem round trip is byte-exact");
    let loaded = model_file::from_bytes(&loaded_bytes).expect("decode");

    // Predictions of the loaded model match the in-memory compiled model on
    // every held-out utterance.
    for u in task.test_utterances() {
        assert_eq!(
            compiled.predict(&u.frames),
            loaded.predict(&u.frames),
            "loaded model must predict identically"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_models_never_panic() {
    let (_, compiled) = build_compiled();
    let bytes = model_file::to_bytes(&compiled);

    // Flip each byte in a stride across the file: decoding must either fail
    // cleanly or produce a structurally valid model — never panic.
    for i in (0..bytes.len()).step_by(97) {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xFF;
        let _ = model_file::from_bytes(&corrupted);
    }
    // Random truncations likewise.
    for n in (0..bytes.len()).step_by(131) {
        assert!(model_file::from_bytes(&bytes[..n]).is_err());
    }
}

#[test]
fn f16_storage_halves_the_file() {
    let task = SpeechTask::new(&CorpusConfig::tiny(), 9);
    let net = task.new_network(24, 9);
    let f32_model = CompiledNetwork::compile(&net, 4, 2, RuntimePrecision::F32).expect("fits");
    let f16_model = CompiledNetwork::compile(&net, 4, 2, RuntimePrecision::F16).expect("fits");
    let b32 = model_file::to_bytes(&f32_model).len();
    let b16 = model_file::to_bytes(&f16_model).len();
    // Values dominate the file; f16 should land well under 75% of f32.
    assert!((b16 as f64) < (b32 as f64) * 0.75, "f16 {b16} vs f32 {b32}");
}
