//! Differential suite for the SIMD kernel layer (`rtm_tensor::simd`).
//!
//! Every test here uses the explicit `*_variant` entry points or reads the
//! ambient [`active_variant`](rtm_tensor::simd::active_variant) — **none of
//! them mutate the process-global policy**, so the whole binary is safe
//! under cargo's parallel test threads and proves the contract under
//! whatever policy CI pinned (`scripts/ci.sh` runs it twice: default and
//! `RTM_SIMD=off`).
//!
//! Contract being checked (see the `simd` module docs):
//! * `scalar-u4`/`scalar-u8` are **bit-exact** with the naive `scalar-u1`
//!   reference — single accumulator, left-to-right association;
//! * the `vector` reduction stays within `4 · ulp(Σ|termᵢ|)` of `scalar-u1`
//!   (ULPs measured at the *accumulation magnitude*, the only sound scale
//!   under cancellation);
//! * element-wise kernels and the activation sweeps are bit-identical in
//!   every variant;
//! * the dispatched matrix kernels (dense `gemv_into`, CSR `spmv_into`)
//!   are row-for-row bit-identical with the corresponding `*_variant`
//!   kernel at [`active_variant`](rtm_tensor::simd::active_variant) — i.e.
//!   dispatch hoisting never changes the arithmetic.

use rtm_sparse::{BspcMatrix, CsrMatrix};
use rtm_tensor::rng::StdRng;
use rtm_tensor::simd::{
    self, axpy_variant, dot_batch_variant, dot_variant, hadamard_into_variant,
    indexed_dot_batch_variant, indexed_dot_variant, sigmoid_sweep_variant, tanh_sweep_variant,
    ulp_at, Variant,
};
use rtm_tensor::{gemm, Matrix};

/// Shape matrix with ragged tails around every unroll boundary (4, 8 and
/// the AVX2 lane width), plus large GRU-realistic sizes.
const SHAPES: [usize; 22] = [
    0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 255, 1000, 1024, 1037,
];

fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
    // Mixed-sign: exercises cancellation, the regime where a result-relative
    // ULP bound would be unsound and the accumulation-magnitude bound matters.
    (0..n).map(|_| rng.gen_f32() * 2.0 - 1.0).collect()
}

/// BSP-patterned sparse test weight: ~40% of columns kept.
fn bsp_weight(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let keep: Vec<bool> = (0..cols).map(|_| rng.gen_f32() < 0.4).collect();
    Matrix::from_fn(rows, cols, |r, c| {
        if keep[c] {
            (rng_free(r, c) - 0.5) * 1.6
        } else {
            0.0
        }
    })
}

/// Deterministic mixed-sign value without threading an RNG through
/// `Matrix::from_fn`'s `Fn` closure.
fn rng_free(r: usize, c: usize) -> f32 {
    ((r * 31 + c * 17) % 101) as f32 / 101.0
}

#[test]
fn dot_differential_across_shape_matrix() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for n in SHAPES {
        let a = rand_vec(n, &mut rng);
        let b = rand_vec(n, &mut rng);
        let want = dot_variant(Variant::ScalarU1, &a, &b);
        // Scalar unrolls keep the accumulator chain: bit-exact.
        for v in [Variant::ScalarU4, Variant::ScalarU8] {
            assert_eq!(dot_variant(v, &a, &b), want, "{} n={n}", v.name());
        }
        // Vector reassociates: bounded at the accumulation magnitude.
        let mag: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        let got = dot_variant(Variant::Vector, &a, &b);
        assert!(
            (got - want).abs() <= 4.0 * ulp_at(mag),
            "vector dot n={n}: {got} vs {want} (mag {mag})"
        );
    }
}

#[test]
fn indexed_dot_differential_across_shape_matrix() {
    let mut rng = StdRng::seed_from_u64(0x1D07);
    let x = rand_vec(1200, &mut rng);
    for n in SHAPES {
        let vals = rand_vec(n, &mut rng);
        let mut idx: Vec<u32> = (0..n).map(|_| rng.next_u32() % 1200).collect();
        idx.sort_unstable();
        let want = indexed_dot_variant(Variant::ScalarU1, &vals, &idx, &x);
        for v in [Variant::ScalarU4, Variant::ScalarU8] {
            assert_eq!(
                indexed_dot_variant(v, &vals, &idx, &x),
                want,
                "{} nnz={n}",
                v.name()
            );
        }
        let mag: f32 = vals
            .iter()
            .zip(&idx)
            .map(|(&w, &c)| (w * x[c as usize]).abs())
            .sum();
        let got = indexed_dot_variant(Variant::Vector, &vals, &idx, &x);
        assert!(
            (got - want).abs() <= 4.0 * ulp_at(mag),
            "vector indexed dot nnz={n}: {got} vs {want} (mag {mag})"
        );
    }
}

#[test]
fn elementwise_kernels_differential() {
    let mut rng = StdRng::seed_from_u64(0xE1E);
    for n in SHAPES {
        let x = rand_vec(n, &mut rng);
        let y0 = rand_vec(n, &mut rng);
        let b = rand_vec(n, &mut rng);

        let mut want = y0.clone();
        axpy_variant(Variant::ScalarU1, -0.73, &x, &mut want);
        for v in [Variant::ScalarU4, Variant::ScalarU8] {
            let mut y = y0.clone();
            axpy_variant(v, -0.73, &x, &mut y);
            assert_eq!(y, want, "axpy {} n={n}", v.name());
        }
        // Vector axpy contracts mul+add into one FMA: per-element bound.
        let mut y = y0.clone();
        axpy_variant(Variant::Vector, -0.73, &x, &mut y);
        for i in 0..n {
            let mag = (0.73 * x[i]).abs().max(y0[i].abs());
            assert!(
                (y[i] - want[i]).abs() <= 4.0 * ulp_at(mag),
                "vector axpy n={n} i={i}"
            );
        }

        // Hadamard: one correctly-rounded multiply — exact in all variants.
        let mut out_want = vec![0.0f32; n];
        hadamard_into_variant(Variant::ScalarU1, &x, &b, &mut out_want);
        for v in Variant::ALL {
            let mut out = vec![f32::NAN; n];
            hadamard_into_variant(v, &x, &b, &mut out);
            assert_eq!(out, out_want, "hadamard {} n={n}", v.name());
        }
    }
}

#[test]
fn activation_sweeps_bit_identical_in_every_variant() {
    let mut rng = StdRng::seed_from_u64(0xAC7);
    for n in SHAPES {
        let base: Vec<f32> = (0..n).map(|_| rng.gen_f32() * 8.0 - 4.0).collect();
        let mut want_s = base.clone();
        sigmoid_sweep_variant(Variant::ScalarU1, &mut want_s);
        let mut want_t = base.clone();
        tanh_sweep_variant(Variant::ScalarU1, &mut want_t);
        for v in Variant::ALL {
            let mut s = base.clone();
            sigmoid_sweep_variant(v, &mut s);
            assert_eq!(s, want_s, "sigmoid {} n={n}", v.name());
            let mut t = base.clone();
            tanh_sweep_variant(v, &mut t);
            assert_eq!(t, want_t, "tanh {} n={n}", v.name());
        }
    }
}

#[test]
fn dispatched_gemv_rows_are_the_active_variant_dot() {
    // Dispatch hoisting (resolving the variant once per matrix, not once per
    // row) must not change any row's arithmetic: each output element is the
    // active variant's dot of that row, bit for bit. Holds under any policy,
    // so both CI passes prove their respective variant.
    let mut rng = StdRng::seed_from_u64(0x6E3);
    let active = simd::active_variant();
    for (rows, cols) in [(1usize, 1usize), (7, 5), (33, 47), (64, 96), (17, 129)] {
        let a = Matrix::from_fn(rows, cols, |r, c| (rng_free(r, c) - 0.5) * 2.0);
        let x = rand_vec(cols, &mut rng);
        let mut y = vec![f32::NAN; rows];
        gemm::gemv_into(&a, &x, &mut y).unwrap();
        for (r, &yr) in y.iter().enumerate() {
            assert_eq!(
                yr,
                dot_variant(active, a.row(r), &x),
                "row {r} of {rows}x{cols} under {}",
                active.name()
            );
        }
    }
}

#[test]
fn dispatched_csr_spmv_rows_are_the_active_variant_indexed_dot() {
    let mut rng = StdRng::seed_from_u64(0xC52);
    let active = simd::active_variant();
    for (rows, cols, seed) in [(33usize, 47usize, 1u64), (64, 96, 2), (17, 129, 3)] {
        let dense = bsp_weight(rows, cols, seed);
        let csr = CsrMatrix::from_dense(&dense);
        let x = rand_vec(cols, &mut rng);
        let mut y = vec![f32::NAN; rows];
        csr.spmv_into(&x, &mut y).unwrap();
        for (r, &yr) in y.iter().enumerate() {
            let (idx, vals): (Vec<u32>, Vec<f32>) =
                csr.row_entries(r).map(|(c, w)| (c as u32, w)).unzip();
            assert_eq!(
                yr,
                indexed_dot_variant(active, &vals, &idx, &x),
                "row {r} of {rows}x{cols} under {}",
                active.name()
            );
        }
    }
}

#[test]
fn batched_dot_lanes_match_serial_dot_bit_exact() {
    // The SpMM building block's lane contract: lane `j` of the batched dot
    // is bit-identical to the serial dot of column `j`, in *every* variant —
    // the scalar batch kernel preserves the single-accumulator chain, and
    // the vector batch kernel replays the vector reduction tree per lane.
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    for n in [0usize, 1, 3, 8, 17, 64, 255, 1024] {
        for b in [1usize, 2, 3, 4, 7, 8, 16] {
            let a = rand_vec(n, &mut rng);
            let xs = rand_vec(n * b, &mut rng);
            for v in Variant::ALL {
                let mut out = vec![f32::NAN; b];
                dot_batch_variant(v, &a, &xs, b, &mut out);
                for (j, &got) in out.iter().enumerate() {
                    let col: Vec<f32> = (0..n).map(|k| xs[k * b + j]).collect();
                    assert_eq!(
                        got,
                        dot_variant(v, &a, &col),
                        "{} n={n} b={b} lane {j}",
                        v.name()
                    );
                }
            }
        }
    }
}

#[test]
fn batched_indexed_dot_lanes_match_serial_bit_exact() {
    let mut rng = StdRng::seed_from_u64(0xBA1D);
    let width = 600usize;
    for n in [0usize, 1, 5, 16, 33, 255] {
        for b in [1usize, 2, 4, 8, 11] {
            let vals = rand_vec(n, &mut rng);
            let mut idx: Vec<u32> = (0..n).map(|_| rng.next_u32() % width as u32).collect();
            idx.sort_unstable();
            let xs = rand_vec(width * b, &mut rng);
            for v in Variant::ALL {
                let mut out = vec![f32::NAN; b];
                indexed_dot_batch_variant(v, &vals, &idx, &xs, b, &mut out);
                for (j, &got) in out.iter().enumerate() {
                    let col: Vec<f32> = (0..width).map(|k| xs[k * b + j]).collect();
                    assert_eq!(
                        got,
                        indexed_dot_variant(v, &vals, &idx, &col),
                        "{} nnz={n} b={b} lane {j}",
                        v.name()
                    );
                }
            }
        }
    }
}

#[test]
fn spmm_columns_match_spmv_exactly_in_every_format() {
    // Under the ambient policy (no `set_policy` — both CI passes prove their
    // own variant): for dense, CSR and BSPC, column `j` of the batched
    // matmul equals the serial matvec of input column `j`, bit for bit.
    let mut rng = StdRng::seed_from_u64(0x59AA);
    for (rows, cols, seed) in [(32usize, 48usize, 11u64), (64, 64, 12), (96, 40, 13)] {
        let dense = bsp_weight(rows, cols, seed);
        let bspc = BspcMatrix::from_dense(&dense, 4, 4).unwrap();
        let csr = CsrMatrix::from_dense(&dense);
        for b in [1usize, 2, 5, 8] {
            let xs = rand_vec(cols * b, &mut rng);
            let cols_of: Vec<Vec<f32>> = (0..b)
                .map(|j| (0..cols).map(|k| xs[k * b + j]).collect())
                .collect();

            let mut ys = vec![f32::NAN; rows * b];
            gemm::gemv_batch_into(&dense, &xs, b, &mut ys).unwrap();
            for (j, col) in cols_of.iter().enumerate() {
                let mut y = vec![f32::NAN; rows];
                gemm::gemv_into(&dense, col, &mut y).unwrap();
                for (i, &want) in y.iter().enumerate() {
                    assert_eq!(ys[i * b + j], want, "dense {rows}x{cols} b={b} lane {j}");
                }
            }

            let mut ys = vec![f32::NAN; rows * b];
            csr.spmm_into(&xs, b, &mut ys).unwrap();
            for (j, col) in cols_of.iter().enumerate() {
                let mut y = vec![f32::NAN; rows];
                csr.spmv_into(col, &mut y).unwrap();
                for (i, &want) in y.iter().enumerate() {
                    assert_eq!(ys[i * b + j], want, "csr {rows}x{cols} b={b} lane {j}");
                }
            }

            let mut ys = vec![f32::NAN; rows * b];
            bspc.spmm_into(&xs, b, &mut ys).unwrap();
            for (j, col) in cols_of.iter().enumerate() {
                let mut y = vec![f32::NAN; rows];
                bspc.spmv_into(col, &mut y).unwrap();
                for (i, &want) in y.iter().enumerate() {
                    assert_eq!(ys[i * b + j], want, "bspc {rows}x{cols} b={b} lane {j}");
                }
            }
        }
    }
}

#[test]
fn bspc_spmv_into_consistent_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0xB59C);
    for (rows, cols, seed) in [(32usize, 48usize, 4u64), (64, 64, 5), (96, 40, 6)] {
        let dense = bsp_weight(rows, cols, seed);
        let bspc = BspcMatrix::from_dense(&dense, 4, 4).unwrap();
        let x = rand_vec(cols, &mut rng);

        // The allocation-free entry point is bit-identical with the
        // Vec-returning one under the same ambient policy.
        let want = bspc.spmv(&x).unwrap();
        let mut y = vec![f32::NAN; rows];
        bspc.spmv_into(&x, &mut y).unwrap();
        assert_eq!(y, want, "{rows}x{cols}");

        // Against the dense reference the summation *order* differs (BSPC
        // iterates block-major), so the sound bound is the classical
        // recursive-summation one: 2·(nnz−1) ULPs at the accumulation
        // magnitude — not the 4-ULP kernel contract, which compares
        // like-ordered reductions only.
        for (r, &yr) in y.iter().enumerate() {
            let row = dense.row(r);
            let mag: f32 = row.iter().zip(&x).map(|(&w, &xc)| (w * xc).abs()).sum();
            let nnz = row.iter().filter(|&&w| w != 0.0).count();
            let dense_ref = dot_variant(Variant::ScalarU1, row, &x);
            let bound = 2.0 * nnz.max(1) as f32 * ulp_at(mag);
            assert!(
                (yr - dense_ref).abs() <= bound,
                "{rows}x{cols} row {r}: {yr} vs {dense_ref} (bound {bound})"
            );
        }
    }
}
