//! Cross-crate integration: the parallel execution engine drives the whole
//! deployed stack — rtm-exec kernels, rtm-rnn cells, and the rtmobile
//! compiled runtime — and every parallel path stays bit-identical to its
//! serial counterpart for every thread count.

use rtm_exec::Executor;
use rtm_rnn::lstm::LstmCell;
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtm_sparse::{BspcMatrix, CsrMatrix};
use rtm_tensor::rng::StdRng;
use rtm_tensor::{gemm, Matrix};
use rtmobile::deploy::{BatchedSession, CompiledNetwork, RuntimePrecision};

const THREADS: [usize; 4] = [1, 2, 3, 8];

fn bsp_weight(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let keep: Vec<bool> = (0..cols).map(|_| rng.gen_f32() < 0.4).collect();
    Matrix::from_fn(rows, cols, |r, c| {
        if keep[c] {
            0.1 + ((r * 7 + c * 3) % 23) as f32 / 10.0
        } else {
            0.0
        }
    })
}

#[test]
fn executor_matches_serial_for_all_formats() {
    let w = bsp_weight(96, 64, 3);
    let bspc = BspcMatrix::from_dense(&w, 4, 4).unwrap();
    let csr = CsrMatrix::from_dense(&w);
    let mut rng = StdRng::seed_from_u64(9);
    let x: Vec<f32> = (0..64).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
    let serial_bspc = bspc.spmv(&x).unwrap();
    let serial_csr = csr.spmv(&x).unwrap();
    for threads in THREADS {
        let exec = Executor::new(threads);
        assert_eq!(exec.spmv_bspc(&bspc, &x).unwrap(), serial_bspc);
        assert_eq!(exec.spmv_csr(&csr, &x).unwrap(), serial_csr);
    }
}

#[test]
fn gru_cell_parallel_timestep_bit_exact() {
    let net = GruNetwork::new(
        &NetworkConfig {
            input_dim: 8,
            hidden_dims: vec![16],
            num_classes: 3,
        },
        5,
    );
    let cell = &net.layers[0];
    let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).sin()).collect();
    let mut h = vec![0.0f32; 16];
    for threads in THREADS {
        let exec = Executor::new(threads);
        let serial = cell.step(&x, &h);
        assert_eq!(cell.step_with(&exec, &x, &h), serial);
        h = serial.h;
    }
}

#[test]
fn lstm_cell_parallel_timestep_bit_exact() {
    let cell = LstmCell::new(6, 12, 7);
    let x: Vec<f32> = (0..6).map(|i| (i as f32 * 0.5).cos()).collect();
    let (mut h, mut c) = (vec![0.0f32; 12], vec![0.0f32; 12]);
    for threads in THREADS {
        let exec = Executor::new(threads);
        let serial = cell.step(&x, &h, &c);
        assert_eq!(cell.step_with(&exec, &x, &h, &c), serial);
        h = serial.h;
        c = serial.c;
    }
}

#[test]
fn compiled_network_parallel_inference_bit_exact() {
    let net = GruNetwork::new(
        &NetworkConfig {
            input_dim: 6,
            hidden_dims: vec![12, 12],
            num_classes: 4,
        },
        11,
    );
    let frames: Vec<Vec<f32>> = (0..7)
        .map(|t| {
            (0..6)
                .map(|i| ((t * 6 + i) as f32 * 0.3).sin() * 0.5)
                .collect()
        })
        .collect();
    for precision in [RuntimePrecision::F32, RuntimePrecision::F16] {
        let compiled = CompiledNetwork::compile(&net, 4, 4, precision).unwrap();
        let serial = compiled.forward(&frames);
        for threads in THREADS {
            let exec = Executor::new(threads);
            assert_eq!(
                compiled.forward_with(&exec, &frames),
                serial,
                "{precision:?}, {threads} threads"
            );
        }
    }
}

#[test]
fn scalar_policy_env_keeps_parallel_bit_exactness() {
    use rtm_tensor::simd::{self, SimdPolicy, Variant};
    // Under CI's second pass (`RTM_SIMD=off`) the dispatcher must resolve to
    // the pre-SIMD reference kernel — re-proving this suite's serial-vs-
    // parallel guarantees on the exact arithmetic the seed repo shipped.
    // This test only *reads* the policy; mutating it here would race the
    // other tests in this binary.
    let env_pins_scalar = std::env::var("RTM_SIMD")
        .ok()
        .and_then(|s| simd::parse_policy(&s))
        == Some(SimdPolicy::Fixed(Variant::ScalarU1));
    if env_pins_scalar {
        assert_eq!(simd::policy(), SimdPolicy::Fixed(Variant::ScalarU1));
        assert_eq!(simd::active_variant(), Variant::ScalarU1);
    }
    // Whatever the ambient policy resolved to, every parallel path must stay
    // bit-identical to its serial counterpart.
    let w = bsp_weight(64, 48, 17);
    let bspc = BspcMatrix::from_dense(&w, 4, 4).unwrap();
    let mut rng = StdRng::seed_from_u64(29);
    let x: Vec<f32> = (0..48).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
    let serial = bspc.spmv(&x).unwrap();
    for threads in THREADS {
        let exec = Executor::new(threads);
        assert_eq!(
            exec.spmv_bspc(&bspc, &x).unwrap(),
            serial,
            "{threads} threads (variant {})",
            simd::active_variant().name()
        );
    }
}

#[test]
fn batched_engine_lanes_match_serial_spmv_for_all_threads() {
    // The parallel SpMM path (reorder-group-nnz partitioning, batched row
    // kernels) must keep the lane contract at every thread count: lane `j`
    // of the batched result is bit-identical to the serial single-vector
    // matvec of input column `j`.
    let w = bsp_weight(96, 64, 21);
    let bspc = BspcMatrix::from_dense(&w, 4, 4).unwrap();
    let csr = CsrMatrix::from_dense(&w);
    let mut rng = StdRng::seed_from_u64(33);
    for b in [1usize, 3, 8] {
        let xs: Vec<f32> = (0..64 * b).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
        let cols_of: Vec<Vec<f32>> = (0..b)
            .map(|j| (0..64).map(|k| xs[k * b + j]).collect())
            .collect();
        for threads in [1usize, 2, 4] {
            let exec = Executor::new(threads);

            let mut ys = vec![f32::NAN; 96 * b];
            exec.spmm_bspc_into(&bspc, &xs, b, &mut ys).unwrap();
            for (j, col) in cols_of.iter().enumerate() {
                let want = bspc.spmv(col).unwrap();
                for (i, &wi) in want.iter().enumerate() {
                    assert_eq!(ys[i * b + j], wi, "bspc b={b} lane {j}, {threads} threads");
                }
            }

            let mut ys = vec![f32::NAN; 96 * b];
            exec.spmm_csr_into(&csr, &xs, b, &mut ys).unwrap();
            for (j, col) in cols_of.iter().enumerate() {
                let want = csr.spmv(col).unwrap();
                for (i, &wi) in want.iter().enumerate() {
                    assert_eq!(ys[i * b + j], wi, "csr b={b} lane {j}, {threads} threads");
                }
            }

            let mut ys = vec![f32::NAN; 96 * b];
            exec.gemm_dense_into(&w, &xs, b, &mut ys).unwrap();
            for (j, col) in cols_of.iter().enumerate() {
                let mut want = vec![f32::NAN; 96];
                gemm::gemv_into(&w, col, &mut want).unwrap();
                for (i, &wi) in want.iter().enumerate() {
                    assert_eq!(ys[i * b + j], wi, "dense b={b} lane {j}, {threads} threads");
                }
            }
        }
    }
}

#[test]
fn batched_session_matches_serial_predict_across_threads() {
    // End-to-end: the multi-stream scheduler (admit/park/retire with lane
    // compaction) over the parallel engine reproduces serial per-utterance
    // predictions exactly, for both precisions and every thread count.
    let net = GruNetwork::new(
        &NetworkConfig {
            input_dim: 6,
            hidden_dims: vec![12, 12],
            num_classes: 4,
        },
        31,
    );
    let lens = [5usize, 2, 7, 1, 3];
    let streams: Vec<Vec<Vec<f32>>> = lens
        .iter()
        .enumerate()
        .map(|(s, &len)| {
            (0..len)
                .map(|t| {
                    (0..6)
                        .map(|i| (((s * 37 + t * 6 + i) as f32) * 0.23).sin() * 0.6)
                        .collect()
                })
                .collect()
        })
        .collect();
    for precision in [RuntimePrecision::F32, RuntimePrecision::F16] {
        let compiled = CompiledNetwork::compile(&net, 4, 4, precision).unwrap();
        for threads in [1usize, 2, 4] {
            let exec = Executor::new(threads);
            let serial: Vec<Vec<usize>> = streams
                .iter()
                .map(|s| compiled.predict_with(&exec, s))
                .collect();
            let mut session = BatchedSession::new(&compiled, &exec, 3);
            assert_eq!(
                session.predict(&streams),
                serial,
                "{precision:?}, {threads} threads"
            );
        }
    }
}

#[test]
fn one_executor_serves_the_whole_stack() {
    // A single pool handle is reused across raw SpMV, cell steps and
    // compiled inference — the deployment shape (one pool per process).
    let exec = Executor::new(3);
    let w = bsp_weight(32, 24, 1);
    let bspc = BspcMatrix::from_dense(&w, 2, 2).unwrap();
    let x = vec![0.25f32; 24];
    assert_eq!(exec.spmv_bspc(&bspc, &x).unwrap(), bspc.spmv(&x).unwrap());

    let cell = LstmCell::new(4, 8, 2);
    let xs: Vec<f32> = (0..4).map(|i| i as f32 * 0.1).collect();
    let serial = cell.step(&xs, &[0.0; 8], &[0.0; 8]);
    assert_eq!(cell.step_with(&exec, &xs, &[0.0; 8], &[0.0; 8]), serial);

    let net = GruNetwork::new(
        &NetworkConfig {
            input_dim: 4,
            hidden_dims: vec![8],
            num_classes: 2,
        },
        3,
    );
    let compiled = CompiledNetwork::compile(&net, 2, 2, RuntimePrecision::F32).unwrap();
    let frames = vec![vec![0.1f32, -0.2, 0.3, -0.4]; 5];
    assert_eq!(
        compiled.predict_with(&exec, &frames),
        compiled.predict(&frames)
    );
}
