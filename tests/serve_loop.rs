//! Loopback contracts of the `rtm serve` front end (DESIGN.md §14).
//!
//! The load-bearing claim of continuous batching is that it changes
//! *scheduling*, never *numerics*: every stream served over TCP — whatever
//! lanes it shared, whenever it was admitted — must return logits
//! bit-identical to a serial [`CompiledNetwork::forward`] of the same
//! frames. The remaining tests pin the socket-boundary policies: tenant
//! quotas, the connection-table bound, and admission shedding.

use std::net::SocketAddr;
use std::sync::atomic::AtomicBool;

use rtm_exec::Executor;
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtmobile::deploy::CompiledNetwork;
use rtmobile::serve::client::RejectedError;
use rtmobile::serve::{RejectCode, ServeOptions, Server, ShedPolicy, StreamClient};
use rtmobile::{AdmissionConfig, RuntimeConfig, RuntimePrecision, ServeStats};

/// Runs a server on its own thread (the `Executor` must be built on the
/// serving thread — worker pools are not `Sync`), hands the ephemeral
/// address to `body`, and returns the final stats once the server drains.
fn with_server<R>(
    net: &CompiledNetwork,
    config: RuntimeConfig,
    body: impl FnOnce(SocketAddr) -> R,
) -> (ServeStats, R) {
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = scope.spawn(move || {
            let exec = Executor::new(config.threads);
            let mut server = Server::bind(net, &exec, &config).expect("bind");
            tx.send(server.local_addr()).expect("addr handoff");
            server.run().expect("serve")
        });
        let addr = rx.recv().expect("server bound");
        let out = body(addr);
        (handle.join().expect("server thread"), out)
    })
}

fn compiled(seed: u64) -> CompiledNetwork {
    let net = GruNetwork::new(
        &NetworkConfig {
            input_dim: 6,
            hidden_dims: vec![12, 12],
            num_classes: 4,
        },
        seed,
    );
    CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16).unwrap()
}

fn stream(seed: usize, len: usize) -> Vec<Vec<f32>> {
    (0..len)
        .map(|t| {
            (0..6)
                .map(|i| (((seed * 31 + t * 6 + i) as f32) * 0.37 + 0.05).sin() * 0.8)
                .collect()
        })
        .collect()
}

/// Streams one utterance through a blocking client, closed-loop, and
/// returns the logits rows plus the server-reported frame count.
fn run_stream(addr: SocketAddr, tenant: u32, frames: &[Vec<f32>]) -> (Vec<Vec<f32>>, u32) {
    let mut client = StreamClient::connect(addr).expect("connect");
    assert_eq!(client.input_dim, 6);
    assert_eq!(client.classes, 4);
    client.start(tenant).expect("start");
    let logits: Vec<Vec<f32>> = frames
        .iter()
        .map(|f| client.infer(f).expect("infer"))
        .collect();
    let served = client.finish().expect("finish");
    (logits, served)
}

fn assert_bits_equal(a: &[Vec<f32>], b: &[Vec<f32>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: frame count");
    for (t, (x, y)) in a.iter().zip(b).enumerate() {
        for (i, (p, q)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{what}: frame {t} logit {i}: {p} vs {q}"
            );
        }
    }
}

/// Six concurrent connections share three lanes; every stream's logits
/// must match the serial reference bit for bit, and the server must report
/// exactly the frames each client sent.
#[test]
fn concurrent_streams_are_bit_identical_to_serial_inference() {
    let net = compiled(23);
    let lens = [9usize, 4, 12, 7, 5, 10];
    let streams: Vec<Vec<Vec<f32>>> = lens
        .iter()
        .enumerate()
        .map(|(s, &len)| stream(s, len))
        .collect();
    let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| net.forward(s)).collect();

    let config = RuntimeConfig::default()
        .with_threads(2)
        .with_batch(3)
        .with_serve(ServeOptions::default().with_max_streams(lens.len()));
    let (stats, _) = with_server(&net, config, |addr| {
        std::thread::scope(|scope| {
            let clients: Vec<_> = streams
                .iter()
                .enumerate()
                .map(|(s, frames)| scope.spawn(move || run_stream(addr, s as u32, frames)))
                .collect();
            for (s, handle) in clients.into_iter().enumerate() {
                let (logits, served) = handle.join().expect("client thread");
                assert_eq!(served as usize, lens[s], "stream {s} frames served");
                assert_bits_equal(&serial[s], &logits, &format!("stream {s}"));
            }
        });
    });
    assert_eq!(stats.admitted, lens.len());
    assert_eq!(stats.completed, lens.len());
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.quarantined, 0);
}

/// The degenerate capacity-1 server (serve one connection at a time) is
/// the bench baseline; it must still serve every stream, bit-exactly.
#[test]
fn capacity_one_serves_streams_in_turn_bit_exactly() {
    let net = compiled(41);
    let streams: Vec<Vec<Vec<f32>>> = (0..4).map(|s| stream(s + 20, 6)).collect();
    let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| net.forward(s)).collect();

    let config = RuntimeConfig::default()
        .with_batch(1)
        .with_serve(ServeOptions::default().with_max_streams(streams.len()));
    let (stats, _) = with_server(&net, config, |addr| {
        std::thread::scope(|scope| {
            let clients: Vec<_> = streams
                .iter()
                .map(|frames| scope.spawn(move || run_stream(addr, 0, frames)))
                .collect();
            for (s, handle) in clients.into_iter().enumerate() {
                let (logits, _) = handle.join().expect("client thread");
                assert_bits_equal(&serial[s], &logits, &format!("stream {s}"));
            }
        });
    });
    assert_eq!(stats.completed, streams.len());
}

/// A tenant at its quota gets `Reject { TenantQuota }` instead of a lane;
/// other tenants are unaffected.
#[test]
fn tenant_quota_rejects_the_excess_stream() {
    let net = compiled(7);
    let frames = stream(3, 4);
    let serial = net.forward(&frames);

    let config = RuntimeConfig::default().with_batch(4).with_serve(
        ServeOptions::default()
            .with_tenant_quota(1)
            .with_max_streams(3),
    );
    let (stats, _) = with_server(&net, config, |addr| {
        // Tenant 9 takes its one slot; the first round trip proves the
        // server has admitted it before the rival connects.
        let mut held = StreamClient::connect(addr).expect("connect");
        held.start(9).expect("start");
        let first = held.infer(&frames[0]).expect("infer");
        assert_bits_equal(&serial[..1], &[first], "held stream frame 0");

        // Same tenant again: rejected before a lane is spent.
        let mut rival = StreamClient::connect(addr).expect("connect");
        rival.start(9).expect("start");
        let err = rival.infer(&frames[0]).expect_err("quota must reject");
        let rejected = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<RejectedError>())
            .expect("typed rejection");
        assert_eq!(rejected.code, RejectCode::TenantQuota);
        drop(rival);

        // A different tenant sails through.
        let (logits, _) = run_stream(addr, 10, &frames);
        assert_bits_equal(&serial, &logits, "other tenant");

        for (t, f) in frames.iter().enumerate().skip(1) {
            let row = held.infer(f).expect("infer");
            assert_bits_equal(&serial[t..t + 1], &[row], &format!("held stream frame {t}"));
        }
        held.finish().expect("finish");
    });
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.shed, 1, "the quota rejection counts as shed");
}

/// Beyond `max_conns` the server greets, rejects with `Capacity` and
/// closes — the socket-layer shed boundary.
#[test]
fn connection_table_bound_rejects_with_capacity() {
    let net = compiled(13);
    let frames = stream(5, 3);

    let config = RuntimeConfig::default().with_batch(2).with_serve(
        ServeOptions::default()
            .with_max_conns(1)
            .with_max_streams(1),
    );
    let (stats, _) = with_server(&net, config, |addr| {
        let mut held = StreamClient::connect(addr).expect("connect");
        held.start(0).expect("start");
        held.infer(&frames[0]).expect("infer");

        // The table is full: the newcomer still gets a well-formed
        // greeting, then the rejection.
        let mut refused = StreamClient::connect(addr).expect("connect");
        match refused.recv().expect("reject message") {
            rtmobile::serve::ServerMsg::Reject { code } => {
                assert_eq!(code, RejectCode::Capacity);
            }
            other => panic!("expected Reject, got {other:?}"),
        }
        drop(refused);

        for f in &frames[1..] {
            held.infer(f).expect("infer");
        }
        held.finish().expect("finish");
    });
    assert_eq!(stats.completed, 1);
    assert!(stats.shed >= 1, "the refused connection counts as shed");
}

/// With every lane busy and `queue_depth 0`, a parked newcomer is shed
/// under `RejectNew` while the active stream is served to completion.
#[test]
fn full_lanes_shed_the_parked_newcomer() {
    let net = compiled(29);
    let frames = stream(8, 4);
    let serial = net.forward(&frames);

    let config = RuntimeConfig::default()
        .with_batch(1)
        .with_admission(
            AdmissionConfig::unbounded()
                .with_queue_depth(0)
                .with_shed(ShedPolicy::RejectNew),
        )
        .with_serve(ServeOptions::default().with_max_streams(2));
    let (stats, _) = with_server(&net, config, |addr| {
        let mut held = StreamClient::connect(addr).expect("connect");
        held.start(0).expect("start");
        let mut logits = vec![held.infer(&frames[0]).expect("infer")];

        let mut shed = StreamClient::connect(addr).expect("connect");
        shed.start(1).expect("start");
        let err = shed.infer(&frames[0]).expect_err("backlog must shed");
        let rejected = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<RejectedError>())
            .expect("typed rejection");
        assert_eq!(rejected.code, RejectCode::Capacity);
        drop(shed);

        for f in &frames[1..] {
            logits.push(held.infer(f).expect("infer"));
        }
        assert_bits_equal(&serial, &logits, "held stream");
        held.finish().expect("finish");
    });
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.shed, 1);
}

/// `run_until` returns promptly when the stop flag is raised even with a
/// client mid-stream — the CLI's ctrl-c path.
#[test]
fn stop_flag_interrupts_an_idle_server() {
    let net = compiled(3);
    let config = RuntimeConfig::default().with_batch(2);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel();
        let (net, stop) = (&net, &stop);
        let server_thread = scope.spawn(move || {
            let exec = Executor::new(config.threads);
            let mut server = Server::bind(net, &exec, &config).expect("bind");
            tx.send(server.local_addr()).expect("addr handoff");
            server.run_until(stop).expect("serve")
        });
        let addr = rx.recv().expect("server bound");
        let mut client = StreamClient::connect(addr).expect("connect");
        client.start(0).expect("start");
        client.infer(&stream(1, 1)[0]).expect("infer");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let stats = server_thread.join().expect("server thread");
        assert_eq!(stats.admitted, 1);
    });
}

// ---------------------------------------------------------------------------
// Hot swap (DESIGN.md §15): reload under load, zero drops, per-generation
// bit-identity; corrupted publishes leave the old generation serving.
// ---------------------------------------------------------------------------

/// Runs a reloading server (bundle-bound, watching `path`) on its own
/// thread until `body` returns, then raises the stop flag and hands back
/// the serve stats plus the reload counters.
fn with_reloading_server<R>(
    path: &std::path::Path,
    reload: rtmobile::ReloadConfig,
    config: RuntimeConfig,
    body: impl FnOnce(SocketAddr) -> R,
) -> (ServeStats, rtmobile::ReloadStats, R) {
    use std::sync::atomic::Ordering;

    struct StopOnDrop<'a>(&'a AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel();
        let stop = &stop;
        let handle = scope.spawn(move || {
            let exec = Executor::new(config.threads);
            let bundle = rtmobile::CompiledBundle::load(path).expect("load bundle");
            let mut server = Server::bind_bundle(bundle, &exec, &config).expect("bind");
            server.enable_reload(path.to_path_buf(), reload);
            tx.send(server.local_addr()).expect("addr handoff");
            let stats = server.run_until(stop).expect("serve");
            (stats, server.reload_stats())
        });
        let addr = rx.recv().expect("server bound");
        let out = {
            let _guard = StopOnDrop(stop);
            body(addr)
        };
        let (stats, reload_stats) = handle.join().expect("server thread");
        (stats, reload_stats, out)
    })
}

fn reload_temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rtm-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// One single-frame probe stream; returns the logits row.
fn probe_once(addr: SocketAddr, frame: &[f32]) -> Vec<f32> {
    let mut client = StreamClient::connect(addr).expect("connect");
    client.start(5).expect("start");
    let row = client.infer(frame).expect("infer");
    client.finish().expect("finish");
    row
}

fn row_bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

/// The zero-downtime contract: three streams are held mid-flight on
/// generation 1 while generation 2 is published. Probes flip from gen-1
/// logits to gen-2 logits — every probe matching one generation *exactly*,
/// never a blend — and the held streams then finish bit-identical to
/// generation 1 end to end. No stream is dropped, shed or quarantined.
#[test]
fn hot_swap_under_load_drops_no_stream_and_keeps_generations_bit_exact() {
    use rtmobile::bundle::{self, BundleMeta};
    use std::time::{Duration, Instant};

    let dir = reload_temp_dir("swap");
    let path = dir.join("model.rtm");
    let net_a = compiled(51);
    let net_b = compiled(52);
    let held: Vec<Vec<Vec<f32>>> = (0..3).map(|s| stream(s + 40, 8)).collect();
    let serial_a: Vec<Vec<Vec<f32>>> = held.iter().map(|s| net_a.forward(s)).collect();
    let probe = stream(99, 1);
    let probe_a = row_bits(&net_a.forward(&probe)[0]);
    let probe_b = row_bits(&net_b.forward(&probe)[0]);
    assert_ne!(probe_a, probe_b, "the generations must be distinguishable");

    bundle::write(&path, &net_a, &BundleMeta::default().with_generation(1)).expect("publish A");
    let config = RuntimeConfig::default().with_threads(2).with_batch(4);
    let reload = rtmobile::ReloadConfig::default().with_poll_ms(5);
    let (stats, reload_stats, _) = with_reloading_server(&path, reload, config, |addr| {
        // Hold three streams mid-flight on generation 1.
        let mut clients: Vec<StreamClient> = (0..held.len())
            .map(|s| {
                let mut c = StreamClient::connect(addr).expect("connect");
                c.start(s as u32).expect("start");
                c
            })
            .collect();
        for (s, client) in clients.iter_mut().enumerate() {
            for t in 0..4 {
                let row = client.infer(&held[s][t]).expect("infer");
                assert_eq!(
                    row_bits(&row),
                    row_bits(&serial_a[s][t]),
                    "held stream {s} frame {t} before the swap"
                );
            }
        }

        // Publish generation 2 while they are parked mid-utterance.
        bundle::write(&path, &net_b, &BundleMeta::default().with_generation(2)).expect("publish B");

        // Probe with one-frame streams until a probe lands on the new
        // generation. Every probe must be exactly one generation's bits.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "swap never observed");
            let row = row_bits(&probe_once(addr, &probe[0]));
            if row == probe_b {
                break;
            }
            assert_eq!(row, probe_a, "a probe must match gen 1 or gen 2 exactly");
            std::thread::sleep(Duration::from_millis(2));
        }

        // The held streams finish on their own generation, bit for bit.
        for (s, client) in clients.iter_mut().enumerate() {
            for t in 4..held[s].len() {
                let row = client.infer(&held[s][t]).expect("infer");
                assert_eq!(
                    row_bits(&row),
                    row_bits(&serial_a[s][t]),
                    "held stream {s} frame {t} after the swap"
                );
            }
            let served = client.finish().expect("finish");
            assert_eq!(served as usize, held[s].len(), "held stream {s} complete");
        }
    });
    assert!(reload_stats.attempts >= 1);
    assert_eq!(reload_stats.successes, 1, "one swap");
    assert_eq!(reload_stats.refusals, 0);
    assert_eq!(reload_stats.rollbacks, 0);
    assert_eq!(reload_stats.generation, 2, "new streams serve gen 2");
    assert_eq!(stats.shed, 0, "no stream was dropped by the swap");
    assert_eq!(stats.quarantined, 0);
    assert!(stats.completed >= held.len(), "every held stream finished");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted publish (bit rot, or a non-atomic copy caught mid-write) is
/// refused off-thread: probes keep returning the old generation's exact
/// logits throughout, and a subsequent healthy publish still swaps in.
#[test]
fn corrupt_publish_is_refused_and_the_old_generation_keeps_serving() {
    use rtmobile::bundle::{self, BundleMeta};
    use std::time::{Duration, Instant};

    let dir = reload_temp_dir("corrupt");
    let path = dir.join("model.rtm");
    let net_a = compiled(61);
    let net_b = compiled(62);
    let probe = stream(77, 1);
    let probe_a = row_bits(&net_a.forward(&probe)[0]);
    let probe_b = row_bits(&net_b.forward(&probe)[0]);
    assert_ne!(probe_a, probe_b);

    bundle::write(&path, &net_a, &BundleMeta::default().with_generation(1)).expect("publish A");
    let config = RuntimeConfig::default().with_batch(2);
    let reload = rtmobile::ReloadConfig::default().with_poll_ms(2);
    let (_, reload_stats, _) = with_reloading_server(&path, reload, config, |addr| {
        assert_eq!(row_bits(&probe_once(addr, &probe[0])), probe_a, "sanity");

        // A poisoned publish: one flipped byte, written non-atomically —
        // exactly the operator error the checksums exist for.
        let mut bytes = bundle::to_bytes_with(&net_b, &BundleMeta::default().with_generation(2));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).expect("corrupt publish");

        // Long enough for many poll intervals: the refusal must not dent
        // service, and nothing may swap.
        let until = Instant::now() + Duration::from_millis(200);
        while Instant::now() < until {
            assert_eq!(
                row_bits(&probe_once(addr, &probe[0])),
                probe_a,
                "old generation keeps serving through the refusal"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        // A healthy publish after the bad one still swaps.
        bundle::write(&path, &net_b, &BundleMeta::default().with_generation(3))
            .expect("publish good");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "recovery swap never observed");
            let row = row_bits(&probe_once(addr, &probe[0]));
            if row == probe_b {
                break;
            }
            assert_eq!(row, probe_a);
            std::thread::sleep(Duration::from_millis(2));
        }
    });
    assert!(
        reload_stats.refusals >= 1,
        "the corrupt publish was refused"
    );
    assert_eq!(
        reload_stats.successes, 1,
        "only the healthy publish swapped"
    );
    assert_eq!(reload_stats.rollbacks, 0);
    assert_eq!(reload_stats.generation, 3);
    let _ = std::fs::remove_dir_all(&dir);
}
