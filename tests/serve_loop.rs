//! Loopback contracts of the `rtm serve` front end (DESIGN.md §14).
//!
//! The load-bearing claim of continuous batching is that it changes
//! *scheduling*, never *numerics*: every stream served over TCP — whatever
//! lanes it shared, whenever it was admitted — must return logits
//! bit-identical to a serial [`CompiledNetwork::forward`] of the same
//! frames. The remaining tests pin the socket-boundary policies: tenant
//! quotas, the connection-table bound, and admission shedding.

use std::net::SocketAddr;
use std::sync::atomic::AtomicBool;

use rtm_exec::Executor;
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtmobile::deploy::CompiledNetwork;
use rtmobile::serve::client::RejectedError;
use rtmobile::serve::{RejectCode, ServeOptions, Server, ShedPolicy, StreamClient};
use rtmobile::{AdmissionConfig, RuntimeConfig, RuntimePrecision, ServeStats};

/// Runs a server on its own thread (the `Executor` must be built on the
/// serving thread — worker pools are not `Sync`), hands the ephemeral
/// address to `body`, and returns the final stats once the server drains.
fn with_server<R>(
    net: &CompiledNetwork,
    config: RuntimeConfig,
    body: impl FnOnce(SocketAddr) -> R,
) -> (ServeStats, R) {
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = scope.spawn(move || {
            let exec = Executor::new(config.threads);
            let mut server = Server::bind(net, &exec, &config).expect("bind");
            tx.send(server.local_addr()).expect("addr handoff");
            server.run().expect("serve")
        });
        let addr = rx.recv().expect("server bound");
        let out = body(addr);
        (handle.join().expect("server thread"), out)
    })
}

fn compiled(seed: u64) -> CompiledNetwork {
    let net = GruNetwork::new(
        &NetworkConfig {
            input_dim: 6,
            hidden_dims: vec![12, 12],
            num_classes: 4,
        },
        seed,
    );
    CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16).unwrap()
}

fn stream(seed: usize, len: usize) -> Vec<Vec<f32>> {
    (0..len)
        .map(|t| {
            (0..6)
                .map(|i| (((seed * 31 + t * 6 + i) as f32) * 0.37 + 0.05).sin() * 0.8)
                .collect()
        })
        .collect()
}

/// Streams one utterance through a blocking client, closed-loop, and
/// returns the logits rows plus the server-reported frame count.
fn run_stream(addr: SocketAddr, tenant: u32, frames: &[Vec<f32>]) -> (Vec<Vec<f32>>, u32) {
    let mut client = StreamClient::connect(addr).expect("connect");
    assert_eq!(client.input_dim, 6);
    assert_eq!(client.classes, 4);
    client.start(tenant).expect("start");
    let logits: Vec<Vec<f32>> = frames
        .iter()
        .map(|f| client.infer(f).expect("infer"))
        .collect();
    let served = client.finish().expect("finish");
    (logits, served)
}

fn assert_bits_equal(a: &[Vec<f32>], b: &[Vec<f32>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: frame count");
    for (t, (x, y)) in a.iter().zip(b).enumerate() {
        for (i, (p, q)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{what}: frame {t} logit {i}: {p} vs {q}"
            );
        }
    }
}

/// Six concurrent connections share three lanes; every stream's logits
/// must match the serial reference bit for bit, and the server must report
/// exactly the frames each client sent.
#[test]
fn concurrent_streams_are_bit_identical_to_serial_inference() {
    let net = compiled(23);
    let lens = [9usize, 4, 12, 7, 5, 10];
    let streams: Vec<Vec<Vec<f32>>> = lens
        .iter()
        .enumerate()
        .map(|(s, &len)| stream(s, len))
        .collect();
    let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| net.forward(s)).collect();

    let config = RuntimeConfig::default()
        .with_threads(2)
        .with_batch(3)
        .with_serve(ServeOptions::default().with_max_streams(lens.len()));
    let (stats, _) = with_server(&net, config, |addr| {
        std::thread::scope(|scope| {
            let clients: Vec<_> = streams
                .iter()
                .enumerate()
                .map(|(s, frames)| scope.spawn(move || run_stream(addr, s as u32, frames)))
                .collect();
            for (s, handle) in clients.into_iter().enumerate() {
                let (logits, served) = handle.join().expect("client thread");
                assert_eq!(served as usize, lens[s], "stream {s} frames served");
                assert_bits_equal(&serial[s], &logits, &format!("stream {s}"));
            }
        });
    });
    assert_eq!(stats.admitted, lens.len());
    assert_eq!(stats.completed, lens.len());
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.quarantined, 0);
}

/// The degenerate capacity-1 server (serve one connection at a time) is
/// the bench baseline; it must still serve every stream, bit-exactly.
#[test]
fn capacity_one_serves_streams_in_turn_bit_exactly() {
    let net = compiled(41);
    let streams: Vec<Vec<Vec<f32>>> = (0..4).map(|s| stream(s + 20, 6)).collect();
    let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| net.forward(s)).collect();

    let config = RuntimeConfig::default()
        .with_batch(1)
        .with_serve(ServeOptions::default().with_max_streams(streams.len()));
    let (stats, _) = with_server(&net, config, |addr| {
        std::thread::scope(|scope| {
            let clients: Vec<_> = streams
                .iter()
                .map(|frames| scope.spawn(move || run_stream(addr, 0, frames)))
                .collect();
            for (s, handle) in clients.into_iter().enumerate() {
                let (logits, _) = handle.join().expect("client thread");
                assert_bits_equal(&serial[s], &logits, &format!("stream {s}"));
            }
        });
    });
    assert_eq!(stats.completed, streams.len());
}

/// A tenant at its quota gets `Reject { TenantQuota }` instead of a lane;
/// other tenants are unaffected.
#[test]
fn tenant_quota_rejects_the_excess_stream() {
    let net = compiled(7);
    let frames = stream(3, 4);
    let serial = net.forward(&frames);

    let config = RuntimeConfig::default().with_batch(4).with_serve(
        ServeOptions::default()
            .with_tenant_quota(1)
            .with_max_streams(3),
    );
    let (stats, _) = with_server(&net, config, |addr| {
        // Tenant 9 takes its one slot; the first round trip proves the
        // server has admitted it before the rival connects.
        let mut held = StreamClient::connect(addr).expect("connect");
        held.start(9).expect("start");
        let first = held.infer(&frames[0]).expect("infer");
        assert_bits_equal(&serial[..1], &[first], "held stream frame 0");

        // Same tenant again: rejected before a lane is spent.
        let mut rival = StreamClient::connect(addr).expect("connect");
        rival.start(9).expect("start");
        let err = rival.infer(&frames[0]).expect_err("quota must reject");
        let rejected = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<RejectedError>())
            .expect("typed rejection");
        assert_eq!(rejected.code, RejectCode::TenantQuota);
        drop(rival);

        // A different tenant sails through.
        let (logits, _) = run_stream(addr, 10, &frames);
        assert_bits_equal(&serial, &logits, "other tenant");

        for (t, f) in frames.iter().enumerate().skip(1) {
            let row = held.infer(f).expect("infer");
            assert_bits_equal(&serial[t..t + 1], &[row], &format!("held stream frame {t}"));
        }
        held.finish().expect("finish");
    });
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.shed, 1, "the quota rejection counts as shed");
}

/// Beyond `max_conns` the server greets, rejects with `Capacity` and
/// closes — the socket-layer shed boundary.
#[test]
fn connection_table_bound_rejects_with_capacity() {
    let net = compiled(13);
    let frames = stream(5, 3);

    let config = RuntimeConfig::default().with_batch(2).with_serve(
        ServeOptions::default()
            .with_max_conns(1)
            .with_max_streams(1),
    );
    let (stats, _) = with_server(&net, config, |addr| {
        let mut held = StreamClient::connect(addr).expect("connect");
        held.start(0).expect("start");
        held.infer(&frames[0]).expect("infer");

        // The table is full: the newcomer still gets a well-formed
        // greeting, then the rejection.
        let mut refused = StreamClient::connect(addr).expect("connect");
        match refused.recv().expect("reject message") {
            rtmobile::serve::ServerMsg::Reject { code } => {
                assert_eq!(code, RejectCode::Capacity);
            }
            other => panic!("expected Reject, got {other:?}"),
        }
        drop(refused);

        for f in &frames[1..] {
            held.infer(f).expect("infer");
        }
        held.finish().expect("finish");
    });
    assert_eq!(stats.completed, 1);
    assert!(stats.shed >= 1, "the refused connection counts as shed");
}

/// With every lane busy and `queue_depth 0`, a parked newcomer is shed
/// under `RejectNew` while the active stream is served to completion.
#[test]
fn full_lanes_shed_the_parked_newcomer() {
    let net = compiled(29);
    let frames = stream(8, 4);
    let serial = net.forward(&frames);

    let config = RuntimeConfig::default()
        .with_batch(1)
        .with_admission(
            AdmissionConfig::unbounded()
                .with_queue_depth(0)
                .with_shed(ShedPolicy::RejectNew),
        )
        .with_serve(ServeOptions::default().with_max_streams(2));
    let (stats, _) = with_server(&net, config, |addr| {
        let mut held = StreamClient::connect(addr).expect("connect");
        held.start(0).expect("start");
        let mut logits = vec![held.infer(&frames[0]).expect("infer")];

        let mut shed = StreamClient::connect(addr).expect("connect");
        shed.start(1).expect("start");
        let err = shed.infer(&frames[0]).expect_err("backlog must shed");
        let rejected = err
            .get_ref()
            .and_then(|e| e.downcast_ref::<RejectedError>())
            .expect("typed rejection");
        assert_eq!(rejected.code, RejectCode::Capacity);
        drop(shed);

        for f in &frames[1..] {
            logits.push(held.infer(f).expect("infer"));
        }
        assert_bits_equal(&serial, &logits, "held stream");
        held.finish().expect("finish");
    });
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.shed, 1);
}

/// `run_until` returns promptly when the stop flag is raised even with a
/// client mid-stream — the CLI's ctrl-c path.
#[test]
fn stop_flag_interrupts_an_idle_server() {
    let net = compiled(3);
    let config = RuntimeConfig::default().with_batch(2);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel();
        let (net, stop) = (&net, &stop);
        let server_thread = scope.spawn(move || {
            let exec = Executor::new(config.threads);
            let mut server = Server::bind(net, &exec, &config).expect("bind");
            tx.send(server.local_addr()).expect("addr handoff");
            server.run_until(stop).expect("serve")
        });
        let addr = rx.recv().expect("server bound");
        let mut client = StreamClient::connect(addr).expect("connect");
        client.start(0).expect("start");
        client.infer(&stream(1, 1)[0]).expect("infer");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let stats = server_thread.join().expect("server thread");
        assert_eq!(stats.admitted, 1);
    });
}
