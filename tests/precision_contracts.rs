//! Numeric contracts of the quantized runtime (DESIGN.md §12): the int8
//! and f16 compiled paths track the f32 path within explicit error bounds,
//! every precision is bit-identical across the serial, pooled and batched
//! engines at every thread count, binary16 edge cases (subnormal flush,
//! ±∞ saturation, NaN) survive the storage round-trip through a full
//! quantized forward, and the `Auto` precision mode picks a measured
//! non-f32 storage for at least one layer while the pipeline's PER guard
//! holds.

use rtm_exec::Executor;
use rtm_rnn::model::NetworkConfig;
use rtm_rnn::GruNetwork;
use rtm_tensor::f16::quantize_f16;
use rtmobile::deploy::{BatchedSession, CompiledNetwork, RuntimePrecision};
use rtmobile::{PrecisionChoice, RtMobile};

fn network(seed: u64) -> GruNetwork {
    GruNetwork::new(
        &NetworkConfig {
            input_dim: 6,
            hidden_dims: vec![12, 12],
            num_classes: 4,
        },
        seed,
    )
}

/// Deterministic synthetic frames in `[-0.6, 0.6]`, no exact zeros.
fn frames(count: usize, dim: usize, phase: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|t| {
            (0..dim)
                .map(|i| (((phase * 37 + t * dim + i) as f32) * 0.23 + 0.11).sin() * 0.6)
                .collect()
        })
        .collect()
}

fn max_abs_diff(a: &[Vec<f32>], b: &[Vec<f32>]) -> f32 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.iter().zip(y).map(|(p, q)| (p - q).abs()))
        .fold(0.0f32, f32::max)
}

fn assert_bits_equal(a: &[Vec<f32>], b: &[Vec<f32>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: frame count");
    for (t, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{what}: frame {t} width");
        for (i, (p, q)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{what}: frame {t} logit {i}: {p} vs {q}"
            );
        }
    }
}

/// The quantized runtimes are approximations with *stated* bounds, not
/// "close enough": binary16 carries 11 significand bits (relative step
/// 2^-11 ≈ 4.9e-4 per rounding) and the logits here are O(1), so a
/// two-layer forward with activation re-rounding stays well under 0.05
/// absolute; int8 spends 8 bits per weight plus per-block scales, so its
/// band is wider but must stay under 0.5 on the same O(1) logits.
#[test]
fn quantized_runtimes_track_f32_within_explicit_bounds() {
    let net = network(77);
    let input = frames(12, 6, 3);
    let f32_rt = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).unwrap();
    let f16_rt = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16).unwrap();
    let i8_rt = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::Int8).unwrap();

    let base = f32_rt.forward(&input);
    let d16 = max_abs_diff(&base, &f16_rt.forward(&input));
    let d8 = max_abs_diff(&base, &i8_rt.forward(&input));
    assert!(d16 > 0.0, "f16 path must actually round");
    assert!(d16 < 0.05, "f16 logit error {d16} exceeds the 0.05 bound");
    assert!(d8 > 0.0, "int8 path must actually quantize");
    assert!(d8 < 0.5, "int8 logit error {d8} exceeds the 0.5 bound");
}

/// One numeric result per precision, regardless of engine: the serial
/// loop, the pooled executor at every thread count, and the lane-major
/// batched session must agree bit for bit. For f32/f16 this holds because
/// the pooled/batched kernels keep the serial accumulation order; for
/// int8 because i32 accumulation is exact and each lane quantizes its
/// activation column exactly as the serial entry does.
#[test]
fn serial_pooled_and_batched_agree_bit_for_bit_per_precision() {
    let net = network(31);
    let lens = [5usize, 2, 7, 3];
    let streams: Vec<Vec<Vec<f32>>> = lens
        .iter()
        .enumerate()
        .map(|(s, &len)| frames(len, 6, s))
        .collect();
    for precision in [
        RuntimePrecision::F32,
        RuntimePrecision::F16,
        RuntimePrecision::Int8,
    ] {
        let compiled = CompiledNetwork::compile(&net, 4, 4, precision).unwrap();
        let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| compiled.forward(s)).collect();
        for threads in [1usize, 2, 4] {
            let exec = Executor::new(threads);
            for (s, stream) in streams.iter().enumerate() {
                assert_bits_equal(
                    &serial[s],
                    &compiled.forward_with(&exec, stream),
                    &format!("pooled {precision:?} stream {s} at {threads} threads"),
                );
            }
            let mut session = BatchedSession::new(&compiled, &exec, 3);
            let batched = session.run(&streams);
            for (s, got) in batched.iter().enumerate() {
                assert_bits_equal(
                    &serial[s],
                    got,
                    &format!("batched {precision:?} stream {s} at {threads} threads"),
                );
            }
        }
    }
}

/// Binary16 edge cases through a full quantized forward. The compile
/// contract is "pre-round once, then the 2-byte sidecar is exact": a
/// network whose weights include f16 subnormals, the exact f16 maximum
/// and overflowing magnitudes (which saturate to ±∞ in storage) must
/// produce bit-identical logits to compiling its pre-rounded twin — and
/// the saturated gates still yield finite logits.
#[test]
fn f16_edge_cases_survive_the_quantized_forward() {
    // Storage-level edge semantics first (the encode half of the map; the
    // decode half is covered bit-exhaustively in rtm_tensor::f16 tests).
    assert_eq!(quantize_f16(65504.0), 65504.0, "f16 max is exact");
    assert_eq!(quantize_f16(7.0e4), f32::INFINITY, "overflow saturates");
    assert_eq!(quantize_f16(-7.0e4), f32::NEG_INFINITY);
    let sub = quantize_f16(3.0e-5);
    assert!(
        sub > 0.0 && sub < 6.103_515_6e-5,
        "3e-5 lands in the subnormal band, not flushed: {sub}"
    );
    assert!(
        quantize_f16(1.0e-8).abs() < f32::MIN_POSITIVE,
        "below-subnormal flushes to zero"
    );
    assert!(quantize_f16(f32::NAN).is_nan(), "NaN stays NaN");

    let mut net = network(55);
    // Push a band of the first layer's update-gate input weights into the
    // subnormal range and plant one overflowing magnitude per sign; the
    // rest of the weights stay in the normal band.
    {
        let w_z = &mut net.layers[0].w_z;
        for v in w_z.row_mut(0) {
            *v *= 1.0e-4; // Xavier-scale values * 1e-4 land subnormal in f16.
        }
        // One saturating weight per row, rows apart: a dot product must
        // never see both signs of ∞ (that would be NaN by IEEE, not a
        // storage question).
        w_z.row_mut(3)[1] = 9.0e4; // +inf in storage.
        w_z.row_mut(7)[2] = -9.0e4; // -inf in storage.
        w_z.row_mut(10)[4] = 65504.0; // exact f16 max.
    }

    // The pre-rounded twin: every tensor the f16 compile stores at 2 bytes
    // gets the same rounding up front.
    let mut rounded = net.clone();
    for cell in &mut rounded.layers {
        for m in [
            &mut cell.w_z,
            &mut cell.u_z,
            &mut cell.w_r,
            &mut cell.u_r,
            &mut cell.w_n,
            &mut cell.u_n,
        ] {
            for v in m.as_mut_slice() {
                *v = quantize_f16(*v);
            }
        }
    }
    for v in rounded.head.w.as_mut_slice() {
        *v = quantize_f16(*v);
    }
    let stored: Vec<f32> = rounded.layers[0].w_z.as_slice().to_vec();
    assert!(
        stored.iter().any(|v| v.is_infinite()),
        "the overflow injections must saturate in storage"
    );
    assert!(
        stored.iter().any(|&v| v != 0.0 && v.abs() < 6.103_515_6e-5),
        "the subnormal injections must survive in storage"
    );

    let f16_rt = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16).unwrap();
    let twin_rt = CompiledNetwork::compile(&rounded, 4, 4, RuntimePrecision::F16).unwrap();
    let input = frames(9, 6, 5);
    let got = f16_rt.forward(&input);
    assert_bits_equal(&got, &twin_rt.forward(&input), "pre-rounding is idempotent");
    for (t, frame) in got.iter().enumerate() {
        for (i, v) in frame.iter().enumerate() {
            assert!(
                v.is_finite(),
                "saturated gates must still produce finite logits: frame {t} logit {i} = {v}"
            );
        }
    }
}

/// The acceptance-criterion pipeline run: `Auto` measures per-layer kernel
/// costs and ships a mixed-precision compile. On a host with the vector
/// dispatch active the quantized kernels win the measurement, so at least
/// one layer must come out non-f32 — and the pipeline's internal PER guard
/// (ship all-f32 if the mix degrades more than the bound) has verifiably
/// not tripped when it does. PER itself stays coherent with the f32-eval
/// pruned accuracy at this quick scale.
#[test]
fn auto_precision_selects_quantized_layers_within_per_guard() {
    let report = RtMobile::builder()
        .corpus(rtm_speech::corpus::CorpusConfig {
            speakers: 12,
            sentences_per_speaker: 3,
            phones_per_sentence: 5,
            noise: 0.35,
            ..rtm_speech::corpus::CorpusConfig::default_scaled()
        })
        .hidden(24)
        .dense_training(8, 0.01)
        .compression(4.0, 2.0)
        .partition(4, 4)
        .admm(rtm_pruning::admm::AdmmConfig {
            rho: 2.0,
            admm_iterations: 1,
            epochs_per_iteration: 3,
            finetune_epochs: 6,
            lr: 4e-3,
            clip: Some(rtm_rnn::GradClip::new(5.0)),
        })
        .sim_hidden(256)
        .seed(3)
        .precision(PrecisionChoice::Auto)
        .run();

    let p = &report.performance;
    assert_eq!(p.precision, "auto");
    assert_eq!(
        p.layers_f32 + p.layers_f16 + p.layers_int8,
        2,
        "every layer reports a storage precision"
    );
    // The measured selection only provably favors quantized storage when
    // the vector kernels are live; under RTM_SIMD=off the scalar timings
    // may legitimately keep f32.
    if rtm_tensor::simd::active_variant() == rtm_tensor::simd::Variant::Vector {
        assert!(
            p.layers_f16 + p.layers_int8 >= 1,
            "auto must pick a quantized storage for at least one layer \
             (got {} f32 / {} f16 / {} int8)",
            p.layers_f32,
            p.layers_f16,
            p.layers_int8
        );
    }
    let a = &report.accuracy;
    assert!(
        (a.compiled_per - a.pruned_per).abs() < 20.0,
        "auto-mix PER {:.2}% incoherent with pruned f32 PER {:.2}%",
        a.compiled_per,
        a.pruned_per
    );
}
