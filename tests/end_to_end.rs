//! End-to-end integration tests spanning every crate: corpus → training →
//! BSP/ADMM pruning → BSPC compilation → functional sparse inference →
//! simulated mobile performance.
//!
//! These run the same flows the table-regeneration binaries use, at small
//! scale, and assert the *shape* claims of the paper hold through the whole
//! stack (not just within one crate).

use rtm_compiler::plan::{ExecutionPlan, StorageFormat};
use rtm_pruning::admm::AdmmConfig;
use rtm_pruning::bsp::{BspConfig, BspPruner};
use rtm_pruning::schedule::CompressionTarget;
use rtm_sim::{EseReference, GruWorkload, InferenceSim};
use rtm_speech::corpus::CorpusConfig;
use rtm_speech::per::PerReport;
use rtm_speech::task::SpeechTask;
use rtmobile::deploy::{CompiledNetwork, RuntimePrecision};
use rtmobile::RtMobile;

fn quick_admm() -> AdmmConfig {
    AdmmConfig {
        rho: 2.0,
        admm_iterations: 1,
        epochs_per_iteration: 3,
        finetune_epochs: 6,
        lr: 4e-3,
        clip: Some(rtm_rnn::GradClip::new(5.0)),
    }
}

fn quick_corpus() -> CorpusConfig {
    CorpusConfig {
        speakers: 12,
        sentences_per_speaker: 3,
        phones_per_sentence: 5,
        noise: 0.35,
        ..CorpusConfig::default_scaled()
    }
}

/// Train → prune → compile → sparse inference agrees with dense inference.
#[test]
fn pruned_model_runs_identically_through_the_compiled_runtime() {
    let task = SpeechTask::new(&quick_corpus(), 99);
    let mut net = task.new_network(24, 99);
    task.train(&mut net, 8, 0.01);

    let pruner = BspPruner::new(BspConfig {
        num_stripes: 4,
        num_blocks: 4,
        target: CompressionTarget::new(4.0, 1.0),
        admm: quick_admm(),
    });
    pruner.prune(&mut net, &task.training_data());

    let compiled =
        CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).expect("partition fits");
    for u in task.test_utterances().into_iter().take(4) {
        let dense = net.forward(&u.frames);
        let sparse = compiled.forward(&u.frames);
        for (d, s) in dense.iter().zip(&sparse) {
            for (a, b) in d.iter().zip(s) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "compiled runtime must match dense: {a} vs {b}"
                );
            }
        }
    }
}

/// The headline claim at small scale: moderate BSP compression keeps PER
/// close to the dense baseline while extreme compression degrades it.
#[test]
fn per_degradation_grows_with_compression() {
    let task = SpeechTask::new(&quick_corpus(), 5);
    let mut dense = task.new_network(48, 5);
    task.train(&mut dense, 20, 8e-3);
    let base = task.evaluate(&dense).per_percent();

    let per_at = |col: f64, row: f64| -> f64 {
        let mut net = dense.clone();
        let pruner = BspPruner::new(BspConfig {
            num_stripes: 4,
            num_blocks: 4,
            target: CompressionTarget::new(col, row),
            admm: quick_admm(),
        });
        pruner.prune(&mut net, &task.training_data());
        task.evaluate(&net).per_percent()
    };

    let light = per_at(2.0, 1.0);
    let heavy = per_at(12.0, 4.0);
    assert!(
        light - base < 12.0,
        "light pruning should stay near baseline: {base} -> {light}"
    );
    assert!(
        heavy > light,
        "heavy pruning must degrade more: light {light} vs heavy {heavy}"
    );
}

/// BSP beats the coarse structured baseline at a comparable rate —
/// Table I's central ordering.
#[test]
fn bsp_beats_coarse_structured_at_same_rate() {
    let task = SpeechTask::new(&quick_corpus(), 21);
    let mut dense = task.new_network(48, 21);
    task.train(&mut dense, 20, 8e-3);

    // BSP at 4x (2x cols x 2x rows within blocks).
    let mut bsp_net = dense.clone();
    BspPruner::new(BspConfig {
        num_stripes: 4,
        num_blocks: 4,
        target: CompressionTarget::new(2.0, 2.0),
        admm: quick_admm(),
    })
    .prune(&mut bsp_net, &task.training_data());
    let bsp_per = task.evaluate(&bsp_net).per_percent();

    // Wang-style whole-column + whole-row at the same nominal 4x.
    let mut coarse_net = dense.clone();
    rtm_pruning::baselines::prune_column_row(
        &mut coarse_net,
        &task.training_data(),
        2.0,
        2.0,
        quick_admm(),
    );
    let coarse_per = task.evaluate(&coarse_net).per_percent();

    assert!(
        bsp_per <= coarse_per + 1.0,
        "BSP ({bsp_per:.2}%) must not lose to coarse structured ({coarse_per:.2}%) at equal rate"
    );
}

/// The full builder pipeline produces a coherent report and the simulated
/// performance side shows the Table II orderings.
#[test]
fn pipeline_report_is_coherent() {
    let report = RtMobile::builder()
        .corpus(quick_corpus())
        .hidden(24)
        .dense_training(8, 0.01)
        .compression(4.0, 2.0)
        .partition(4, 4)
        .admm(quick_admm())
        .sim_hidden(256)
        .seed(3)
        .run();

    let a = &report.accuracy;
    assert!(a.achieved_rate > 3.0, "achieved {}", a.achieved_rate);
    assert!(a.kept_params < a.total_params);
    assert!(a.baseline_per >= 0.0 && a.pruned_per >= 0.0);
    // The compiled runtime is close to the pruned f32 accuracy.
    assert!((a.compiled_per - a.pruned_per).abs() < 20.0);

    let p = &report.performance;
    assert!(p.gpu.time_us < p.cpu.time_us, "GPU faster than CPU");
    assert!(p.gpu.efficiency_vs_ese > p.cpu.efficiency_vs_ese * 0.5);
    assert!(p.storage_bytes > 0);
    assert_eq!(
        p.layers_f32 + p.layers_f16 + p.layers_int8,
        2,
        "every layer reports a storage precision"
    );
    assert!(report.render().contains("RTMobile pipeline report"));
}

/// Figure 4's saturation and Table II's ESE crossover, through the public
/// sim API at paper scale.
#[test]
fn speedup_saturates_and_crosses_ese() {
    let sim = InferenceSim::new();
    let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
    let dense_plan = ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations();

    let time_at = |col: f64, row: f64, dense: bool| -> f64 {
        let w = GruWorkload::with_bsp_pattern(40, 1024, 2, col, row, 8, 8, 1);
        sim.run_frame(&w, if dense { &dense_plan } else { &plan })
            .time_us
    };

    let dense = time_at(1.0, 1.0, true);
    let mid = time_at(16.0, 2.0, false);
    let high = time_at(15.3, 16.0, false); // ~245x
    let extreme = time_at(15.0, 20.0, false); // ~301x

    // Monotone decline...
    assert!(dense > mid && mid > high, "{dense} > {mid} > {high}");
    // ...with saturation at the end (Figure 4).
    assert!(high / extreme < 1.3, "saturation: {high} vs {extreme}");
    // ESE-latency crossover near 245x (within 2x, per EXPERIMENTS.md).
    let ese = EseReference::paper().time_per_frame_us;
    assert!(
        high < 2.0 * ese,
        "GPU at ~245x ({high}) must be near ESE ({ese})"
    );
    // Dense is dramatically slower — the >30x headline speedup range.
    assert!(dense / high > 20.0, "speedup {}", dense / high);
}

/// The f16 compiled path preserves task accuracy relative to f32 — the
/// paper's 16-bit GPU inference is accuracy-safe.
#[test]
fn f16_runtime_accuracy_matches_f32() {
    let task = SpeechTask::new(&quick_corpus(), 13);
    let mut net = task.new_network(24, 13);
    task.train(&mut net, 10, 0.01);

    let f32_rt = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).expect("fits");
    let f16_rt = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16).expect("fits");

    let mut r32 = PerReport::default();
    let mut r16 = PerReport::default();
    for u in task.test_utterances() {
        r32.add(&f32_rt.predict(&u.frames), &u.labels, &u.phones);
        r16.add(&f16_rt.predict(&u.frames), &u.labels, &u.phones);
    }
    assert!(
        (r32.per_percent() - r16.per_percent()).abs() < 5.0,
        "f32 {:.2}% vs f16 {:.2}%",
        r32.per_percent(),
        r16.per_percent()
    );
}
