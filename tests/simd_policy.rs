//! Policy semantics of the SIMD dispatch layer.
//!
//! [`set_policy`](rtm_tensor::simd::set_policy) is **process-global**, so
//! this file is its own integration-test binary and keeps every mutation
//! inside ONE `#[test]` function: cargo runs tests of a binary on parallel
//! threads, and two tests racing on the global policy would make the
//! dispatched kernels nondeterministic mid-assertion. The differential
//! suite (`tests/simd_kernels.rs`) deliberately never mutates the policy
//! for the same reason.

use rtm_tensor::rng::StdRng;
use rtm_tensor::simd::{self, SimdPolicy, Variant};

#[test]
fn policy_resolution_override_and_dispatch() {
    // --- 1. First observation reflects the environment. -------------------
    // `RTM_SIMD` is read once, on the first `policy()` call before any
    // `set_policy`; this test's first read *is* that call for this process.
    // CI exercises both arms: default run (unset → Auto) and the
    // `RTM_SIMD=off` run (→ pinned scalar-u1).
    let env_policy = std::env::var("RTM_SIMD")
        .ok()
        .and_then(|s| simd::parse_policy(&s))
        .unwrap_or(SimdPolicy::Auto);
    let initial = simd::policy();
    assert_eq!(
        initial, env_policy,
        "first policy() read must honour RTM_SIMD"
    );

    // --- 2. Resolution against CPU support. -------------------------------
    // Auto and Fixed(Vector) degrade to scalar-u8 without the ISA; pinned
    // scalar variants are always honoured verbatim.
    let widest = if simd::vector_available() {
        Variant::Vector
    } else {
        Variant::ScalarU8
    };
    for (policy, want) in [
        (SimdPolicy::Auto, widest),
        (SimdPolicy::Fixed(Variant::Vector), widest),
        (SimdPolicy::Fixed(Variant::ScalarU1), Variant::ScalarU1),
        (SimdPolicy::Fixed(Variant::ScalarU4), Variant::ScalarU4),
        (SimdPolicy::Fixed(Variant::ScalarU8), Variant::ScalarU8),
    ] {
        simd::set_policy(policy);
        assert_eq!(simd::policy(), policy, "set_policy must win over the env");
        assert_eq!(simd::active_variant(), want, "{policy:?}");
    }

    // --- 3. The dispatched kernels follow the pinned variant exactly. -----
    let mut rng = StdRng::seed_from_u64(77);
    let a: Vec<f32> = (0..301).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
    let b: Vec<f32> = (0..301).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
    for v in Variant::ALL {
        simd::set_policy(SimdPolicy::Fixed(v));
        let resolved = simd::active_variant();
        assert_eq!(
            simd::dot(&a, &b),
            simd::dot_variant(resolved, &a, &b),
            "dispatched dot under pinned {}",
            v.name()
        );
        let mut y_dispatched = b.clone();
        simd::axpy(0.25, &a, &mut y_dispatched);
        let mut y_explicit = b.clone();
        simd::axpy_variant(resolved, 0.25, &a, &mut y_explicit);
        assert_eq!(
            y_dispatched,
            y_explicit,
            "dispatched axpy under {}",
            v.name()
        );
    }

    // --- 4. Restore, so later-added tests in this binary see the ambient
    // policy they expect. --------------------------------------------------
    simd::set_policy(initial);
    assert_eq!(simd::policy(), initial);
}
