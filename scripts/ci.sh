#!/usr/bin/env bash
# Tier-1 gate for this repository (see ROADMAP.md). Runs entirely offline:
# the workspace has no registry dependencies, so no network is required.
#
# Usage: scripts/ci.sh [--quick]
#   --quick   skip the release build (debug build + tests only)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

if [[ "$quick" -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release --workspace
fi

# The fault-injection suite's decoder fuzz runs 10k seeded mutations by
# default; --quick trims it to 1k (same seeds, shorter schedule).
if [[ "$quick" -eq 1 ]]; then
  export RTM_FUZZ_ITERS=1000
fi

echo "==> cargo test -q (includes fault_injection + batched_contracts)"
cargo test -q --workspace

# Second pass with the SIMD dispatcher pinned to the scalar-u1 reference:
# proves the whole suite (including every bit-exactness guarantee) holds on
# the pre-SIMD arithmetic, not just on the host's vector path.
echo "==> cargo test -q (RTM_SIMD=off)"
RTM_SIMD=off cargo test -q --workspace

# Third pass with tracing globally enabled: the instrumented paths must
# not change any result (trace_contract proves bit-identity for one model;
# this proves the whole suite holds with every counter/span hot).
echo "==> cargo test -q (RTM_TRACE=on)"
RTM_TRACE=on cargo test -q --workspace

# Fourth pass with the runtime precision forced to int8: every pipeline /
# end-to-end test must hold when the compiled model stores quantized
# weights (the precision-specific differential suites run in every pass;
# this pass additionally reroutes every default-precision compile).
echo "==> cargo test -q (RTM_PRECISION=int8)"
RTM_PRECISION=int8 cargo test -q --workspace

# Fifth pass with the storage format resolved by the per-layer tuner:
# every pipeline / end-to-end test must hold when each layer's weights can
# land in any of the four formats (BSPC/CSR/BBS/CSB) behind the PER guard.
echo "==> cargo test -q (RTM_FORMAT=auto)"
RTM_FORMAT=auto cargo test -q --workspace

# Sixth pass with the streaming decoder rerouted to CTC prefix beam
# search: every pipeline / serve / decode-contract test must hold when the
# default decode path is the beam decoder (per-lane state, partials and
# endpoints live on every served stream).
echo "==> cargo test -q (RTM_DECODER=ctc-beam:4)"
RTM_DECODER=ctc-beam:4 cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Smoke the perf benchmark binaries (tiny shapes, one iteration). Reports
# land under target/quick/, never clobbering the committed BENCH_*.json.
echo "==> benchmark smoke runs (--quick)"
profile=()
if [[ "$quick" -eq 0 ]]; then
  profile=(--release)
fi
for bin in parallel_spmv simd_kernels batched_spmm trace_overhead quant_kernels format_zoo serve_load reload_bench rtf_bench; do
  cargo run -q "${profile[@]}" -p rtm-bench --bin "$bin" -- --quick >/dev/null
done

# Serve smoke: train-and-save a tiny model, then run the real `rtm serve`
# binary against it — ephemeral loopback port, one stream driven by the
# in-process smoke client, bit-identity check, clean shutdown.
echo "==> rtm serve smoke (ephemeral port, one stream, clean shutdown)"
mkdir -p target/quick
cargo run -q "${profile[@]}" -p rtmobile --bin rtm -- \
  pipeline --hidden 12 --save target/quick/serve_smoke.rtm >/dev/null
cargo run -q "${profile[@]}" -p rtmobile --bin rtm -- \
  serve target/quick/serve_smoke.rtm --smoke 1 | grep -q "serve smoke ok"

# Bundle-integrity smoke: compile an AOT bundle with the real `rtm compile`,
# flip one byte mid-file, and require `rtm serve` to refuse it with a
# nonzero exit and the typed checksum error (never serve corrupt weights).
echo "==> corrupt-bundle refusal (one flipped byte must be rejected)"
cargo run -q "${profile[@]}" -p rtmobile --bin rtm -- \
  compile --hidden 12 --out target/quick/compile_smoke.rtm >/dev/null
cp target/quick/compile_smoke.rtm target/quick/corrupt_smoke.rtm
size=$(wc -c < target/quick/corrupt_smoke.rtm)
off=$((size / 2))
orig=$(dd if=target/quick/corrupt_smoke.rtm bs=1 skip="$off" count=1 2>/dev/null | od -An -tu1 | tr -d ' ')
printf "$(printf '\\%03o' $(( orig ^ 16 )))" \
  | dd of=target/quick/corrupt_smoke.rtm bs=1 seek="$off" count=1 conv=notrunc 2>/dev/null
if out=$(cargo run -q "${profile[@]}" -p rtmobile --bin rtm -- \
    serve target/quick/corrupt_smoke.rtm --smoke 1 2>&1); then
  echo "FAIL: rtm serve accepted a corrupt bundle" >&2
  exit 1
fi
grep -q "checksum mismatch" <<< "$out"

echo "CI gate passed."
