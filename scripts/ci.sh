#!/usr/bin/env bash
# Tier-1 gate for this repository (see ROADMAP.md). Runs entirely offline:
# the workspace has no registry dependencies, so no network is required.
#
# Usage: scripts/ci.sh [--quick]
#   --quick   skip the release build (debug build + tests only)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

if [[ "$quick" -eq 0 ]]; then
  echo "==> cargo build --release"
  cargo build --release --workspace
fi

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
