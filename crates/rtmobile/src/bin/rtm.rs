//! `rtm` — the RTMobile command-line front end.
//!
//! ```text
//! rtm pipeline [--hidden N] [--col X] [--row Y] [--stripes S] [--blocks B]
//!              [--seed K] [--threads T] [--batch B] [--simd POLICY]
//!              [--health POLICY] [--precision CHOICE] [--format CHOICE]
//!              [--decoder CHOICE] [--trace OUT.json] [--save FILE.rtm]
//! rtm compile --out FILE.rtm [--hidden N] [--col X] [--row Y] [--stripes S]
//!             [--blocks B] [--seed K] [--threads T] [--batch B]
//!             [--simd POLICY] [--health POLICY] [--precision CHOICE]
//!             [--format CHOICE] [--decoder CHOICE]
//! rtm serve FILE.rtm [--port P] [--max-conns N] [--tenant-quota Q]
//!           [--max-streams N] [--threads T] [--batch B] [--queue-depth D]
//!           [--shed POLICY] [--simd POLICY] [--health POLICY]
//!           [--decoder CHOICE] [--reload on|off|POLL_MS]
//!           [--rollback-threshold F] [--trace OUT.json] [--smoke N]
//! rtm inspect FILE.rtm
//! rtm help
//! ```
//!
//! The compile-once-serve-many flow (DESIGN.md §15): `compile` runs the
//! full train → BSP-prune → compile flow ahead of time and publishes the
//! result as a checksummed v5 bundle — weights in their final per-layer
//! format and precision, tuner costs, and health metadata (compiled PER,
//! guard verdicts) — via an atomic temp-file + rename write. `serve` loads
//! a bundle and runs the continuous-batching TCP front end on loopback
//! (DESIGN.md §14); with `--reload` (or `RTM_RELOAD`) it watches the
//! bundle path and hot-swaps validated republishes with zero dropped
//! streams, rolling back if the new generation's quarantine rate trips
//! `--rollback-threshold`. `inspect` summarizes a saved model including
//! its integrity and health metadata. Every runtime knob flows through one
//! [`rtmobile::RuntimeConfig`], seeded from the `RTM_*` environment
//! variables and overridden by the flags. `--trace OUT.json` enables the
//! observability registry and writes a Chrome `trace_event` file to
//! `OUT.json` plus the metrics dump (counters/gauges/histograms) next to
//! it as `OUT.metrics.json`.

use rtmobile::serve::{ReloadConfig, ServeOptions, Server, ShedPolicy, StreamClient};
use rtmobile::{bundle, AdmissionConfig, RtMobile, RuntimeConfig, TraceConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("pipeline") => pipeline(&args[1..]),
        Some("compile") => compile(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command: {other}");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!("rtm — RTMobile reproduction CLI");
    println!();
    println!("USAGE:");
    println!("  rtm pipeline [--hidden N] [--col X] [--row Y] [--stripes S] [--blocks B]");
    println!("               [--seed K] [--threads T] [--batch B] [--simd POLICY]");
    println!("               [--health POLICY] [--precision CHOICE] [--format CHOICE]");
    println!("               [--decoder CHOICE] [--trace OUT.json] [--save FILE.rtm]");
    println!("  rtm compile --out FILE.rtm [pipeline flags except --trace/--save]");
    println!("  rtm serve FILE.rtm [--port P] [--max-conns N] [--tenant-quota Q]");
    println!("            [--max-streams N] [--threads T] [--batch B] [--queue-depth D]");
    println!("            [--shed POLICY] [--simd POLICY] [--health POLICY]");
    println!("            [--decoder CHOICE] [--reload on|off|POLL_MS]");
    println!("            [--rollback-threshold F] [--trace OUT.json] [--smoke N]");
    println!("  rtm inspect FILE.rtm");
    println!("  rtm help");
    println!();
    println!("  compile is the ahead-of-time half of compile-once-serve-many: it runs");
    println!("  the train -> prune -> compile pipeline and atomically publishes the");
    println!("  result to --out as a checksummed bundle (weights in their final");
    println!("  per-layer format/precision, tuner costs, health metadata, per-section");
    println!("  CRCs and a whole-file checksum). Republishing to the same path bumps");
    println!("  the bundle generation. pipeline --save writes the same bundle format.");
    println!();
    println!("  --reload watches FILE.rtm while serving (on, off, or a poll interval");
    println!("  in milliseconds; RTM_RELOAD sets the same knob). A validated");
    println!("  republish is hot-swapped with zero dropped streams: in-flight streams");
    println!("  finish on their generation's weights, new streams start on the new");
    println!("  ones. A corrupt, mismatched or canary-failing publish is refused; if");
    println!("  the new generation's quarantine rate exceeds --rollback-threshold");
    println!("  (default 0.5), the server rolls back to the previous generation.");
    println!();
    println!("  serve binds a loopback TCP port (--port 0, the default, picks an");
    println!("  ephemeral one and prints it), loads FILE.rtm and feeds concurrent");
    println!("  connections through the continuous-batching runtime: --batch lanes");
    println!("  are shared mid-flight, --max-conns bounds the connection table,");
    println!("  --tenant-quota bounds concurrent streams per tenant, --queue-depth");
    println!("  bounds the parked backlog (shed under --shed reject-new|drop-oldest)");
    println!("  and --max-streams serves N streams then exits (omit to serve until");
    println!("  interrupted). Every stream's logits are bit-identical to a serial");
    println!("  run of the same frames. --smoke N drives the server from an");
    println!("  in-process client (N synthetic streams over loopback), verifies");
    println!("  bit-identity and exits — the CI self-test.");
    println!();
    println!("  --batch scores up to B test utterances per weight pass through the");
    println!("  multi-stream batched runtime (default 1; bit-identical results).");
    println!();
    println!("  --simd picks the kernel dispatch policy: auto (default; widest");
    println!("  realization the CPU supports), off/scalar, u4, u8, or vector.");
    println!("  The RTM_SIMD environment variable sets the same knob.");
    println!();
    println!("  --health picks the numerical-health policy of the batched scorer");
    println!("  and of model loading: off (default), check, or quarantine.");
    println!("  The RTM_HEALTH environment variable sets the same knob.");
    println!();
    println!("  --precision picks the weight storage precision of the compiled");
    println!("  runtime: f32, f16 (default; the paper's mobile-GPU datapath), int8,");
    println!("  or auto (measure the kernels per layer and pick the fastest, with");
    println!("  a PER-degradation guard). The RTM_PRECISION environment variable");
    println!("  sets the same knob.");
    println!();
    println!("  --format picks the sparse storage format of the compiled runtime:");
    println!("  bspc (default; the paper's block-based structured pruning format),");
    println!("  csr, bbs, csb, or auto (time the four formats against each layer's");
    println!("  actual pruned weights and pick the fastest per layer, with a");
    println!("  PER-degradation guard). The RTM_FORMAT environment variable sets");
    println!("  the same knob.");
    println!();
    println!("  --decoder picks the streaming decoder: argmax (default; per-frame");
    println!("  best class), viterbi (transition-penalty smoothing), ctc-greedy");
    println!("  (CTC best path: collapse repeats, drop blanks) or ctc-beam:N (CTC");
    println!("  prefix beam search with beam width N). pipeline scores the decoded");
    println!("  hypotheses and reports per-stream/per-batch RTF; serve sends");
    println!("  hypotheses to streams that opt in (protocol v2). The RTM_DECODER");
    println!("  environment variable sets the same knob.");
    println!();
    println!("  --trace enables the observability registry (RTM_TRACE sets the same");
    println!("  knob without an output file) and writes a Chrome trace_event file");
    println!("  to OUT.json plus the metrics dump to OUT.metrics.json. Tracing");
    println!("  never changes any computed number.");
}

/// Parses `--flag value` pairs against the allow-list `known`; returns
/// `None` (after printing a user-facing message) on any malformed, unknown
/// or repeated flag — bad input must never reach a panic or a silent
/// default.
fn parse_flags(
    args: &[String],
    known: &[&str],
) -> Option<std::collections::BTreeMap<String, String>> {
    let mut out = std::collections::BTreeMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            eprintln!("expected a --flag, got {flag}");
            return None;
        };
        if !known.contains(&name) {
            eprintln!("unknown flag --{name} (try `rtm help`)");
            return None;
        }
        let Some(value) = it.next() else {
            eprintln!("--{name} needs a value");
            return None;
        };
        if out.insert(name.to_string(), value.clone()).is_some() {
            eprintln!("--{name} given twice");
            return None;
        }
    }
    Some(out)
}

/// Parses flag `k` with `parse`, defaulting to `d` when absent; a present
/// but unparseable value is an error, not a silent default.
fn parse_or<T: std::str::FromStr>(
    flags: &std::collections::BTreeMap<String, String>,
    k: &str,
    d: T,
) -> Result<T, String> {
    match flags.get(k) {
        None => Ok(d),
        Some(v) => v.parse().map_err(|_| format!("--{k}: cannot parse {v:?}")),
    }
}

const PIPELINE_FLAGS: &[&str] = &[
    "hidden",
    "col",
    "row",
    "stripes",
    "blocks",
    "seed",
    "threads",
    "batch",
    "simd",
    "health",
    "precision",
    "format",
    "decoder",
    "trace",
    "save",
];

const COMPILE_FLAGS: &[&str] = &[
    "out",
    "hidden",
    "col",
    "row",
    "stripes",
    "blocks",
    "seed",
    "threads",
    "batch",
    "simd",
    "health",
    "precision",
    "format",
    "decoder",
];

/// Applies the runtime knobs shared by every subcommand — `--simd`,
/// `--health`, `--precision`, `--format`, `--decoder` — on top of
/// `runtime`. Flags a subcommand doesn't accept never reach here (the
/// allow-list rejects them first).
fn apply_runtime_flags(
    mut runtime: RuntimeConfig,
    flags: &std::collections::BTreeMap<String, String>,
) -> Result<RuntimeConfig, String> {
    if let Some(v) = flags.get("simd") {
        match rtm_tensor::simd::parse_policy(v) {
            Some(p) => runtime = runtime.with_simd(p),
            None => {
                return Err(format!(
                    "--simd must be auto, off, scalar, u4, u8 or vector (got {v})"
                ))
            }
        }
    }
    if let Some(v) = flags.get("health") {
        match rtmobile::health::parse_policy(v) {
            Some(p) => runtime = runtime.with_health(p),
            None => {
                return Err(format!(
                    "--health must be off, check or quarantine (got {v})"
                ))
            }
        }
    }
    if let Some(v) = flags.get("precision") {
        match rtmobile::PrecisionChoice::parse(v) {
            Some(p) => runtime = runtime.with_precision(p),
            None => {
                return Err(format!(
                    "--precision must be f32, f16, int8 or auto (got {v})"
                ))
            }
        }
    }
    if let Some(v) = flags.get("format") {
        match rtmobile::FormatChoice::parse(v) {
            Some(f) => runtime = runtime.with_format(f),
            None => {
                return Err(format!(
                    "--format must be bspc, csr, bbs, csb or auto (got {v})"
                ))
            }
        }
    }
    if let Some(v) = flags.get("decoder") {
        match rtmobile::DecoderChoice::parse(v) {
            Some(d) => runtime = runtime.with_decoder(d),
            None => {
                return Err(format!(
                    "--decoder must be argmax, viterbi, ctc-greedy or ctc-beam:N (got {v})"
                ))
            }
        }
    }
    Ok(runtime)
}

/// Atomically publishes `compiled` to `path` as a v5 bundle, carrying the
/// run's health metadata and the next generation stamp for that path.
fn publish_bundle(
    path: &str,
    compiled: &rtmobile::deploy::CompiledNetwork,
    report: &rtmobile::PipelineReport,
) -> Result<(u64, usize), String> {
    let target = std::path::Path::new(path);
    let meta = rtmobile::BundleMeta {
        generation: bundle::next_generation(target),
        compiled_per: report.accuracy.compiled_per as f32,
        precision_guard_tripped: report.performance.precision_guard_tripped,
        format_guard_tripped: report.performance.format_guard_tripped,
    };
    let bytes = bundle::to_bytes_with(compiled, &meta);
    bundle::write_bytes_atomic(target, &bytes)
        .map_err(|e| format!("failed to write {path}: {e}"))?;
    Ok((meta.generation, bytes.len()))
}

/// Where the metrics dump lands next to a `--trace` output path:
/// `out.json` → `out.metrics.json` (a non-`.json` path just gets the
/// suffix appended).
fn metrics_path_for(trace_path: &str) -> String {
    match trace_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.metrics.json"),
        None => format!("{trace_path}.metrics.json"),
    }
}

fn pipeline(args: &[String]) -> ExitCode {
    let Some(flags) = parse_flags(args, PIPELINE_FLAGS) else {
        return ExitCode::FAILURE;
    };
    let parsed = (|| -> Result<_, String> {
        Ok((
            parse_or(&flags, "hidden", 48usize)?,
            parse_or(&flags, "col", 10.0f64)?,
            parse_or(&flags, "row", 1.0f64)?,
            parse_or(&flags, "stripes", 4usize)?,
            parse_or(&flags, "blocks", 4usize)?,
            parse_or(&flags, "seed", 2020u64)?,
            parse_or(&flags, "threads", 1usize)?,
            parse_or(&flags, "batch", 1usize)?,
        ))
    })();
    let (hidden, col, row, stripes, blocks, seed, threads, batch) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if col < 1.0 || row < 1.0 {
        eprintln!("compression rates must be >= 1");
        return ExitCode::FAILURE;
    }
    if threads == 0 {
        eprintln!("--threads must be >= 1");
        return ExitCode::FAILURE;
    }
    if batch == 0 {
        eprintln!("--batch must be >= 1");
        return ExitCode::FAILURE;
    }

    // One RuntimeConfig carries every knob: environment defaults first
    // (a set-but-garbage RTM_* variable is an error, not a silent
    // fallback), then the explicit flags on top.
    let mut runtime = match RuntimeConfig::from_env() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    runtime = runtime.with_threads(threads).with_batch(batch);
    runtime = match apply_runtime_flags(runtime, &flags) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let trace_path = flags.get("trace");
    if trace_path.is_some() {
        runtime = runtime.with_trace(TraceConfig::on());
    }

    println!(
        "Running the RTMobile pipeline: hidden {hidden}, target {col}x cols x {row}x rows, \
         partition {stripes}x{blocks}, seed {seed}, {threads} thread(s), batch {batch}"
    );
    let builder = RtMobile::builder()
        .hidden(hidden)
        .compression(col, row)
        .partition(stripes, blocks)
        .seed(seed)
        .runtime(runtime);
    let (report, _net, compiled) = builder.run_keeping_model();
    println!(
        "Kernel dispatch: {} (vector ISA: {})",
        rtm_tensor::simd::active_variant().name(),
        rtm_tensor::simd::vector_isa()
    );
    println!("{}", report.render());

    if let Some(path) = trace_path {
        let reg = rtm_trace::global();
        let metrics_path = metrics_path_for(path);
        for (p, contents) in [
            (path.as_str(), reg.chrome_trace_json()),
            (metrics_path.as_str(), reg.metrics_json()),
        ] {
            if let Err(e) = std::fs::write(p, &contents) {
                eprintln!("failed to write {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("wrote {path} (Chrome trace_event) and {metrics_path} (metrics)");
    }

    if let Some(path) = flags.get("save") {
        match publish_bundle(path, &compiled, &report) {
            Ok((generation, len)) => {
                println!("wrote {path} ({len} bytes, bundle generation {generation})")
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `rtm compile`: the ahead-of-time half of compile-once-serve-many. Runs
/// the same train → prune → compile flow as `pipeline` and atomically
/// publishes the result to `--out` as a checksummed v5 bundle.
fn compile(args: &[String]) -> ExitCode {
    let Some(flags) = parse_flags(args, COMPILE_FLAGS) else {
        return ExitCode::FAILURE;
    };
    let Some(out) = flags.get("out").cloned() else {
        eprintln!("rtm compile needs --out FILE.rtm (try `rtm help`)");
        return ExitCode::FAILURE;
    };
    let parsed = (|| -> Result<_, String> {
        Ok((
            parse_or(&flags, "hidden", 48usize)?,
            parse_or(&flags, "col", 10.0f64)?,
            parse_or(&flags, "row", 1.0f64)?,
            parse_or(&flags, "stripes", 4usize)?,
            parse_or(&flags, "blocks", 4usize)?,
            parse_or(&flags, "seed", 2020u64)?,
            parse_or(&flags, "threads", 1usize)?,
            parse_or(&flags, "batch", 1usize)?,
        ))
    })();
    let (hidden, col, row, stripes, blocks, seed, threads, batch) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if col < 1.0 || row < 1.0 {
        eprintln!("compression rates must be >= 1");
        return ExitCode::FAILURE;
    }
    if threads == 0 || batch == 0 {
        eprintln!("--threads and --batch must be >= 1");
        return ExitCode::FAILURE;
    }
    let mut runtime = match RuntimeConfig::from_env() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    runtime = runtime.with_threads(threads).with_batch(batch);
    runtime = match apply_runtime_flags(runtime, &flags) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "Compiling: hidden {hidden}, target {col}x cols x {row}x rows, \
         partition {stripes}x{blocks}, seed {seed}"
    );
    let (report, _net, compiled) = RtMobile::builder()
        .hidden(hidden)
        .compression(col, row)
        .partition(stripes, blocks)
        .seed(seed)
        .runtime(runtime)
        .run_keeping_model();
    let p = &report.performance;
    println!(
        "compiled PER {:.2}%, precision {} ({} f32 / {} f16 / {} int8), \
         format {} ({} bspc / {} csr / {} bbs / {} csb), guards: precision {}, format {}",
        report.accuracy.compiled_per,
        p.precision,
        p.layers_f32,
        p.layers_f16,
        p.layers_int8,
        p.format,
        p.layers_bspc,
        p.layers_csr,
        p.layers_bbs,
        p.layers_csb,
        if p.precision_guard_tripped {
            "TRIPPED"
        } else {
            "ok"
        },
        if p.format_guard_tripped {
            "TRIPPED"
        } else {
            "ok"
        },
    );
    match publish_bundle(&out, &compiled, &report) {
        Ok((generation, len)) => {
            println!("wrote {out} ({len} bytes, bundle generation {generation})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

const SERVE_FLAGS: &[&str] = &[
    "port",
    "max-conns",
    "tenant-quota",
    "max-streams",
    "threads",
    "batch",
    "queue-depth",
    "shed",
    "simd",
    "health",
    "decoder",
    "reload",
    "rollback-threshold",
    "trace",
    "smoke",
];

fn serve(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: rtm serve FILE.rtm [flags] (try `rtm help`)");
        return ExitCode::FAILURE;
    };
    let Some(flags) = parse_flags(&args[1..], SERVE_FLAGS) else {
        return ExitCode::FAILURE;
    };
    let parsed = (|| -> Result<_, String> {
        Ok((
            parse_or(&flags, "port", 0u16)?,
            parse_or(&flags, "max-conns", 64usize)?,
            parse_or(&flags, "tenant-quota", usize::MAX)?,
            parse_or(&flags, "threads", 1usize)?,
            parse_or(&flags, "batch", 8usize)?,
            parse_or(&flags, "queue-depth", usize::MAX)?,
        ))
    })();
    let (port, max_conns, tenant_quota, threads, batch, queue_depth) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let smoke = match flags.get("smoke") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            Ok(_) => {
                eprintln!("--smoke must be >= 1");
                return ExitCode::FAILURE;
            }
            Err(_) => {
                eprintln!("--smoke: cannot parse {v:?}");
                return ExitCode::FAILURE;
            }
        },
    };
    if max_conns == 0 {
        eprintln!("--max-conns must be >= 1");
        return ExitCode::FAILURE;
    }
    if threads == 0 {
        eprintln!("--threads must be >= 1");
        return ExitCode::FAILURE;
    }
    if batch == 0 {
        eprintln!("--batch must be >= 1");
        return ExitCode::FAILURE;
    }

    let mut runtime = match RuntimeConfig::from_env() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut admission = AdmissionConfig::unbounded().with_queue_depth(queue_depth);
    match flags.get("shed").map(String::as_str) {
        None => {}
        Some("reject-new") => admission = admission.with_shed(ShedPolicy::RejectNew),
        Some("drop-oldest") => admission = admission.with_shed(ShedPolicy::DropOldest),
        Some(v) => {
            eprintln!("--shed must be reject-new or drop-oldest (got {v})");
            return ExitCode::FAILURE;
        }
    }
    let mut serve_opts = ServeOptions::default()
        .with_port(port)
        .with_max_conns(max_conns)
        .with_tenant_quota(tenant_quota);
    match flags.get("max-streams") {
        None => {}
        Some(v) => match v.parse::<usize>() {
            Ok(n) => serve_opts = serve_opts.with_max_streams(n),
            Err(_) => {
                eprintln!("--max-streams: cannot parse {v:?}");
                return ExitCode::FAILURE;
            }
        },
    }
    // The smoke run is self-driving: it serves exactly its own streams,
    // then drains — whatever --max-streams said.
    if let Some(n) = smoke {
        serve_opts = serve_opts.with_max_streams(n);
    }
    runtime = runtime
        .with_threads(threads)
        .with_batch(batch)
        .with_admission(admission)
        .with_serve(serve_opts);
    runtime = match apply_runtime_flags(runtime, &flags) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // --reload: the flag wins; an unset flag defers to RTM_RELOAD.
    let reload_poll_ms: Option<u64> = match flags.get("reload").map(String::as_str) {
        Some("off") | Some("false") => None,
        Some("on") | Some("true") => Some(ReloadConfig::default().poll_ms),
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Some(ms),
            Err(_) => {
                eprintln!("--reload must be on, off or a poll interval in milliseconds (got {v})");
                return ExitCode::FAILURE;
            }
        },
        None => match rtmobile::env::reload_poll_ms() {
            Ok(v) => v.flatten(),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let rollback_threshold = match parse_or(&flags, "rollback-threshold", 0.5f64) {
        Ok(f) if (0.0..=1.0).contains(&f) => f,
        Ok(_) => {
            eprintln!("--rollback-threshold must be between 0 and 1");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let trace_path = flags.get("trace");
    if trace_path.is_some() {
        runtime = runtime.with_trace(TraceConfig::on());
    }
    runtime.apply_globals();

    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The container checksums (whole-file and per-section for v5 bundles)
    // are enforced here: a torn or bit-rotted publish refuses to serve.
    let model = match bundle::from_bytes(&bytes) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("not a valid .rtm model: {e}");
            return ExitCode::FAILURE;
        }
    };
    let net = std::sync::Arc::clone(&model.net);
    if !net.tuner_costs().is_empty() {
        println!(
            "tuner costs loaded from model ({} layers) — no serve-side kernel probe",
            net.tuner_costs().len()
        );
    }

    let generation = model.generation();
    let exec = rtm_exec::Executor::new(runtime.threads);
    let mut server = match Server::bind_bundle(model, &exec, &runtime) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind port {port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(poll_ms) = reload_poll_ms {
        server.enable_reload(
            std::path::PathBuf::from(path),
            ReloadConfig::default()
                .with_poll_ms(poll_ms)
                .with_rollback_quarantine_rate(rollback_threshold),
        );
        println!(
            "watching {path} for republishes (poll {poll_ms} ms, rollback threshold {rollback_threshold})"
        );
    }
    // The smoke scripts parse this line for the ephemeral port.
    println!("listening on {}", server.local_addr());
    println!(
        "model {path}: {} -> {} dims, generation {}, {} lanes, {} thread(s)",
        net.input_dim(),
        net.num_classes(),
        generation,
        runtime.batch,
        runtime.threads
    );

    // --smoke N: drive the server from an in-process client thread — N
    // synthetic streams over the real loopback socket — then verify every
    // returned logits row against a serial forward once the loop drains.
    type SmokeStream = (Vec<Vec<f32>>, Vec<Vec<f32>>);
    let smoke_client = smoke.map(|n| {
        let addr = server.local_addr();
        let input_dim = net.input_dim();
        std::thread::spawn(move || -> Result<Vec<SmokeStream>, String> {
            let err = |what: &'static str| move |e| format!("smoke client {what}: {e}");
            (0..n)
                .map(|s| {
                    let frames: Vec<Vec<f32>> = (0..16)
                        .map(|t| {
                            (0..input_dim)
                                .map(|i| (((s * 997 + t * input_dim + i) as f32) * 0.31).sin())
                                .collect()
                        })
                        .collect();
                    let mut client = StreamClient::connect(addr).map_err(err("connect"))?;
                    client.start(s as u32).map_err(err("start"))?;
                    let mut logits = Vec::with_capacity(frames.len());
                    for f in &frames {
                        logits.push(client.infer(f).map_err(err("infer"))?);
                    }
                    client.finish().map_err(err("finish"))?;
                    Ok((frames, logits))
                })
                .collect()
        })
    });

    let stats = match server.run() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve loop failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "served: {} admitted, {} completed, {} shed, {} quarantined, {} deadline missed, \
         {} batched steps",
        stats.admitted,
        stats.completed,
        stats.shed,
        stats.quarantined,
        stats.deadline_missed,
        stats.frames
    );
    if reload_poll_ms.is_some() {
        let r = server.reload_stats();
        println!(
            "reload: {} attempt(s), {} swap(s), {} refused, {} rollback(s), generation {}",
            r.attempts, r.successes, r.refusals, r.rollbacks, r.generation
        );
    }

    if let Some(handle) = smoke_client {
        let streams = match handle.join() {
            Ok(Ok(s)) => s,
            Ok(Err(e)) => {
                eprintln!("serve smoke FAILED: {e}");
                return ExitCode::FAILURE;
            }
            Err(_) => {
                eprintln!("serve smoke FAILED: client thread panicked");
                return ExitCode::FAILURE;
            }
        };
        let mut frames_total = 0usize;
        for (s, (frames, logits)) in streams.iter().enumerate() {
            let serial = net.forward(frames);
            let identical = serial.len() == logits.len()
                && serial.iter().zip(logits).all(|(a, b)| {
                    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
                });
            if !identical {
                eprintln!("serve smoke FAILED: stream {s} differs from serial forward");
                return ExitCode::FAILURE;
            }
            frames_total += logits.len();
        }
        println!(
            "serve smoke ok: {} stream(s), {} frames, bit-identical to serial",
            streams.len(),
            frames_total
        );
    }

    if let Some(tp) = trace_path {
        let reg = rtm_trace::global();
        let metrics_path = metrics_path_for(tp);
        for (p, contents) in [
            (tp.as_str(), reg.chrome_trace_json()),
            (metrics_path.as_str(), reg.metrics_json()),
        ] {
            if let Err(e) = std::fs::write(p, &contents) {
                eprintln!("failed to write {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("wrote {tp} (Chrome trace_event) and {metrics_path} (metrics)");
    }
    ExitCode::SUCCESS
}

fn inspect(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: rtm inspect FILE.rtm");
        return ExitCode::FAILURE;
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Container integrity first: a corrupt file still gets its layout and
    // checksum verdicts printed before the decode error below refuses it.
    println!("{path}: {} bytes on disk", bytes.len());
    match bundle::probe(&bytes) {
        Err(e) => {
            eprintln!("not a valid .rtm model: {e}");
            return ExitCode::FAILURE;
        }
        Ok(probe) if probe.version < 5 => {
            println!(
                "  integrity     : no integrity data (v{} file predates checksummed bundles)",
                probe.version
            );
        }
        Ok(probe) => {
            println!(
                "  generation    : {}",
                probe
                    .generation
                    .map_or_else(|| "unreadable".to_string(), |g| g.to_string())
            );
            println!(
                "  file checksum : {}",
                match probe.file_crc_ok {
                    Some(true) => "ok",
                    Some(false) => "MISMATCH (torn write or bit rot)",
                    None => "missing trailer",
                }
            );
            for s in &probe.sections {
                println!(
                    "  section {} : {} bytes, checksum {}",
                    String::from_utf8_lossy(&s.tag),
                    s.len,
                    if s.crc_ok { "ok" } else { "MISMATCH" }
                );
            }
        }
    }
    // Load-time weight validation follows the deployment-side health knob.
    let policy = rtmobile::health::policy_from_env();
    let loaded = match bundle::from_bytes_with(&bytes, policy) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("not a valid .rtm model: {e}");
            return ExitCode::FAILURE;
        }
    };
    if loaded.version >= 5 {
        println!(
            "  compiled PER  : {:.2}% (at publish time)",
            loaded.meta.compiled_per
        );
        println!(
            "  guards        : precision {}, format {}",
            if loaded.meta.precision_guard_tripped {
                "TRIPPED (shipped f32)"
            } else {
                "ok"
            },
            if loaded.meta.format_guard_tripped {
                "TRIPPED (shipped bspc)"
            } else {
                "ok"
            }
        );
    }
    let net = loaded.into_network();
    println!("  precision     : {:?}", net.precision());
    let formats: Vec<&str> = net.layer_formats().iter().map(|f| f.tag()).collect();
    println!(
        "  format        : {} (layers: {})",
        net.format().tag(),
        formats.join(", ")
    );
    println!(
        "  sparse storage: {:.1} KiB",
        net.storage_bytes() as f64 / 1024.0
    );
    if net.tuner_costs().is_empty() {
        println!("  tuner costs   : none (fixed-choice compile)");
    } else {
        println!("  tuner costs   :");
        for c in net.tuner_costs() {
            println!(
                "    layer {}: {}/{} measured {:.1} us",
                c.layer,
                c.format.tag(),
                c.precision.tag(),
                c.micros
            );
        }
    }
    ExitCode::SUCCESS
}
