//! `rtm` — the RTMobile command-line front end.
//!
//! ```text
//! rtm pipeline [--hidden N] [--col X] [--row Y] [--stripes S] [--blocks B]
//!              [--seed K] [--threads T] [--batch B] [--simd POLICY]
//!              [--health POLICY] [--precision CHOICE] [--format CHOICE]
//!              [--trace OUT.json] [--save FILE.rtm]
//! rtm inspect FILE.rtm
//! rtm help
//! ```
//!
//! `pipeline` runs the full train → BSP-prune → compile → simulate flow and
//! optionally writes the compiled f16 model to a `.rtm` file; `inspect`
//! summarizes a saved model. Every runtime knob flows through one
//! [`rtmobile::RuntimeConfig`], seeded from the `RTM_*` environment
//! variables and overridden by the flags. `--trace OUT.json` enables the
//! observability registry and writes a Chrome `trace_event` file to
//! `OUT.json` plus the metrics dump (counters/gauges/histograms) next to
//! it as `OUT.metrics.json`.

use rtmobile::{model_file, RtMobile, RuntimeConfig, TraceConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("pipeline") => pipeline(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command: {other}");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!("rtm — RTMobile reproduction CLI");
    println!();
    println!("USAGE:");
    println!("  rtm pipeline [--hidden N] [--col X] [--row Y] [--stripes S] [--blocks B]");
    println!("               [--seed K] [--threads T] [--batch B] [--simd POLICY]");
    println!("               [--health POLICY] [--precision CHOICE] [--format CHOICE]");
    println!("               [--trace OUT.json] [--save FILE.rtm]");
    println!("  rtm inspect FILE.rtm");
    println!("  rtm help");
    println!();
    println!("  --batch scores up to B test utterances per weight pass through the");
    println!("  multi-stream batched runtime (default 1; bit-identical results).");
    println!();
    println!("  --simd picks the kernel dispatch policy: auto (default; widest");
    println!("  realization the CPU supports), off/scalar, u4, u8, or vector.");
    println!("  The RTM_SIMD environment variable sets the same knob.");
    println!();
    println!("  --health picks the numerical-health policy of the batched scorer");
    println!("  and of model loading: off (default), check, or quarantine.");
    println!("  The RTM_HEALTH environment variable sets the same knob.");
    println!();
    println!("  --precision picks the weight storage precision of the compiled");
    println!("  runtime: f32, f16 (default; the paper's mobile-GPU datapath), int8,");
    println!("  or auto (measure the kernels per layer and pick the fastest, with");
    println!("  a PER-degradation guard). The RTM_PRECISION environment variable");
    println!("  sets the same knob.");
    println!();
    println!("  --format picks the sparse storage format of the compiled runtime:");
    println!("  bspc (default; the paper's block-based structured pruning format),");
    println!("  csr, bbs, csb, or auto (time the four formats against each layer's");
    println!("  actual pruned weights and pick the fastest per layer, with a");
    println!("  PER-degradation guard). The RTM_FORMAT environment variable sets");
    println!("  the same knob.");
    println!();
    println!("  --trace enables the observability registry (RTM_TRACE sets the same");
    println!("  knob without an output file) and writes a Chrome trace_event file");
    println!("  to OUT.json plus the metrics dump to OUT.metrics.json. Tracing");
    println!("  never changes any computed number.");
}

/// Parses `--flag value` pairs against the allow-list `known`; returns
/// `None` (after printing a user-facing message) on any malformed, unknown
/// or repeated flag — bad input must never reach a panic or a silent
/// default.
fn parse_flags(
    args: &[String],
    known: &[&str],
) -> Option<std::collections::BTreeMap<String, String>> {
    let mut out = std::collections::BTreeMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            eprintln!("expected a --flag, got {flag}");
            return None;
        };
        if !known.contains(&name) {
            eprintln!("unknown flag --{name} (try `rtm help`)");
            return None;
        }
        let Some(value) = it.next() else {
            eprintln!("--{name} needs a value");
            return None;
        };
        if out.insert(name.to_string(), value.clone()).is_some() {
            eprintln!("--{name} given twice");
            return None;
        }
    }
    Some(out)
}

/// Parses flag `k` with `parse`, defaulting to `d` when absent; a present
/// but unparseable value is an error, not a silent default.
fn parse_or<T: std::str::FromStr>(
    flags: &std::collections::BTreeMap<String, String>,
    k: &str,
    d: T,
) -> Result<T, String> {
    match flags.get(k) {
        None => Ok(d),
        Some(v) => v.parse().map_err(|_| format!("--{k}: cannot parse {v:?}")),
    }
}

const PIPELINE_FLAGS: &[&str] = &[
    "hidden",
    "col",
    "row",
    "stripes",
    "blocks",
    "seed",
    "threads",
    "batch",
    "simd",
    "health",
    "precision",
    "format",
    "trace",
    "save",
];

/// Where the metrics dump lands next to a `--trace` output path:
/// `out.json` → `out.metrics.json` (a non-`.json` path just gets the
/// suffix appended).
fn metrics_path_for(trace_path: &str) -> String {
    match trace_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.metrics.json"),
        None => format!("{trace_path}.metrics.json"),
    }
}

fn pipeline(args: &[String]) -> ExitCode {
    let Some(flags) = parse_flags(args, PIPELINE_FLAGS) else {
        return ExitCode::FAILURE;
    };
    let parsed = (|| -> Result<_, String> {
        Ok((
            parse_or(&flags, "hidden", 48usize)?,
            parse_or(&flags, "col", 10.0f64)?,
            parse_or(&flags, "row", 1.0f64)?,
            parse_or(&flags, "stripes", 4usize)?,
            parse_or(&flags, "blocks", 4usize)?,
            parse_or(&flags, "seed", 2020u64)?,
            parse_or(&flags, "threads", 1usize)?,
            parse_or(&flags, "batch", 1usize)?,
        ))
    })();
    let (hidden, col, row, stripes, blocks, seed, threads, batch) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if col < 1.0 || row < 1.0 {
        eprintln!("compression rates must be >= 1");
        return ExitCode::FAILURE;
    }
    if threads == 0 {
        eprintln!("--threads must be >= 1");
        return ExitCode::FAILURE;
    }
    if batch == 0 {
        eprintln!("--batch must be >= 1");
        return ExitCode::FAILURE;
    }

    // One RuntimeConfig carries every knob: environment defaults first
    // (a set-but-garbage RTM_* variable is an error, not a silent
    // fallback), then the explicit flags on top.
    let mut runtime = match RuntimeConfig::from_env() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    runtime = runtime.with_threads(threads).with_batch(batch);
    match flags.get("simd") {
        None => {}
        Some(v) => match rtm_tensor::simd::parse_policy(v) {
            Some(p) => runtime = runtime.with_simd(p),
            None => {
                eprintln!("--simd must be auto, off, scalar, u4, u8 or vector (got {v})");
                return ExitCode::FAILURE;
            }
        },
    }
    match flags.get("health") {
        None => {}
        Some(v) => match rtmobile::health::parse_policy(v) {
            Some(p) => runtime = runtime.with_health(p),
            None => {
                eprintln!("--health must be off, check or quarantine (got {v})");
                return ExitCode::FAILURE;
            }
        },
    }
    match flags.get("precision") {
        None => {}
        Some(v) => match rtmobile::PrecisionChoice::parse(v) {
            Some(p) => runtime = runtime.with_precision(p),
            None => {
                eprintln!("--precision must be f32, f16, int8 or auto (got {v})");
                return ExitCode::FAILURE;
            }
        },
    }
    match flags.get("format") {
        None => {}
        Some(v) => match rtmobile::FormatChoice::parse(v) {
            Some(f) => runtime = runtime.with_format(f),
            None => {
                eprintln!("--format must be bspc, csr, bbs, csb or auto (got {v})");
                return ExitCode::FAILURE;
            }
        },
    }
    let trace_path = flags.get("trace");
    if trace_path.is_some() {
        runtime = runtime.with_trace(TraceConfig::on());
    }

    println!(
        "Running the RTMobile pipeline: hidden {hidden}, target {col}x cols x {row}x rows, \
         partition {stripes}x{blocks}, seed {seed}, {threads} thread(s), batch {batch}"
    );
    let builder = RtMobile::builder()
        .hidden(hidden)
        .compression(col, row)
        .partition(stripes, blocks)
        .seed(seed)
        .runtime(runtime);
    let (report, _net, compiled) = builder.run_keeping_model();
    println!(
        "Kernel dispatch: {} (vector ISA: {})",
        rtm_tensor::simd::active_variant().name(),
        rtm_tensor::simd::vector_isa()
    );
    println!("{}", report.render());

    if let Some(path) = trace_path {
        let reg = rtm_trace::global();
        let metrics_path = metrics_path_for(path);
        for (p, contents) in [
            (path.as_str(), reg.chrome_trace_json()),
            (metrics_path.as_str(), reg.metrics_json()),
        ] {
            if let Err(e) = std::fs::write(p, &contents) {
                eprintln!("failed to write {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
        println!("wrote {path} (Chrome trace_event) and {metrics_path} (metrics)");
    }

    if let Some(path) = flags.get("save") {
        let bytes = model_file::to_bytes(&compiled);
        match std::fs::write(path, &bytes) {
            Ok(()) => println!("wrote {} ({} bytes)", path, bytes.len()),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn inspect(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: rtm inspect FILE.rtm");
        return ExitCode::FAILURE;
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Load-time weight validation follows the deployment-side health knob.
    let policy = rtmobile::health::policy_from_env();
    let net = match model_file::from_bytes_with(&bytes, policy) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("not a valid .rtm model: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{path}: {} bytes on disk", bytes.len());
    println!("  precision     : {:?}", net.precision());
    let formats: Vec<&str> = net.layer_formats().iter().map(|f| f.tag()).collect();
    println!(
        "  format        : {} (layers: {})",
        net.format().tag(),
        formats.join(", ")
    );
    println!(
        "  sparse storage: {:.1} KiB",
        net.storage_bytes() as f64 / 1024.0
    );
    ExitCode::SUCCESS
}
