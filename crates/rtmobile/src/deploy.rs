//! The deployed runtime artifact: BSPC-compiled GRU inference.
//!
//! [`CompiledNetwork`] lowers a (pruned) [`GruNetwork`] into per-gate
//! [`BspcMatrix`] storage carrying the matrix-reorder permutation, then
//! *executes* inference through the sparse kernels. This is the functional
//! counterpart of the simulator's cost model: the simulator prices the
//! kernels, this module proves they compute the right thing. With
//! [`RuntimePrecision::F16`] all weights and intermediate activations round
//! through IEEE binary16, modelling the paper's 16-bit GPU datapath.

use crate::health::HealthPolicy;
use crate::serve::{AdmissionConfig, ServeStats, ShedPolicy, StreamFault};
use rtm_compiler::reorder::ReorderPlan;
use rtm_compiler::StorageFormat;
use rtm_exec::ExecError;
use rtm_rnn::GruNetwork;
use rtm_sparse::footprint::Footprint;
use rtm_sparse::io::DecodeError;
use rtm_sparse::{BbsMatrix, BspcMatrix, CsbMatrix, CsrMatrix};
use rtm_tensor::activations::{sigmoid, sigmoid_slice, tanh, tanh_slice};
use rtm_tensor::f16::quantize_f16;
use rtm_tensor::{Matrix, Vector};
use std::collections::VecDeque;

/// Numeric mode of the compiled runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RuntimePrecision {
    /// Full f32 (CPU path).
    #[default]
    F32,
    /// Round weights and activations through binary16 (GPU path); the gate
    /// kernels then stream the 2-byte stored form and accumulate in f32.
    F16,
    /// Symmetric int8 storage: gate weights keep their f32 values but the
    /// kernels stream the per-stripe-block int8 sidecar, quantize the
    /// activation vector per call, and accumulate in i32 (one dequantize
    /// at store).
    Int8,
}

impl RuntimePrecision {
    /// The sparse storage precision this runtime mode streams.
    pub fn storage(self) -> rtm_sparse::Precision {
        match self {
            RuntimePrecision::F32 => rtm_sparse::Precision::F32,
            RuntimePrecision::F16 => rtm_sparse::Precision::F16,
            RuntimePrecision::Int8 => rtm_sparse::Precision::Int8,
        }
    }

    /// Short lowercase label ("f32" / "f16" / "int8").
    pub fn tag(self) -> &'static str {
        self.storage().tag()
    }

    /// The runtime mode that streams `storage`
    /// ([`RuntimePrecision::storage`] inverse).
    pub fn from_storage(storage: rtm_sparse::Precision) -> RuntimePrecision {
        match storage {
            rtm_sparse::Precision::F32 => RuntimePrecision::F32,
            rtm_sparse::Precision::F16 => RuntimePrecision::F16,
            rtm_sparse::Precision::Int8 => RuntimePrecision::Int8,
        }
    }

    /// Parses the lowercase label back ([`RuntimePrecision::tag`] inverse).
    pub fn parse(s: &str) -> Option<RuntimePrecision> {
        match s {
            "f32" => Some(RuntimePrecision::F32),
            "f16" => Some(RuntimePrecision::F16),
            "int8" => Some(RuntimePrecision::Int8),
            _ => None,
        }
    }
}

/// Sparse storage format the compiled runtime's gate kernels walk.
///
/// The paper's BSPC is the default; the zoo adds the ESE-style CSR
/// baseline, bank-balanced BBS, and block-panel CSB so the tuner can pick
/// per layer (see [`CompiledNetwork::compile_with_formats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RuntimeFormat {
    /// Block-based structured pruning compact storage (the paper's format).
    #[default]
    Bspc,
    /// Compressed sparse row — the unstructured baseline with a per-nonzero
    /// index decode.
    Csr,
    /// Bank-balanced sparse: padded ELL with a uniform per-row slot budget,
    /// load-balanced by construction.
    Bbs,
    /// Compressed structured blocks: CSR over dense-ish block panels,
    /// suited to pattern-pruned weights.
    Csb,
}

impl RuntimeFormat {
    /// The compiler-plan storage format this runtime mode executes.
    pub fn storage(self) -> StorageFormat {
        match self {
            RuntimeFormat::Bspc => StorageFormat::Bspc,
            RuntimeFormat::Csr => StorageFormat::Csr,
            RuntimeFormat::Bbs => StorageFormat::Bbs,
            RuntimeFormat::Csb => StorageFormat::Csb,
        }
    }

    /// Short lowercase label ("bspc" / "csr" / "bbs" / "csb").
    pub fn tag(self) -> &'static str {
        match self {
            RuntimeFormat::Bspc => "bspc",
            RuntimeFormat::Csr => "csr",
            RuntimeFormat::Bbs => "bbs",
            RuntimeFormat::Csb => "csb",
        }
    }

    /// The runtime mode executing `storage`, if the runtime has kernels for
    /// it ([`RuntimeFormat::storage`] inverse; `Dense` has no sparse
    /// runtime and maps to `None`).
    pub fn from_storage(storage: StorageFormat) -> Option<RuntimeFormat> {
        match storage {
            StorageFormat::Bspc => Some(RuntimeFormat::Bspc),
            StorageFormat::Csr => Some(RuntimeFormat::Csr),
            StorageFormat::Bbs => Some(RuntimeFormat::Bbs),
            StorageFormat::Csb => Some(RuntimeFormat::Csb),
            StorageFormat::Dense => None,
        }
    }

    /// Parses the lowercase label back ([`RuntimeFormat::tag`] inverse).
    pub fn parse(s: &str) -> Option<RuntimeFormat> {
        match s {
            "bspc" => Some(RuntimeFormat::Bspc),
            "csr" => Some(RuntimeFormat::Csr),
            "bbs" => Some(RuntimeFormat::Bbs),
            "csb" => Some(RuntimeFormat::Csb),
            _ => None,
        }
    }
}

/// One compiled gate matrix in its selected storage format.
///
/// Every variant carries the same f32 values plus the f16/int8 sidecars;
/// the format decides the index structure the kernels walk. The serial,
/// pooled and batched entries of every variant share the bit-exactness
/// contract the executor tests pin down, so swapping the format never
/// changes a computed number at f32/f16 (int8 codes differ per format
/// because the scale granularity differs — per stripe-block, row block,
/// row, or block panel).
#[derive(Debug, Clone)]
pub enum GateMatrix {
    /// BSPC storage (may carry the matrix-reorder permutation).
    Bspc(BspcMatrix),
    /// CSR storage.
    Csr(CsrMatrix),
    /// Bank-balanced ELL storage.
    Bbs(BbsMatrix),
    /// Compressed-structured-block storage.
    Csb(CsbMatrix),
}

impl GateMatrix {
    /// The storage format of this gate.
    pub fn format(&self) -> RuntimeFormat {
        match self {
            GateMatrix::Bspc(_) => RuntimeFormat::Bspc,
            GateMatrix::Csr(_) => RuntimeFormat::Csr,
            GateMatrix::Bbs(_) => RuntimeFormat::Bbs,
            GateMatrix::Csb(_) => RuntimeFormat::Csb,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            GateMatrix::Bspc(m) => m.rows(),
            GateMatrix::Csr(m) => m.rows(),
            GateMatrix::Bbs(m) => m.rows(),
            GateMatrix::Csb(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            GateMatrix::Bspc(m) => m.cols(),
            GateMatrix::Csr(m) => m.cols(),
            GateMatrix::Bbs(m) => m.cols(),
            GateMatrix::Csb(m) => m.cols(),
        }
    }

    /// The stored f32 values (layout is format-specific; used for
    /// load-time finiteness scans, not for indexing).
    pub fn values(&self) -> &[f32] {
        match self {
            GateMatrix::Bspc(m) => m.values(),
            GateMatrix::Csr(m) => m.values(),
            GateMatrix::Bbs(m) => m.values(),
            GateMatrix::Csb(m) => m.values(),
        }
    }

    /// Serial SpMV at the given storage precision.
    ///
    /// # Errors
    ///
    /// Returns [`rtm_tensor::ShapeError`] on dimension mismatches.
    pub fn spmv_prec_into(
        &self,
        prec: rtm_sparse::Precision,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<(), rtm_tensor::ShapeError> {
        match self {
            GateMatrix::Bspc(m) => m.spmv_prec_into(prec, x, y),
            GateMatrix::Csr(m) => m.spmv_prec_into(prec, x, y),
            GateMatrix::Bbs(m) => m.spmv_prec_into(prec, x, y),
            GateMatrix::Csb(m) => m.spmv_prec_into(prec, x, y),
        }
    }

    /// Serial lane-major SpMM at the given storage precision.
    ///
    /// # Errors
    ///
    /// Returns [`rtm_tensor::ShapeError`] on dimension mismatches.
    pub fn spmm_prec_into(
        &self,
        prec: rtm_sparse::Precision,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), rtm_tensor::ShapeError> {
        match self {
            GateMatrix::Bspc(m) => m.spmm_prec_into(prec, xs, b, ys),
            GateMatrix::Csr(m) => m.spmm_prec_into(prec, xs, b, ys),
            GateMatrix::Bbs(m) => m.spmm_prec_into(prec, xs, b, ys),
            GateMatrix::Csb(m) => m.spmm_prec_into(prec, xs, b, ys),
        }
    }

    /// Row-parallel SpMV through the executor (bit-identical to the serial
    /// entry for every format, precision and thread count).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on dimension mismatches or a worker panic.
    pub fn exec_spmv_prec_into(
        &self,
        exec: &rtm_exec::Executor,
        prec: rtm_sparse::Precision,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<(), ExecError> {
        match self {
            GateMatrix::Bspc(m) => exec.spmv_bspc_prec_into(m, prec, x, y),
            GateMatrix::Csr(m) => exec.spmv_csr_prec_into(m, prec, x, y),
            GateMatrix::Bbs(m) => exec.spmv_bbs_prec_into(m, prec, x, y),
            GateMatrix::Csb(m) => exec.spmv_csb_prec_into(m, prec, x, y),
        }
    }

    /// Row-parallel lane-major SpMM through the executor.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on dimension mismatches or a worker panic.
    pub fn exec_spmm_prec_into(
        &self,
        exec: &rtm_exec::Executor,
        prec: rtm_sparse::Precision,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ExecError> {
        match self {
            GateMatrix::Bspc(m) => exec.spmm_bspc_prec_into(m, prec, xs, b, ys),
            GateMatrix::Csr(m) => exec.spmm_csr_prec_into(m, prec, xs, b, ys),
            GateMatrix::Bbs(m) => exec.spmm_bbs_prec_into(m, prec, xs, b, ys),
            GateMatrix::Csb(m) => exec.spmm_csb_prec_into(m, prec, xs, b, ys),
        }
    }

    /// Storage footprint at the given value precision.
    pub fn footprint(&self, prec: rtm_sparse::Precision) -> Footprint {
        match self {
            GateMatrix::Bspc(m) => Footprint::bspc(m, prec),
            GateMatrix::Csr(m) => Footprint::csr(m, prec),
            GateMatrix::Bbs(m) => Footprint::bbs(m, prec),
            GateMatrix::Csb(m) => Footprint::csb(m, prec),
        }
    }

    /// Serializes this gate in its format's wire codec (the format tag
    /// itself travels in the container, e.g. the `.rtm` layer header).
    pub fn write_to(&self, out: &mut Vec<u8>, prec: rtm_sparse::Precision) {
        match self {
            GateMatrix::Bspc(m) => m.write_to(out, prec),
            GateMatrix::Csr(m) => m.write_to(out, prec),
            GateMatrix::Bbs(m) => m.write_to(out, prec),
            GateMatrix::Csb(m) => m.write_to(out, prec),
        }
    }

    /// Decodes one gate of the given format from the front of `bytes`,
    /// returning it with the number of bytes consumed. Each codec checks
    /// its own magic, so a format byte pointing at the wrong blob fails
    /// with [`DecodeError::BadMagic`] instead of misparsing.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on any structural problem.
    pub fn read_from(
        bytes: &[u8],
        format: RuntimeFormat,
    ) -> Result<(GateMatrix, usize), DecodeError> {
        Ok(match format {
            RuntimeFormat::Bspc => {
                let (m, used) = BspcMatrix::read_from(bytes)?;
                (GateMatrix::Bspc(m), used)
            }
            RuntimeFormat::Csr => {
                let (m, used) = CsrMatrix::read_from(bytes)?;
                (GateMatrix::Csr(m), used)
            }
            RuntimeFormat::Bbs => {
                let (m, used) = BbsMatrix::read_from(bytes)?;
                (GateMatrix::Bbs(m), used)
            }
            RuntimeFormat::Csb => {
                let (m, used) = CsbMatrix::read_from(bytes)?;
                (GateMatrix::Csb(m), used)
            }
        })
    }
}

/// One compiled GRU layer: six sparse gate matrices plus biases, executed
/// at the layer's own storage precision and format (per-layer selection is
/// the tuner's job).
#[derive(Debug, Clone)]
pub struct CompiledGruLayer {
    pub(crate) w_z: GateMatrix,
    pub(crate) u_z: GateMatrix,
    pub(crate) b_z: Vec<f32>,
    pub(crate) w_r: GateMatrix,
    pub(crate) u_r: GateMatrix,
    pub(crate) b_r: Vec<f32>,
    pub(crate) w_n: GateMatrix,
    pub(crate) u_n: GateMatrix,
    pub(crate) b_n: Vec<f32>,
    pub(crate) hidden: usize,
    pub(crate) precision: RuntimePrecision,
    pub(crate) format: RuntimeFormat,
}

/// One tuner measurement riding along with a compiled model: the seconds
/// the compile-time kernel probe measured for the format × precision a
/// layer was deployed at (stored as microseconds). Persisting these in the
/// model file lets a serving-side load answer "what did the tuner see?"
/// without re-running the probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerCost {
    /// Layer index the measurement belongs to.
    pub layer: usize,
    /// Storage format the probe timed.
    pub format: RuntimeFormat,
    /// Storage precision the probe timed.
    pub precision: RuntimePrecision,
    /// Measured per-step kernel cost in microseconds.
    pub micros: f32,
}

/// A GRU network compiled to sparse storage (BSPC by default; the format
/// zoo's CSR/BBS/CSB per layer when selected).
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    pub(crate) layers: Vec<CompiledGruLayer>,
    pub(crate) head_w: Matrix,
    pub(crate) head_b: Vec<f32>,
    pub(crate) precision: RuntimePrecision,
    pub(crate) format: RuntimeFormat,
    /// Tuner probe measurements (empty unless an Auto compile recorded
    /// them; see [`CompiledNetwork::with_tuner_costs`]).
    pub(crate) tuner_costs: Vec<TunerCost>,
}

/// Reusable workspace for the compiled streaming loop.
///
/// One instance serves every layer of every frame of a stream: the gate
/// vectors and recurrent-SpMV temporaries live here and are resized on
/// use, so the steady state of [`CompiledNetwork::forward`] /
/// [`CompiledNetwork::forward_with`] allocates nothing but the returned
/// logits.
#[derive(Debug, Clone, Default)]
pub struct GruRuntimeScratch {
    /// Update gate.
    z: Vec<f32>,
    /// Reset gate.
    r: Vec<f32>,
    /// Candidate state.
    n: Vec<f32>,
    /// Reset-gated state `r ⊙ h_prev`.
    rh: Vec<f32>,
    /// Recurrent-SpMV temp (serial path) / `U_n (r ⊙ h)` (both paths).
    tmp: Vec<f32>,
    /// `U_z h_prev` in the pooled phase A.
    tmp2: Vec<f32>,
    /// `U_r h_prev` in the pooled phase A.
    tmp3: Vec<f32>,
}

impl GruRuntimeScratch {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> GruRuntimeScratch {
        GruRuntimeScratch::default()
    }

    /// Sizes the per-gate buffers for a layer of width `hidden`.
    ///
    /// The batched step reuses the same workspace with
    /// `hidden = layer_width × lanes`: every buffer is a flat lane-major
    /// `[width × b]` plane, so sizing is the only difference.
    fn reserve(&mut self, hidden: usize) {
        self.z.resize(hidden, 0.0);
        self.r.resize(hidden, 0.0);
        self.n.resize(hidden, 0.0);
        self.rh.resize(hidden, 0.0);
        self.tmp.resize(hidden, 0.0);
        self.tmp2.resize(hidden, 0.0);
        self.tmp3.resize(hidden, 0.0);
    }
}

impl CompiledNetwork {
    /// Compiles `net` with the given BSP partition and precision.
    ///
    /// Every gate matrix is converted to BSPC (with the matrix-reorder
    /// permutation attached per §IV-B-c) and, under
    /// [`RuntimePrecision::F16`], quantized through binary16 first.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`rtm_sparse::BspcError`] when the partition
    /// does not fit a tensor.
    pub fn compile(
        net: &GruNetwork,
        stripes: usize,
        blocks: usize,
        precision: RuntimePrecision,
    ) -> Result<CompiledNetwork, rtm_sparse::BspcError> {
        CompiledNetwork::compile_with_precisions(net, stripes, blocks, &[], precision)
    }

    /// [`CompiledNetwork::compile`] with a per-layer precision override:
    /// layer `i` compiles and runs at `per_layer[i]` (layers past the end
    /// of the slice use `default`). `default` also sets the network-level
    /// activation rounding and head precision. This is the deployment hook
    /// for the tuner's measured per-layer precision selection.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`rtm_sparse::BspcError`] when the partition
    /// does not fit a tensor.
    pub fn compile_with_precisions(
        net: &GruNetwork,
        stripes: usize,
        blocks: usize,
        per_layer: &[RuntimePrecision],
        default: RuntimePrecision,
    ) -> Result<CompiledNetwork, rtm_sparse::BspcError> {
        CompiledNetwork::compile_with_formats(
            net,
            stripes,
            blocks,
            per_layer,
            default,
            &[],
            RuntimeFormat::Bspc,
        )
    }

    /// [`CompiledNetwork::compile_with_precisions`] with a per-layer
    /// storage-format override on top: layer `i` compiles its six gates
    /// into `per_layer_format[i]` (layers past the end use
    /// `default_format`). The `(stripes, blocks)` partition maps onto each
    /// format the same way the compiler's profiler prices them: BSPC uses
    /// it directly, BBS takes `blocks` banks, CSB tiles `stripes × blocks`
    /// block panels, CSR ignores it. This is the deployment hook for the
    /// tuner's measured per-layer format selection.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`rtm_sparse::BspcError`] when the partition
    /// does not fit a tensor (a zero `stripes`/`blocks` is rejected for
    /// every format so the partition contract stays format-independent).
    pub fn compile_with_formats(
        net: &GruNetwork,
        stripes: usize,
        blocks: usize,
        per_layer: &[RuntimePrecision],
        default: RuntimePrecision,
        per_layer_format: &[RuntimeFormat],
        default_format: RuntimeFormat,
    ) -> Result<CompiledNetwork, rtm_sparse::BspcError> {
        if stripes == 0 || blocks == 0 {
            return Err(rtm_sparse::BspcError::ZeroPartition);
        }
        // What the stored weights look like per precision: f16 pre-rounds
        // (the 2-byte sidecar is then exact, so the f16 kernels match the
        // f32 kernels bit for bit on these values); int8 keeps the original
        // f32 values — the int8 sidecar derived from them is what the
        // kernels stream, and dequantizing here would round the codes twice.
        let quant = |m: &Matrix, precision: RuntimePrecision| -> Matrix {
            match precision {
                RuntimePrecision::F32 | RuntimePrecision::Int8 => m.clone(),
                RuntimePrecision::F16 => m.map(quantize_f16),
            }
        };
        let lower = |m: &Matrix,
                     precision: RuntimePrecision,
                     format: RuntimeFormat|
         -> Result<GateMatrix, rtm_sparse::BspcError> {
            let q = quant(m, precision);
            let (rows, cols) = (q.rows(), q.cols());
            Ok(match format {
                RuntimeFormat::Bspc => {
                    let s = stripes.min(rows.max(1));
                    let b = blocks.min(cols.max(1));
                    let reorder = ReorderPlan::compute(&q, 8);
                    let perm: Vec<u32> = reorder.perm.iter().map(|&r| r as u32).collect();
                    GateMatrix::Bspc(BspcMatrix::from_dense(&q, s, b)?.with_reorder(perm)?)
                }
                RuntimeFormat::Csr => GateMatrix::Csr(CsrMatrix::from_dense(&q)),
                // The clamps below mirror the compiler profile's pricing
                // geometry exactly, so the tuner's measured costs describe
                // the matrices actually deployed. Clamped geometry always
                // fits the shape, hence the expects.
                RuntimeFormat::Bbs => {
                    let banks = blocks.min(cols.max(1)).max(1);
                    GateMatrix::Bbs(
                        BbsMatrix::from_dense(&q, banks).expect("banks clamped to shape"),
                    )
                }
                RuntimeFormat::Csb => {
                    let bh = rows.div_ceil(stripes.min(rows.max(1)).max(1));
                    let bw = cols.div_ceil(blocks.min(cols.max(1)).max(1));
                    GateMatrix::Csb(
                        CsbMatrix::from_dense(&q, bh, bw).expect("blocks clamped to shape"),
                    )
                }
            })
        };

        let mut layers = Vec::with_capacity(net.layers.len());
        for (i, cell) in net.layers.iter().enumerate() {
            let precision = per_layer.get(i).copied().unwrap_or(default);
            let format = per_layer_format.get(i).copied().unwrap_or(default_format);
            layers.push(CompiledGruLayer {
                w_z: lower(&cell.w_z, precision, format)?,
                u_z: lower(&cell.u_z, precision, format)?,
                b_z: cell.b_z.clone(),
                w_r: lower(&cell.w_r, precision, format)?,
                u_r: lower(&cell.u_r, precision, format)?,
                b_r: cell.b_r.clone(),
                w_n: lower(&cell.w_n, precision, format)?,
                u_n: lower(&cell.u_n, precision, format)?,
                b_n: cell.b_n.clone(),
                hidden: cell.hidden_dim(),
                precision,
                format,
            });
        }
        // The head stays a dense f32 gemv; int8 models weight-only
        // per-tensor quantization there (the DESIGN.md §6 what-if).
        let head_w = match default {
            RuntimePrecision::F32 => net.head.w.clone(),
            RuntimePrecision::F16 => net.head.w.map(quantize_f16),
            RuntimePrecision::Int8 => {
                rtm_tensor::QuantizedMatrix::quantize(&net.head.w).dequantize()
            }
        };
        Ok(CompiledNetwork {
            layers,
            head_w,
            head_b: net.head.b.clone(),
            precision: default,
            format: default_format,
            tuner_costs: Vec::new(),
        })
    }

    /// Attaches tuner probe measurements to travel with the model (they
    /// serialize into the `.rtm` v4 cost section).
    pub fn with_tuner_costs(mut self, costs: Vec<TunerCost>) -> CompiledNetwork {
        self.tuner_costs = costs;
        self
    }

    /// Tuner probe measurements recorded at compile time (empty when the
    /// model was compiled with explicit, un-probed settings).
    pub fn tuner_costs(&self) -> &[TunerCost] {
        &self.tuner_costs
    }

    /// Input frame dimension the compiled model expects.
    pub fn input_dim(&self) -> usize {
        self.layers
            .first()
            .map(|l| l.w_z.cols())
            .unwrap_or_else(|| self.head_w.cols())
    }

    /// Number of output classes (logit rows per frame).
    pub fn num_classes(&self) -> usize {
        self.head_b.len()
    }

    /// The network-level numeric mode (per-layer overrides may differ; see
    /// [`CompiledNetwork::layer_precisions`]).
    pub fn precision(&self) -> RuntimePrecision {
        self.precision
    }

    /// The storage precision each compiled layer runs at, in layer order.
    pub fn layer_precisions(&self) -> Vec<RuntimePrecision> {
        self.layers.iter().map(|l| l.precision).collect()
    }

    /// The network-level storage format (per-layer overrides may differ;
    /// see [`CompiledNetwork::layer_formats`]).
    pub fn format(&self) -> RuntimeFormat {
        self.format
    }

    /// The storage format each compiled layer's gates walk, in layer order.
    pub fn layer_formats(&self) -> Vec<RuntimeFormat> {
        self.layers.iter().map(|l| l.format).collect()
    }

    /// The compiled GRU layers, in execution order.
    pub fn layers(&self) -> &[CompiledGruLayer] {
        &self.layers
    }

    /// Total bytes of the compiled weight storage (values + indices +
    /// quantization scale metadata) at each layer's runtime precision and
    /// format.
    pub fn storage_bytes(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| {
                [&l.w_z, &l.u_z, &l.w_r, &l.u_r, &l.w_n, &l.u_n]
                    .map(|m| m.footprint(l.precision.storage()).total())
            })
            .sum()
    }

    fn maybe_quantize(&self, v: &mut [f32]) {
        if self.precision == RuntimePrecision::F16 {
            for x in v {
                *x = quantize_f16(*x);
            }
        }
    }

    /// Runs inference over a frame sequence, returning per-frame logits.
    ///
    /// Streaming is zero-allocation in steady state: one
    /// [`GruRuntimeScratch`] plus double-buffered state/input vectors serve
    /// every frame; only the returned logit rows are freshly allocated.
    ///
    /// # Panics
    ///
    /// Panics if the frame dimension does not match the compiled model.
    pub fn forward(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut states: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.hidden]).collect();
        let mut scratch = GruRuntimeScratch::new();
        let mut x: Vec<f32> = Vec::new();
        let mut h_next: Vec<f32> = Vec::new();
        let mut logits = Vec::with_capacity(frames.len());
        for frame in frames {
            x.clear();
            x.extend_from_slice(frame);
            self.maybe_quantize(&mut x);
            for (layer, h) in self.layers.iter().zip(states.iter_mut()) {
                layer.step_into(&x, h, &mut scratch, &mut h_next);
                std::mem::swap(h, &mut h_next);
                x.clear();
                x.extend_from_slice(h);
            }
            let mut out = rtm_tensor::gemm::gemv(&self.head_w, &x).expect("head dims");
            Vector::axpy(1.0, &self.head_b, &mut out);
            logits.push(out);
        }
        logits
    }

    /// Per-frame argmax predictions.
    pub fn predict(&self, frames: &[Vec<f32>]) -> Vec<usize> {
        self.forward(frames)
            .iter()
            .map(|l| Vector::argmax(l))
            .collect()
    }

    /// [`CompiledNetwork::forward`] with every gate SpMV dispatched through
    /// a parallel [`rtm_exec::Executor`]. Bit-identical to the serial
    /// forward for any thread count (per-gate accumulation order is
    /// preserved; see [`CompiledGruLayer::step_with`]).
    ///
    /// # Panics
    ///
    /// Panics if the frame dimension does not match the compiled model.
    pub fn forward_with(&self, exec: &rtm_exec::Executor, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut states: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.hidden]).collect();
        let mut scratch = GruRuntimeScratch::new();
        let mut x: Vec<f32> = Vec::new();
        let mut h_next: Vec<f32> = Vec::new();
        let mut logits = Vec::with_capacity(frames.len());
        for frame in frames {
            x.clear();
            x.extend_from_slice(frame);
            self.maybe_quantize(&mut x);
            for (layer, h) in self.layers.iter().zip(states.iter_mut()) {
                layer.step_with_into(exec, &x, h, &mut scratch, &mut h_next);
                std::mem::swap(h, &mut h_next);
                x.clear();
                x.extend_from_slice(h);
            }
            let mut out = rtm_tensor::gemm::gemv(&self.head_w, &x).expect("head dims");
            Vector::axpy(1.0, &self.head_b, &mut out);
            logits.push(out);
        }
        logits
    }

    /// Per-frame argmax predictions through the parallel executor.
    pub fn predict_with(&self, exec: &rtm_exec::Executor, frames: &[Vec<f32>]) -> Vec<usize> {
        self.forward_with(exec, frames)
            .iter()
            .map(|l| Vector::argmax(l))
            .collect()
    }

    /// Runs the utterance through the parallel executor and decodes it with
    /// `choice`'s decoder ([`crate::config::DecoderChoice::build`] over
    /// this head's class count). The serial offline counterpart of the
    /// per-lane streaming decode in [`BatchedSession`]; both feed the same
    /// logits to the same decoder, so their hypotheses are bit-identical.
    pub fn decode_with(
        &self,
        exec: &rtm_exec::Executor,
        frames: &[Vec<f32>],
        choice: crate::config::DecoderChoice,
    ) -> rtm_speech::Hypothesis {
        let logits = self.forward_with(exec, frames);
        let mut decoder = choice.build(self.head_b.len());
        rtm_speech::decode_offline(decoder.as_mut(), &logits)
    }
}

/// A GRU layer compiled with gate fusion: one `3H × I` input kernel and
/// one `3H × H` recurrent kernel per step — the launch structure the
/// simulator's frame model (and the Figure 4 saturation) assumes.
#[derive(Debug, Clone)]
pub struct FusedGruLayer {
    wx: BspcMatrix,
    uh: BspcMatrix,
    biases: [Vec<f32>; 3],
    hidden: usize,
}

impl FusedGruLayer {
    /// Fuses a trained cell's gates (z, r, n order) into the two kernels.
    ///
    /// # Errors
    ///
    /// Returns [`rtm_sparse::BspcError`] if the partition does not fit the
    /// fused matrices.
    pub fn compile(
        cell: &rtm_rnn::gru::GruCell,
        stripes: usize,
        blocks: usize,
    ) -> Result<FusedGruLayer, rtm_sparse::BspcError> {
        use rtm_compiler::fusion::FusedMatrix;
        let wx_fused = FusedMatrix::stack(&[&cell.w_z, &cell.w_r, &cell.w_n])
            .expect("gates share the input width");
        let uh_fused = FusedMatrix::stack(&[&cell.u_z, &cell.u_r, &cell.u_n])
            .expect("gates share the hidden width");
        let s = |m: &Matrix| stripes.min(m.rows().max(1));
        let b = |m: &Matrix| blocks.min(m.cols().max(1));
        Ok(FusedGruLayer {
            wx: BspcMatrix::from_dense(&wx_fused.matrix, s(&wx_fused.matrix), b(&wx_fused.matrix))?,
            uh: BspcMatrix::from_dense(&uh_fused.matrix, s(&uh_fused.matrix), b(&uh_fused.matrix))?,
            biases: [cell.b_z.clone(), cell.b_r.clone(), cell.b_n.clone()],
            hidden: cell.hidden_dim(),
        })
    }

    /// One GRU step through the fused kernels.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn step(&self, x: &[f32], h_prev: &[f32]) -> Vec<f32> {
        let hid = self.hidden;
        // Kernel 1: all input-side gate pre-activations at once.
        let wx_out = self.wx.spmv(x).expect("input dims");
        // Kernel 2: all recurrent pre-activations on h (z and r use these;
        // the candidate's recurrent part needs r ⊙ h, computed below).
        let uh_out = self.uh.spmv(h_prev).expect("hidden dims");

        let mut z = vec![0.0f32; hid];
        let mut r = vec![0.0f32; hid];
        for i in 0..hid {
            z[i] = sigmoid(wx_out[i] + uh_out[i] + self.biases[0][i]);
            r[i] = sigmoid(wx_out[hid + i] + uh_out[hid + i] + self.biases[1][i]);
        }
        let rh: Vec<f32> = r.iter().zip(h_prev).map(|(&a, &b)| a * b).collect();
        let uh_rh = self.uh.spmv(&rh).expect("hidden dims");
        let mut h = vec![0.0f32; hid];
        for i in 0..hid {
            let n = tanh(wx_out[2 * hid + i] + uh_rh[2 * hid + i] + self.biases[2][i]);
            h[i] = (1.0 - z[i]) * n + z[i] * h_prev[i];
        }
        h
    }
}

impl CompiledGruLayer {
    /// The storage precision this layer's gate kernels stream.
    pub fn precision(&self) -> RuntimePrecision {
        self.precision
    }

    /// The storage format this layer's gate kernels walk.
    pub fn format(&self) -> RuntimeFormat {
        self.format
    }

    /// One serial GRU step, allocation-free: gates and temporaries live in
    /// `scratch`, the fresh state lands in `h_out` (resized on entry). Every
    /// gate SpMV streams the layer's compiled storage precision.
    fn step_into(
        &self,
        x: &[f32],
        h_prev: &[f32],
        scratch: &mut GruRuntimeScratch,
        h_out: &mut Vec<f32>,
    ) {
        let quantize = |v: &mut [f32]| {
            if self.precision == RuntimePrecision::F16 {
                for e in v.iter_mut() {
                    *e = quantize_f16(*e);
                }
            }
        };
        let prec = self.precision.storage();
        scratch.reserve(self.hidden);
        h_out.resize(self.hidden, 0.0);

        self.w_z
            .spmv_prec_into(prec, x, &mut scratch.z)
            .expect("dims");
        self.u_z
            .spmv_prec_into(prec, h_prev, &mut scratch.tmp)
            .expect("dims");
        Vector::axpy(1.0, &scratch.tmp, &mut scratch.z);
        Vector::axpy(1.0, &self.b_z, &mut scratch.z);
        sigmoid_slice(&mut scratch.z);
        quantize(&mut scratch.z);

        self.w_r
            .spmv_prec_into(prec, x, &mut scratch.r)
            .expect("dims");
        self.u_r
            .spmv_prec_into(prec, h_prev, &mut scratch.tmp)
            .expect("dims");
        Vector::axpy(1.0, &scratch.tmp, &mut scratch.r);
        Vector::axpy(1.0, &self.b_r, &mut scratch.r);
        sigmoid_slice(&mut scratch.r);
        quantize(&mut scratch.r);

        Vector::hadamard_into(&scratch.r, h_prev, &mut scratch.rh);
        self.w_n
            .spmv_prec_into(prec, x, &mut scratch.n)
            .expect("dims");
        self.u_n
            .spmv_prec_into(prec, &scratch.rh, &mut scratch.tmp)
            .expect("dims");
        Vector::axpy(1.0, &scratch.tmp, &mut scratch.n);
        Vector::axpy(1.0, &self.b_n, &mut scratch.n);
        tanh_slice(&mut scratch.n);
        quantize(&mut scratch.n);

        for i in 0..self.hidden {
            h_out[i] = (1.0 - scratch.z[i]) * scratch.n[i] + scratch.z[i] * h_prev[i];
        }
        quantize(h_out);
    }

    /// One step with the five `h_prev`-independent gate SpMVs (`W_z x`,
    /// `U_z h`, `W_r x`, `U_r h`, `W_n x`) dispatched as parallel pool
    /// tasks, and the reset-gated candidate recurrence `U_n (r ⊙ h)` as a
    /// row-parallel BSPC SpMV once `r` is known. Combination order per gate
    /// matches [`CompiledGruLayer::step_into`] exactly, so the output is
    /// bit-identical to the serial step for any thread count — and like the
    /// serial form, the steady state allocates nothing: the pool tasks
    /// write straight into disjoint `scratch` buffers.
    fn step_with_into(
        &self,
        exec: &rtm_exec::Executor,
        x: &[f32],
        h_prev: &[f32],
        scratch: &mut GruRuntimeScratch,
        h_out: &mut Vec<f32>,
    ) {
        let quantize = |v: &mut [f32]| {
            if self.precision == RuntimePrecision::F16 {
                for e in v.iter_mut() {
                    *e = quantize_f16(*e);
                }
            }
        };
        let prec = self.precision.storage();
        scratch.reserve(self.hidden);
        h_out.resize(self.hidden, 0.0);

        // Phase A: everything that only needs x and h_prev. The gate input
        // terms land in z/r/n, the recurrent terms in tmp2/tmp3. Each task
        // runs the serial precision entry — activation quantization for int8
        // happens per task, but it is a deterministic pure function of the
        // input vector, so the codes match the serial step's exactly.
        {
            let spmv = |m: &GateMatrix, v: &[f32], out: &mut [f32]| {
                m.spmv_prec_into(prec, v, out).expect("dims");
            };
            let wzx = &mut scratch.z;
            let uzh = &mut scratch.tmp2;
            let wrx = &mut scratch.r;
            let urh = &mut scratch.tmp3;
            let wnx = &mut scratch.n;
            exec.run(vec![
                Box::new(move || spmv(&self.w_z, x, wzx)),
                Box::new(move || spmv(&self.u_z, h_prev, uzh)),
                Box::new(move || spmv(&self.w_r, x, wrx)),
                Box::new(move || spmv(&self.u_r, h_prev, urh)),
                Box::new(move || spmv(&self.w_n, x, wnx)),
            ])
            .expect("gate task panicked");
        }

        Vector::axpy(1.0, &scratch.tmp2, &mut scratch.z);
        Vector::axpy(1.0, &self.b_z, &mut scratch.z);
        sigmoid_slice(&mut scratch.z);
        quantize(&mut scratch.z);

        Vector::axpy(1.0, &scratch.tmp3, &mut scratch.r);
        Vector::axpy(1.0, &self.b_r, &mut scratch.r);
        sigmoid_slice(&mut scratch.r);
        quantize(&mut scratch.r);

        // Phase B: the candidate recurrence, row-parallel across the pool.
        Vector::hadamard_into(&scratch.r, h_prev, &mut scratch.rh);
        self.u_n
            .exec_spmv_prec_into(exec, prec, &scratch.rh, &mut scratch.tmp)
            .expect("dims");
        Vector::axpy(1.0, &scratch.tmp, &mut scratch.n);
        Vector::axpy(1.0, &self.b_n, &mut scratch.n);
        tanh_slice(&mut scratch.n);
        quantize(&mut scratch.n);

        for i in 0..self.hidden {
            h_out[i] = (1.0 - scratch.z[i]) * scratch.n[i] + scratch.z[i] * h_prev[i];
        }
        quantize(h_out);
    }

    /// One GRU step for `b` independent streams through a single pass over
    /// the gate weights (weight-stationary batching). `xs`, `hs_prev` and
    /// `hs_out` are lane-major: element `i` of stream `j` at `i·b + j`.
    ///
    /// Each gate SpMM walks its BSPC index structure once and applies every
    /// row to all `b` input columns via the reorder-aware parallel engine,
    /// so index decode and weight traffic amortize across the batch.
    /// Lane `j` of the output is bit-identical to
    /// [`CompiledGruLayer::step_into`] on lane `j`'s column, for every
    /// thread count and simd policy: the SpMM kernels replay the serial
    /// accumulation order per lane, all axpys here use `α = 1` (where FMA
    /// and mul+add round identically), and the remaining ops are
    /// element-wise with one rounding each. Under int8 the lane contract
    /// holds exactly: the batched kernel quantizes each lane's activation
    /// column with its own scale, reproducing the serial step's codes.
    ///
    /// `precision` is normally the layer's compiled
    /// [`precision`](CompiledGruLayer::precision); passing another value
    /// runs the gate kernels in that mode instead (the f32 weights are
    /// always present, and the f16/int8 sidecars ride along).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `xs` is not `[input × b]` or
    /// `hs_prev` is not `[hidden × b]` lane-major (nothing is dispatched
    /// for the failing kernel), and [`ExecError::WorkerPanicked`] if a
    /// kernel task panics. On error the scratch buffers and `hs_out` hold
    /// unspecified — but initialized — data.
    #[allow(clippy::too_many_arguments)]
    pub fn step_batch_into(
        &self,
        exec: &rtm_exec::Executor,
        xs: &[f32],
        hs_prev: &[f32],
        b: usize,
        precision: RuntimePrecision,
        scratch: &mut GruRuntimeScratch,
        hs_out: &mut Vec<f32>,
    ) -> Result<(), ExecError> {
        let quantize = |v: &mut [f32]| {
            if precision == RuntimePrecision::F16 {
                for e in v.iter_mut() {
                    *e = quantize_f16(*e);
                }
            }
        };
        let prec = precision.storage();
        let hb = self.hidden * b;
        scratch.reserve(hb);
        hs_out.resize(hb, 0.0);

        self.w_z
            .exec_spmm_prec_into(exec, prec, xs, b, &mut scratch.z)?;
        self.u_z
            .exec_spmm_prec_into(exec, prec, hs_prev, b, &mut scratch.tmp)?;
        Vector::axpy(1.0, &scratch.tmp, &mut scratch.z);
        rtm_tensor::simd::broadcast_add(&self.b_z, b, &mut scratch.z);
        sigmoid_slice(&mut scratch.z);
        quantize(&mut scratch.z);

        self.w_r
            .exec_spmm_prec_into(exec, prec, xs, b, &mut scratch.r)?;
        self.u_r
            .exec_spmm_prec_into(exec, prec, hs_prev, b, &mut scratch.tmp)?;
        Vector::axpy(1.0, &scratch.tmp, &mut scratch.r);
        rtm_tensor::simd::broadcast_add(&self.b_r, b, &mut scratch.r);
        sigmoid_slice(&mut scratch.r);
        quantize(&mut scratch.r);

        Vector::hadamard_into(&scratch.r, hs_prev, &mut scratch.rh);
        self.w_n
            .exec_spmm_prec_into(exec, prec, xs, b, &mut scratch.n)?;
        self.u_n
            .exec_spmm_prec_into(exec, prec, &scratch.rh, b, &mut scratch.tmp)?;
        Vector::axpy(1.0, &scratch.tmp, &mut scratch.n);
        rtm_tensor::simd::broadcast_add(&self.b_n, b, &mut scratch.n);
        tanh_slice(&mut scratch.n);
        quantize(&mut scratch.n);

        for (((hi, &zi), &ni), &hp) in hs_out
            .iter_mut()
            .zip(&scratch.z)
            .zip(&scratch.n)
            .zip(hs_prev)
        {
            *hi = (1.0 - zi) * ni + zi * hp;
        }
        quantize(hs_out);
        Ok(())
    }
}

impl CompiledNetwork {
    /// One batched frame through all layers and the head: `xs` holds `b`
    /// input frames lane-major and is consumed as the inter-layer activation
    /// buffer; `logits` receives the `[classes × b]` lane-major head output.
    /// Lane `j` is bit-identical to one frame of
    /// [`CompiledNetwork::forward`] on stream `j`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `xs` or a `states` plane is not
    /// lane-major `[dim × b]` for this network, and
    /// [`ExecError::WorkerPanicked`] if a kernel task panics. On error the
    /// activation buffers hold unspecified — but initialized — data.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_frame_batch(
        &self,
        exec: &rtm_exec::Executor,
        xs: &mut Vec<f32>,
        b: usize,
        states: &mut [Vec<f32>],
        scratch: &mut GruRuntimeScratch,
        hs_next: &mut Vec<f32>,
        logits: &mut Vec<f32>,
    ) -> Result<(), ExecError> {
        self.maybe_quantize(xs);
        for (layer, hs) in self.layers.iter().zip(states.iter_mut()) {
            layer.step_batch_into(exec, xs, hs, b, layer.precision, scratch, hs_next)?;
            std::mem::swap(hs, hs_next);
            xs.clear();
            xs.extend_from_slice(hs);
        }
        logits.resize(self.head_b.len() * b, 0.0);
        rtm_tensor::gemm::gemv_batch_into(&self.head_w, xs, b, logits)?;
        rtm_tensor::simd::broadcast_add(&self.head_b, b, logits);
        Ok(())
    }
}

/// Removes lane `j` from a lane-major `[rows × b]` buffer in place,
/// shifting lanes above `j` down by one (the compaction a stream
/// retirement triggers). Pure data movement — surviving lanes keep their
/// exact bit patterns.
fn remove_lane(buf: &mut Vec<f32>, b: usize, j: usize) {
    debug_assert!(j < b && buf.len().is_multiple_of(b));
    let rows = buf.len() / b;
    let mut w = 0;
    for i in 0..rows {
        for l in 0..b {
            if l != j {
                buf[w] = buf[i * b + l];
                w += 1;
            }
        }
    }
    buf.truncate(w);
}

/// Appends a zero-initialized lane to a lane-major `[rows × b]` buffer in
/// place (admission of a fresh stream, whose hidden state starts at zero).
fn add_lane(buf: &mut Vec<f32>, b: usize, rows: usize) {
    debug_assert!(buf.len() == rows * b);
    buf.resize(rows * (b + 1), 0.0);
    for i in (0..rows).rev() {
        buf[i * (b + 1) + b] = 0.0;
        for l in (0..b).rev() {
            buf[i * (b + 1) + l] = buf[i * b + l];
        }
    }
}

/// A multi-stream inference session: up to `capacity` utterances advance
/// in lockstep through one weight-stationary batched pass per frame.
///
/// Scheduling policy: waiting streams park in arrival order; a stream is
/// admitted to a free lane whenever one exists, runs one frame per batched
/// step, and retires when its frames are exhausted. Retirement compacts
/// the lane-major state buffers (surviving lanes shift down, preserving
/// their bit patterns) so the batch never carries dead lanes, and the
/// freed lane is immediately re-admittable — streams of different lengths
/// therefore keep the batch full until the tail drains.
///
/// Lane contract: every stream's logits are bit-identical to a serial
/// [`CompiledNetwork::forward`] of that stream alone, for any capacity,
/// admission order, thread count and simd policy. The fault paths preserve
/// it: quarantining lane `j` is pure data movement on the other lanes, and
/// shedding removes a stream before it ever touches a lane.
///
/// Fault behaviour (DESIGN.md §10): with a scanning [`HealthPolicy`] the
/// session checks every layer's states and the logits after each batched
/// step; a faulty lane is recorded (`Check`) or retired (`Quarantine`)
/// while the other lanes continue untouched. With a bounded
/// [`AdmissionConfig`] the parked backlog is capped and the excess shed
/// under the configured [`ShedPolicy`]; every decision lands in
/// [`ServeStats`].
pub struct BatchedSession<'a> {
    net: std::sync::Arc<CompiledNetwork>,
    exec: &'a rtm_exec::Executor,
    capacity: usize,
    health: HealthPolicy,
    admission: AdmissionConfig,
    stats: ServeStats,
    /// Counter values already flushed to the trace registry (so repeated
    /// [`BatchedSession::trace_flush`] calls add each delta exactly once).
    trace_flushed: ServeStats,
    faults: Vec<StreamFault>,
    /// Configured utterance decoder; `None` serves logits only (the
    /// pre-decoder behaviour, zero decode overhead).
    decoder: Option<crate::config::DecoderChoice>,
    /// `token -> live decoder state` for lanes admitted while a decoder is
    /// configured. Token-keyed, so lane compaction never touches it.
    decoders: std::collections::BTreeMap<usize, Box<dyn rtm_speech::Decoder + Send>>,
    /// Final hypotheses collected by [`BatchedSession::run`] at stream
    /// completion, keyed by stream index.
    run_hyps: Vec<(usize, rtm_speech::Hypothesis)>,
    /// `lane -> caller token` (the stream index in [`BatchedSession::run`],
    /// a connection id under the incremental API).
    lanes: Vec<usize>,
    /// `lane -> frames served so far` (the next frame cursor).
    cursors: Vec<usize>,
    /// Per-layer lane-major hidden states `[hidden × lanes.len()]`.
    states: Vec<Vec<f32>>,
    /// Per-layer gathered sub-batch states for steps where only a subset
    /// of lanes has a frame ready.
    sub_states: Vec<Vec<f32>>,
    scratch: GruRuntimeScratch,
    xs: Vec<f32>,
    hs_next: Vec<f32>,
    logits: Vec<f32>,
}

/// What one incremental [`BatchedSession::step`] produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepOutput {
    /// `(token, logit row)` for every frame served this step, in the order
    /// the frames were passed. A quarantined token's faulty frame yields no
    /// row.
    pub logits: Vec<(usize, Vec<f32>)>,
    /// Tokens whose lanes the health policy retired this step (their
    /// state is gone; do not step them again).
    pub quarantined: Vec<usize>,
    /// Partial hypotheses the per-lane decoders emitted this step (empty
    /// unless [`BatchedSession::with_decoder`] configured one): a lane
    /// appears here only when its partial decode changed — new symbols or
    /// an endpoint transition.
    pub hypotheses: Vec<(usize, rtm_speech::Hypothesis)>,
}

impl<'a> BatchedSession<'a> {
    /// A session over `net` with at most `capacity` concurrent lanes.
    ///
    /// Clones the network into a private [`Arc`](std::sync::Arc); when the
    /// caller already holds the network under an `Arc` (the hot-swap path
    /// of `rtm serve`), use [`BatchedSession::shared`] to share it without
    /// copying weights.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(
        net: &CompiledNetwork,
        exec: &'a rtm_exec::Executor,
        capacity: usize,
    ) -> BatchedSession<'a> {
        BatchedSession::shared(std::sync::Arc::new(net.clone()), exec, capacity)
    }

    /// [`BatchedSession::new`] over an already-shared network: the session
    /// holds a reference-counted handle, so many sessions (and a reloader
    /// holding the next generation) can coexist without weight copies.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn shared(
        net: std::sync::Arc<CompiledNetwork>,
        exec: &'a rtm_exec::Executor,
        capacity: usize,
    ) -> BatchedSession<'a> {
        assert!(capacity > 0, "batch capacity must be at least 1");
        let layer_count = net.layers.len();
        BatchedSession {
            net,
            exec,
            capacity,
            health: HealthPolicy::Off,
            admission: AdmissionConfig::default(),
            stats: ServeStats::default(),
            trace_flushed: ServeStats::default(),
            faults: Vec::new(),
            decoder: None,
            decoders: std::collections::BTreeMap::new(),
            run_hyps: Vec::new(),
            lanes: Vec::with_capacity(capacity),
            cursors: Vec::with_capacity(capacity),
            states: (0..layer_count).map(|_| Vec::new()).collect(),
            sub_states: (0..layer_count).map(|_| Vec::new()).collect(),
            scratch: GruRuntimeScratch::new(),
            xs: Vec::new(),
            hs_next: Vec::new(),
            logits: Vec::new(),
        }
    }

    /// The lane capacity this session batches up to.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sets the numerical-health policy for subsequent runs.
    pub fn with_health(mut self, health: HealthPolicy) -> BatchedSession<'a> {
        self.health = health;
        self
    }

    /// Sets the admission-control bounds for subsequent runs.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> BatchedSession<'a> {
        self.admission = admission;
        self
    }

    /// The admission-control bounds in force.
    pub fn admission(&self) -> AdmissionConfig {
        self.admission
    }

    /// Attaches a per-lane utterance decoder: every lane admitted from now
    /// on gets its own decoder of this kind, fed each logits row the lane
    /// produces. Partial hypotheses surface in [`StepOutput::hypotheses`];
    /// final ones via [`BatchedSession::finish_decode`] (or
    /// [`BatchedSession::run_decoded`] offline). Decoding never perturbs
    /// the logits — the per-lane bit-identity contract is unchanged.
    pub fn with_decoder(mut self, decoder: crate::config::DecoderChoice) -> BatchedSession<'a> {
        self.decoder = Some(decoder);
        self
    }

    /// The configured decoder choice, if any.
    pub fn decoder(&self) -> Option<crate::config::DecoderChoice> {
        self.decoder
    }

    /// Serving counters of the most recent [`BatchedSession::run`].
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Numeric faults the health scan attributed during the most recent
    /// [`BatchedSession::run`] (empty under [`HealthPolicy::Off`]).
    pub fn faults(&self) -> &[StreamFault] {
        &self.faults
    }

    /// Lanes currently in flight.
    pub fn active_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Whether every lane is taken.
    pub fn is_full(&self) -> bool {
        self.lanes.len() >= self.capacity
    }

    /// The tokens currently holding lanes, in lane order.
    pub fn tokens(&self) -> &[usize] {
        &self.lanes
    }

    /// Frames served so far for `token`'s lane, `None` if it holds none.
    pub fn frames_served(&self, token: usize) -> Option<usize> {
        self.lane_of(token).map(|j| self.cursors[j])
    }

    fn lane_of(&self, token: usize) -> Option<usize> {
        self.lanes.iter().position(|&t| t == token)
    }

    /// Admits `token` into a free lane with zero hidden state. Returns
    /// `false` (and changes nothing) when the session is full. Counts into
    /// [`ServeStats::admitted`].
    ///
    /// # Panics
    ///
    /// Panics if `token` already holds a lane — tokens address lanes, so a
    /// duplicate would make [`BatchedSession::step`] ambiguous.
    pub fn admit(&mut self, token: usize) -> bool {
        if self.is_full() {
            return false;
        }
        assert!(
            self.lane_of(token).is_none(),
            "token {token} already holds a lane"
        );
        let b = self.lanes.len();
        for (state, layer) in self.states.iter_mut().zip(&self.net.layers) {
            add_lane(state, b, layer.hidden);
        }
        self.lanes.push(token);
        self.cursors.push(0);
        self.stats.admitted += 1;
        if let Some(choice) = self.decoder {
            self.decoders
                .insert(token, choice.build(self.net.head_b.len()));
        }
        true
    }

    /// Finalizes and removes `token`'s lane decoder, returning its final
    /// hypothesis. `None` when the token has no live decoder (no decoder
    /// configured, never admitted, quarantined, or already finalized).
    /// Call after [`BatchedSession::retire`] when the stream ends cleanly;
    /// for an aborted stream, call and discard to free the state.
    pub fn finish_decode(&mut self, token: usize) -> Option<rtm_speech::Hypothesis> {
        self.decoders.remove(&token).map(|mut d| d.finish())
    }

    /// Retires `token`'s lane, compacting the state planes (pure data
    /// movement — the other lanes keep their bit patterns). Returns whether
    /// the token held a lane. Completion is the caller's call: pair with
    /// [`BatchedSession::mark_completed`] when the stream finished cleanly.
    pub fn retire(&mut self, token: usize) -> bool {
        let Some(j) = self.lane_of(token) else {
            return false;
        };
        let nb = self.lanes.len();
        for state in &mut self.states {
            remove_lane(state, nb, j);
        }
        self.lanes.remove(j);
        self.cursors.remove(j);
        true
    }

    /// Retires every lane at once (shutdown), returning the evicted tokens
    /// in lane order.
    pub fn drain(&mut self) -> Vec<usize> {
        for s in &mut self.states {
            s.clear();
        }
        self.cursors.clear();
        self.decoders.clear();
        std::mem::take(&mut self.lanes)
    }

    /// Counts a cleanly finished stream into [`ServeStats::completed`].
    pub fn mark_completed(&mut self) {
        self.stats.completed += 1;
    }

    /// Counts a stream shed at admission into [`ServeStats::shed`].
    pub fn mark_shed(&mut self) {
        self.stats.shed += 1;
    }

    /// Counts a stream admitted past its deadline budget into
    /// [`ServeStats::deadline_missed`].
    pub fn mark_deadline_missed(&mut self) {
        self.stats.deadline_missed += 1;
    }

    /// Advances the given lanes one frame each through a single batched
    /// weight pass. `frames` pairs each token with its next input frame —
    /// pass only the lanes that have one ready (a continuous-batching
    /// scheduler calls this with whatever arrived since the last tick;
    /// lanes left out simply keep their state). Admission order, subset
    /// choice and capacity never change a served lane's numbers: each
    /// lane's logits stay bit-identical to a serial
    /// [`CompiledNetwork::forward`] of that stream alone, because the
    /// batched kernels honour the per-lane contract at any width and the
    /// gather/scatter between the resident planes and the stepped sub-batch
    /// is pure data movement.
    ///
    /// Under a scanning [`HealthPolicy`] the stepped lanes' states and
    /// logits are checked; `Quarantine` retires a faulty lane on the spot
    /// (reported in [`StepOutput::quarantined`], counted in
    /// [`ServeStats::quarantined`], recorded in [`BatchedSession::faults`]).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when a frame's width disagrees with the
    /// model and [`ExecError::WorkerPanicked`] if a kernel task panics; the
    /// lanes' states are unspecified afterwards.
    ///
    /// # Panics
    ///
    /// Panics if a token holds no lane or appears twice in `frames`.
    pub fn step(&mut self, frames: &[(usize, &[f32])]) -> Result<StepOutput, ExecError> {
        let mut out = StepOutput::default();
        let r = frames.len();
        if r == 0 {
            return Ok(out);
        }
        let b = self.lanes.len();
        let classes = self.net.head_b.len();
        let lane_of: Vec<usize> = frames
            .iter()
            .map(|&(token, _)| self.lane_of(token).expect("token holds no lane"))
            .collect();
        // The all-lanes-in-order case (every lockstep caller, and any tick
        // where all streams kept up) steps the resident planes directly;
        // a proper subset steps through gathered sub-batch planes.
        let aligned = r == b && lane_of.iter().enumerate().all(|(jj, &j)| jj == j);
        if !aligned {
            let mut seen = vec![false; b];
            for &j in &lane_of {
                assert!(!seen[j], "token {} stepped twice", self.lanes[j]);
                seen[j] = true;
            }
            for (plane, sub) in self.states.iter().zip(self.sub_states.iter_mut()) {
                let rows = plane.len() / b;
                sub.clear();
                sub.resize(rows * r, 0.0);
                for i in 0..rows {
                    for (jj, &j) in lane_of.iter().enumerate() {
                        sub[i * r + jj] = plane[i * b + j];
                    }
                }
            }
        }
        // Gather this step's frames lane-major.
        let input_dim = frames[0].1.len();
        self.xs.clear();
        self.xs.resize(input_dim * r, 0.0);
        for (jj, &(_, frame)) in frames.iter().enumerate() {
            if frame.len() != input_dim {
                return Err(ExecError::Shape(rtm_tensor::ShapeError {
                    op: "batched step frame",
                    lhs: (input_dim, 1),
                    rhs: (frame.len(), 1),
                }));
            }
            for (i, &v) in frame.iter().enumerate() {
                self.xs[i * r + jj] = v;
            }
        }
        // One weight pass carries the ready lanes one frame forward.
        let trace = rtm_trace::enabled();
        let t0 = std::time::Instant::now();
        let net = std::sync::Arc::clone(&self.net);
        let stepped = if aligned {
            &mut self.states
        } else {
            &mut self.sub_states
        };
        net.forward_frame_batch(
            self.exec,
            &mut self.xs,
            r,
            stepped,
            &mut self.scratch,
            &mut self.hs_next,
            &mut self.logits,
        )?;
        let step_elapsed = t0.elapsed();
        self.stats.compute_ns += step_elapsed.as_nanos() as u64;
        if trace {
            rtm_trace::global().hist_record(
                rtm_trace::key::SERVE_FRAME_US,
                step_elapsed.as_secs_f64() * 1e6,
            );
        }
        self.stats.frames += 1;
        if !aligned {
            // Scatter the advanced states back into the resident planes.
            for (plane, sub) in self.states.iter_mut().zip(&self.sub_states) {
                let rows = plane.len() / b;
                for i in 0..rows {
                    for (jj, &j) in lane_of.iter().enumerate() {
                        plane[i * b + j] = sub[i * r + jj];
                    }
                }
            }
        }
        // Health scan over the stepped lanes' planes and logits. Lanes are
        // arithmetically independent, so a fault in one implies nothing
        // about the others — only faulty lanes are condemned.
        let mut condemned = vec![false; r];
        if self.health.scans() {
            let stepped: &[Vec<f32>] = if aligned {
                &self.states
            } else {
                &self.sub_states
            };
            for (jj, lane_condemned) in condemned.iter_mut().enumerate() {
                let fault = stepped
                    .iter()
                    .find_map(|plane| crate::health::scan_lane(plane, r, jj))
                    .or_else(|| crate::health::scan_lane(&self.logits, r, jj));
                if let Some(fault) = fault {
                    self.faults.push(StreamFault {
                        stream: frames[jj].0,
                        frame: self.cursors[lane_of[jj]],
                        fault,
                    });
                    if self.health == HealthPolicy::Quarantine {
                        *lane_condemned = true;
                        self.stats.quarantined += 1;
                    }
                }
            }
        }
        // Scatter logits per token and advance cursors; a condemned lane's
        // faulty frame produces no logits.
        for (jj, &(token, _)) in frames.iter().enumerate() {
            if condemned[jj] {
                out.quarantined.push(token);
                continue;
            }
            let row: Vec<f32> = (0..classes).map(|k| self.logits[k * r + jj]).collect();
            if let Some(dec) = self.decoders.get_mut(&token) {
                if let Some(hyp) = dec.push_frame(&row) {
                    if hyp.endpoint {
                        self.stats.endpoints += 1;
                    }
                    out.hypotheses.push((token, hyp));
                }
            }
            out.logits.push((token, row));
            self.cursors[lane_of[jj]] += 1;
            self.stats.stream_frames += 1;
        }
        for &token in &out.quarantined {
            self.retire(token);
            // A quarantined stream is dead; its partial decode goes too.
            self.decoders.remove(&token);
        }
        Ok(out)
    }

    /// Adds the counter deltas accumulated since the last flush to the
    /// process trace registry (no-op while tracing is off). Counters
    /// accumulate across runs in the registry even though
    /// [`BatchedSession::stats`] resets per run, so each delta is added
    /// exactly once. [`BatchedSession::run`] flushes automatically; callers
    /// of the incremental API flush at their own cadence.
    pub fn trace_flush(&mut self) {
        if !rtm_trace::enabled() {
            return;
        }
        let (s, f) = (self.stats, self.trace_flushed);
        rtm_trace::global().counter_add_many(&[
            (
                rtm_trace::key::SERVE_ADMITTED,
                (s.admitted - f.admitted) as u64,
            ),
            (rtm_trace::key::SERVE_SHED, (s.shed - f.shed) as u64),
            (
                rtm_trace::key::SERVE_QUARANTINED,
                (s.quarantined - f.quarantined) as u64,
            ),
            (
                rtm_trace::key::SERVE_DEADLINE_MISSED,
                (s.deadline_missed - f.deadline_missed) as u64,
            ),
        ]);
        self.trace_flushed = s;
    }

    /// Runs every stream to completion, batching up to `capacity` of them
    /// per step, and returns per-stream per-frame logits in input order.
    /// Empty streams yield empty logit lists, as do streams shed by
    /// admission control; a quarantined stream's logits stop at its last
    /// healthy frame. Counters land in [`BatchedSession::stats`], observed
    /// faults in [`BatchedSession::faults`].
    ///
    /// This is the offline lockstep replay of the incremental API: every
    /// stream arrives at once, every admitted lane has a frame ready at
    /// every step.
    pub fn run<S: AsRef<[Vec<f32>]>>(&mut self, streams: &[S]) -> Vec<Vec<Vec<f32>>> {
        let mut out: Vec<Vec<Vec<f32>>> = streams
            .iter()
            .map(|s| Vec::with_capacity(s.as_ref().len()))
            .collect();
        self.drain();
        self.stats = ServeStats::default();
        self.trace_flushed = ServeStats::default();
        self.faults.clear();
        self.run_hyps.clear();
        // Every (non-empty) stream arrives at once in this offline replay;
        // the parked backlog holds them in input order until a lane frees.
        let mut parked: VecDeque<usize> = (0..streams.len())
            .filter(|&i| !streams[i].as_ref().is_empty())
            .collect();
        let mut step = 0usize;
        // Resolve the trace switch once — this is the serving hot loop.
        let trace = rtm_trace::enabled();
        loop {
            // Admit parked streams into free lanes (oldest first).
            while !self.is_full() {
                let Some(next) = parked.pop_front() else {
                    break;
                };
                self.admit(next);
                if self.admission.deadline_steps.is_some_and(|d| step > d) {
                    self.mark_deadline_missed();
                }
            }
            // Overload shedding: cap the backlog that survived admission.
            while parked.len() > self.admission.queue_depth {
                let victim = match self.admission.shed {
                    ShedPolicy::RejectNew => parked.pop_back(),
                    ShedPolicy::DropOldest => parked.pop_front(),
                };
                debug_assert!(victim.is_some());
                self.mark_shed();
            }
            if trace {
                rtm_trace::global()
                    .gauge_set(rtm_trace::key::SERVE_QUEUE_DEPTH, parked.len() as f64);
            }
            if self.lanes.is_empty() {
                break;
            }
            // Every lane has a frame ready in lockstep replay.
            let ready: Vec<(usize, &[f32])> = self
                .lanes
                .iter()
                .zip(&self.cursors)
                .map(|(&s, &c)| (s, streams[s].as_ref()[c].as_slice()))
                .collect();
            let served = match self.step(&ready) {
                Ok(served) => served,
                Err(ExecError::Shape(e)) => panic!("frame dim mismatch across streams: {e}"),
                Err(e) => panic!("batched step failed: {e:?}"),
            };
            for (s, row) in served.logits {
                out[s].push(row);
            }
            // Retire exhausted streams (quarantined lanes already left).
            for j in (0..self.lanes.len()).rev() {
                if self.cursors[j] == streams[self.lanes[j]].as_ref().len() {
                    let token = self.lanes[j];
                    self.retire(token);
                    if let Some(hyp) = self.finish_decode(token) {
                        self.run_hyps.push((token, hyp));
                    }
                    self.mark_completed();
                }
            }
            step += 1;
        }
        self.trace_flush();
        out
    }

    /// [`BatchedSession::run`] followed by per-frame argmax per stream.
    pub fn predict<S: AsRef<[Vec<f32>]>>(&mut self, streams: &[S]) -> Vec<Vec<usize>> {
        self.run(streams)
            .iter()
            .map(|logits| logits.iter().map(|l| Vector::argmax(l)).collect())
            .collect()
    }

    /// [`BatchedSession::run`], also collecting each stream's final
    /// hypothesis from its lane decoder. A stream that was empty, shed by
    /// admission control, or quarantined yields `None`. The hypotheses are
    /// streamed frame-by-frame through the lane decoders, so they are
    /// bit-identical to an offline [`rtm_speech::decode_offline`] over the
    /// returned logits.
    ///
    /// # Panics
    ///
    /// Panics if no decoder is configured
    /// ([`BatchedSession::with_decoder`]).
    #[allow(clippy::type_complexity)]
    pub fn run_decoded<S: AsRef<[Vec<f32>]>>(
        &mut self,
        streams: &[S],
    ) -> (Vec<Vec<Vec<f32>>>, Vec<Option<rtm_speech::Hypothesis>>) {
        assert!(
            self.decoder.is_some(),
            "no decoder configured; call with_decoder first"
        );
        let logits = self.run(streams);
        let mut hyps: Vec<Option<rtm_speech::Hypothesis>> =
            (0..streams.len()).map(|_| None).collect();
        for (s, h) in self.run_hyps.drain(..) {
            hyps[s] = Some(h);
        }
        (logits, hyps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_rnn::model::NetworkConfig;

    fn net() -> GruNetwork {
        GruNetwork::new(
            &NetworkConfig {
                input_dim: 6,
                hidden_dims: vec![12, 12],
                num_classes: 4,
            },
            17,
        )
    }

    fn frames() -> Vec<Vec<f32>> {
        (0..9)
            .map(|t| {
                (0..6)
                    .map(|i| ((t * 6 + i) as f32 * 0.3).sin() * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn f32_compiled_matches_dense_exactly() {
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).unwrap();
        let dense = net.forward(&frames());
        let sparse = compiled.forward(&frames());
        for (d, s) in dense.iter().zip(&sparse) {
            for (a, b) in d.iter().zip(s) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
        assert_eq!(compiled.precision(), RuntimePrecision::F32);
    }

    #[test]
    fn f16_compiled_close_to_dense() {
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16).unwrap();
        let dense = net.forward(&frames());
        let half = compiled.forward(&frames());
        // f16 rounding perturbs but must not change the ballpark.
        for (d, s) in dense.iter().zip(&half) {
            for (a, b) in d.iter().zip(s) {
                assert!((a - b).abs() < 0.05, "{a} vs {b}");
            }
        }
        // Predictions agree on a comfortable majority of frames.
        let agree = net
            .predict(&frames())
            .iter()
            .zip(compiled.predict(&frames()))
            .filter(|(a, b)| **a == *b)
            .count();
        assert!(agree >= 7, "agreement {agree}/9");
    }

    #[test]
    fn pruned_network_roundtrips() {
        // Zero half the columns (BSP-like) and verify the compiled network
        // still matches the dense forward of the pruned weights.
        let mut net = net();
        for (_, m) in net.prunable_mut() {
            let cols = m.cols();
            for r in 0..m.rows() {
                for c in 0..cols {
                    if c % 2 == 1 {
                        m[(r, c)] = 0.0;
                    }
                }
            }
        }
        let compiled = CompiledNetwork::compile(&net, 4, 2, RuntimePrecision::F32).unwrap();
        let dense = net.forward(&frames());
        let sparse = compiled.forward(&frames());
        for (d, s) in dense.iter().zip(&sparse) {
            for (a, b) in d.iter().zip(s) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn fused_layer_matches_unfused_step() {
        let net = net();
        let cell = &net.layers[0];
        let fused = FusedGruLayer::compile(cell, 4, 2).expect("fits");
        let x: Vec<f32> = (0..6).map(|i| (i as f32 * 0.5).sin()).collect();
        let mut h = vec![0.0f32; cell.hidden_dim()];
        for _ in 0..5 {
            let unfused = cell.step(&x, &h);
            let fused_h = fused.step(&x, &h);
            for (a, b) in unfused.h.iter().zip(&fused_h) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
            h = fused_h;
        }
    }

    #[test]
    fn int8_weight_only_quantization_close_to_f32() {
        let net = net();
        let q = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::Int8).unwrap();
        assert_eq!(q.precision(), RuntimePrecision::Int8);
        let dense = net.forward(&frames());
        let quantized = q.forward(&frames());
        for (d, s) in dense.iter().zip(&quantized) {
            for (a, b) in d.iter().zip(s) {
                assert!((a - b).abs() < 0.05, "{a} vs {b}");
            }
        }
        // Int8 storage accounting is the smallest of the three modes.
        let f32b = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32)
            .unwrap()
            .storage_bytes();
        let f16b = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16)
            .unwrap()
            .storage_bytes();
        assert!(q.storage_bytes() < f16b && f16b < f32b);
    }

    #[test]
    fn storage_shrinks_with_pruning_and_precision() {
        let net_dense = net();
        let mut net_pruned = net_dense.clone();
        for (_, m) in net_pruned.prunable_mut() {
            let cols = m.cols();
            for r in 0..m.rows() {
                for c in 0..cols {
                    if c % 4 != 0 {
                        m[(r, c)] = 0.0;
                    }
                }
            }
        }
        let d32 = CompiledNetwork::compile(&net_dense, 4, 4, RuntimePrecision::F32)
            .unwrap()
            .storage_bytes();
        let p32 = CompiledNetwork::compile(&net_pruned, 4, 4, RuntimePrecision::F32)
            .unwrap()
            .storage_bytes();
        let p16 = CompiledNetwork::compile(&net_pruned, 4, 4, RuntimePrecision::F16)
            .unwrap()
            .storage_bytes();
        assert!(p32 < d32 / 2, "pruning shrinks storage: {p32} vs {d32}");
        assert!(p16 < p32, "f16 shrinks storage further: {p16} vs {p32}");
    }

    const ALL_FORMATS: [RuntimeFormat; 4] = [
        RuntimeFormat::Bspc,
        RuntimeFormat::Csr,
        RuntimeFormat::Bbs,
        RuntimeFormat::Csb,
    ];

    #[test]
    fn every_format_compiles_and_matches_dense() {
        let net = net();
        let dense = net.forward(&frames());
        for format in ALL_FORMATS {
            let compiled = CompiledNetwork::compile_with_formats(
                &net,
                4,
                4,
                &[],
                RuntimePrecision::F32,
                &[],
                format,
            )
            .unwrap();
            assert_eq!(compiled.format(), format);
            assert_eq!(compiled.layer_formats(), vec![format; 2]);
            let sparse = compiled.forward(&frames());
            for (d, s) in dense.iter().zip(&sparse) {
                for (a, b) in d.iter().zip(s) {
                    assert!((a - b).abs() < 1e-5, "{format:?}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn mixed_format_layers_compile_and_run() {
        let net = net();
        let compiled = CompiledNetwork::compile_with_formats(
            &net,
            4,
            4,
            &[],
            RuntimePrecision::F32,
            &[RuntimeFormat::Bbs, RuntimeFormat::Csb],
            RuntimeFormat::Bspc,
        )
        .unwrap();
        assert_eq!(
            compiled.layer_formats(),
            vec![RuntimeFormat::Bbs, RuntimeFormat::Csb]
        );
        let dense = net.forward(&frames());
        for (d, s) in dense.iter().zip(&compiled.forward(&frames())) {
            for (a, b) in d.iter().zip(s) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn forward_with_matches_forward_every_format_and_precision() {
        let net = net();
        for format in ALL_FORMATS {
            for precision in [
                RuntimePrecision::F32,
                RuntimePrecision::F16,
                RuntimePrecision::Int8,
            ] {
                let compiled =
                    CompiledNetwork::compile_with_formats(&net, 4, 4, &[], precision, &[], format)
                        .unwrap();
                let serial = compiled.forward(&frames());
                for threads in [1usize, 3] {
                    let exec = rtm_exec::Executor::new(threads);
                    assert_eq!(
                        compiled.forward_with(&exec, &frames()),
                        serial,
                        "{format:?} {precision:?} {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_session_lane_contract_holds_every_format() {
        let net = net();
        let streams: Vec<Vec<Vec<f32>>> = [5usize, 9, 3]
            .iter()
            .enumerate()
            .map(|(s, &len)| {
                (0..len)
                    .map(|t| {
                        (0..6)
                            .map(|i| ((s * 89 + t * 6 + i) as f32 * 0.31).sin() * 0.5)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let exec = rtm_exec::Executor::new(2);
        for format in ALL_FORMATS {
            let compiled = CompiledNetwork::compile_with_formats(
                &net,
                4,
                4,
                &[],
                RuntimePrecision::F16,
                &[],
                format,
            )
            .unwrap();
            let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| compiled.forward(s)).collect();
            let mut session = BatchedSession::new(&compiled, &exec, 2);
            assert_eq!(session.run(&streams), serial, "{format:?} lane contract");
        }
    }

    #[test]
    fn per_lane_streaming_decode_matches_offline() {
        use crate::config::DecoderChoice;
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16).unwrap();
        let exec = rtm_exec::Executor::new(2);
        let streams: Vec<Vec<Vec<f32>>> = [7usize, 12, 4, 9]
            .iter()
            .enumerate()
            .map(|(s, &len)| {
                (0..len)
                    .map(|t| {
                        (0..6)
                            .map(|i| ((s * 71 + t * 6 + i) as f32 * 0.27).sin() * 0.6)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let total_frames: usize = streams.iter().map(Vec::len).sum();
        for choice in [
            DecoderChoice::Argmax,
            DecoderChoice::CtcGreedy,
            DecoderChoice::CtcBeam(4),
        ] {
            let mut session = BatchedSession::new(&compiled, &exec, 3).with_decoder(choice);
            assert_eq!(session.decoder(), Some(choice));
            let (logits, hyps) = session.run_decoded(&streams);
            let stats = session.stats();
            assert_eq!(stats.stream_frames, total_frames);
            assert!(stats.compute_ns > 0, "step wall time accumulates");
            assert!(stats.batch_rtf() > 0.0);
            for (s, hyp) in hyps.iter().enumerate() {
                let hyp = hyp.as_ref().expect("every stream completed");
                // Per-lane streaming decode ≡ serial offline decode of the
                // same stream — the lane logits are bit-identical to a
                // serial forward, and the decoder is deterministic.
                let offline = compiled.decode_with(&exec, &streams[s], choice);
                assert_eq!(hyp, &offline, "{} stream {s}", choice.label());
                assert!(hyp.is_final);
                // And re-decoding the batched logits offline agrees too.
                let mut d = choice.build(compiled.head_b.len());
                assert_eq!(rtm_speech::decode_offline(d.as_mut(), &logits[s]), offline);
            }
        }
    }

    #[test]
    fn decoder_state_is_cleaned_up() {
        use crate::config::DecoderChoice;
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).unwrap();
        let exec = rtm_exec::Executor::new(1);
        let mut session =
            BatchedSession::new(&compiled, &exec, 2).with_decoder(DecoderChoice::CtcGreedy);
        let fs = frames();
        session.admit(7);
        let out = session.step(&[(7, fs[0].as_slice())]).unwrap();
        assert_eq!(out.logits.len(), 1);
        session.retire(7);
        let hyp = session.finish_decode(7).expect("live decoder");
        assert!(hyp.is_final);
        assert_eq!(session.finish_decode(7), None, "decoder consumed");
        // Without a configured decoder there is nothing to finish.
        let mut plain = BatchedSession::new(&compiled, &exec, 2);
        plain.admit(1);
        assert_eq!(plain.finish_decode(1), None);
    }

    #[test]
    fn format_zoo_storage_accounting_differs_per_format() {
        // Same pruned weights, four formats: each format's byte accounting
        // reflects its own index structure, and every one prices all six
        // gates of both layers.
        let mut net = net();
        for (_, m) in net.prunable_mut() {
            let cols = m.cols();
            for r in 0..m.rows() {
                for c in 0..cols {
                    if (r + c) % 3 != 0 {
                        m[(r, c)] = 0.0;
                    }
                }
            }
        }
        let bytes: Vec<usize> = ALL_FORMATS
            .iter()
            .map(|&f| {
                CompiledNetwork::compile_with_formats(
                    &net,
                    4,
                    4,
                    &[],
                    RuntimePrecision::F32,
                    &[],
                    f,
                )
                .unwrap()
                .storage_bytes()
            })
            .collect();
        for &b in &bytes {
            assert!(b > 0);
        }
        assert!(
            bytes.windows(2).any(|w| w[0] != w[1]),
            "formats must not all price identically: {bytes:?}"
        );
    }

    #[test]
    fn runtime_format_tags_roundtrip() {
        for format in ALL_FORMATS {
            assert_eq!(RuntimeFormat::parse(format.tag()), Some(format));
            assert_eq!(RuntimeFormat::from_storage(format.storage()), Some(format));
        }
        assert_eq!(RuntimeFormat::parse("dense"), None);
        assert_eq!(
            RuntimeFormat::from_storage(rtm_compiler::StorageFormat::Dense),
            None
        );
    }

    #[test]
    fn forward_with_matches_forward_bit_exact() {
        let net = net();
        for precision in [
            RuntimePrecision::F32,
            RuntimePrecision::F16,
            RuntimePrecision::Int8,
        ] {
            let compiled = CompiledNetwork::compile(&net, 4, 4, precision).unwrap();
            let serial = compiled.forward(&frames());
            for threads in [1usize, 2, 4] {
                let exec = rtm_exec::Executor::new(threads);
                assert_eq!(
                    compiled.forward_with(&exec, &frames()),
                    serial,
                    "{precision:?}, {threads} threads"
                );
                assert_eq!(
                    compiled.predict_with(&exec, &frames()),
                    compiled.predict(&frames())
                );
            }
        }
    }

    #[test]
    fn batched_session_streams_match_serial_forward_bit_exact() {
        // Streams of different lengths, capacity smaller than the stream
        // count: every stream's logits must equal its serial forward bit
        // for bit, across precisions and thread counts, despite admissions
        // and lane compactions happening mid-run.
        let net = net();
        let lens = [9usize, 3, 7, 1, 5, 4];
        let streams: Vec<Vec<Vec<f32>>> = lens
            .iter()
            .enumerate()
            .map(|(s, &len)| {
                (0..len)
                    .map(|t| {
                        (0..6)
                            .map(|i| ((s * 97 + t * 6 + i) as f32 * 0.23).sin() * 0.5)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        for precision in [RuntimePrecision::F32, RuntimePrecision::F16] {
            let compiled = CompiledNetwork::compile(&net, 4, 4, precision).unwrap();
            let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| compiled.forward(s)).collect();
            for threads in [1usize, 2, 4] {
                let exec = rtm_exec::Executor::new(threads);
                for capacity in [1usize, 2, 4, 8] {
                    let mut session = BatchedSession::new(&compiled, &exec, capacity);
                    assert_eq!(session.capacity(), capacity);
                    let batched = session.run(&streams);
                    assert_eq!(
                        batched, serial,
                        "{precision:?} capacity={capacity} threads={threads}"
                    );
                    // Session reuse: a second run must be identical too.
                    assert_eq!(session.run(&streams), serial);
                }
            }
        }
    }

    #[test]
    fn batched_session_handles_empty_streams() {
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).unwrap();
        let exec = rtm_exec::Executor::new(2);
        let mut session = BatchedSession::new(&compiled, &exec, 3);
        let none: Vec<Vec<Vec<f32>>> = Vec::new();
        assert!(session.run(&none).is_empty());
        let streams = vec![vec![], frames(), vec![]];
        let out = session.run(&streams);
        assert!(out[0].is_empty() && out[2].is_empty());
        assert_eq!(out[1], compiled.forward(&frames()));
        // predict mirrors run.
        assert_eq!(session.predict(&streams)[1], compiled.predict(&frames()));
    }

    #[test]
    fn shedding_bounds_backlog_and_counts() {
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).unwrap();
        let exec = rtm_exec::Executor::new(1);
        let streams: Vec<Vec<Vec<f32>>> = (0..6).map(|_| frames()).collect();
        let serial = compiled.forward(&frames());

        // Capacity 2, backlog capped at 1: the first two streams take the
        // lanes, one parks, the rest shed. RejectNew sacrifices the newest.
        let mut session = BatchedSession::new(&compiled, &exec, 2).with_admission(
            crate::serve::AdmissionConfig::default()
                .with_queue_depth(1)
                .with_shed(crate::serve::ShedPolicy::RejectNew),
        );
        let out = session.run(&streams);
        let stats = session.stats();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.shed, 3);
        assert_eq!(stats.completed, 3);
        for (i, o) in out.iter().enumerate() {
            if i < 3 {
                assert_eq!(o, &serial, "served stream {i} bit-identical");
            } else {
                assert!(o.is_empty(), "shed stream {i} yields nothing");
            }
        }

        // DropOldest sacrifices the head of the queue instead: streams
        // 2, 3, 4 are dropped and the freshest arrival (5) is served.
        let mut session = BatchedSession::new(&compiled, &exec, 2).with_admission(
            crate::serve::AdmissionConfig::default()
                .with_queue_depth(1)
                .with_shed(crate::serve::ShedPolicy::DropOldest),
        );
        let out = session.run(&streams);
        assert_eq!(session.stats().shed, 3);
        for (i, o) in out.iter().enumerate() {
            if [0usize, 1, 5].contains(&i) {
                assert_eq!(o, &serial, "served stream {i}");
            } else {
                assert!(o.is_empty(), "dropped stream {i}");
            }
        }
    }

    #[test]
    fn deadline_misses_are_counted_not_hidden() {
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).unwrap();
        let exec = rtm_exec::Executor::new(1);
        let mk = |len: usize| -> Vec<Vec<f32>> { frames().into_iter().take(len).collect() };
        let streams = [mk(5), mk(3), mk(2)];
        // Capacity 1: stream 1 waits 5 steps, stream 2 waits 8 — both past
        // a 4-step budget. Everything is still served in full.
        let mut session = BatchedSession::new(&compiled, &exec, 1)
            .with_admission(crate::serve::AdmissionConfig::default().with_deadline_steps(4));
        let out = session.run(&streams);
        let stats = session.stats();
        assert_eq!(stats.deadline_missed, 2);
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.frames, 10);
        for (o, s) in out.iter().zip(&streams) {
            assert_eq!(o.len(), s.len());
        }
    }

    #[test]
    fn check_policy_records_faults_but_keeps_serving() {
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).unwrap();
        let exec = rtm_exec::Executor::new(2);
        let mut streams: Vec<Vec<Vec<f32>>> = (0..3).map(|_| frames()).collect();
        streams[1][4][2] = f32::NAN;
        let serial = compiled.forward(&frames());
        let mut session = BatchedSession::new(&compiled, &exec, 3)
            .with_health(crate::health::HealthPolicy::Check);
        let out = session.run(&streams);
        let stats = session.stats();
        assert_eq!(stats.quarantined, 0, "check never retires");
        assert!(!session.faults().is_empty());
        assert_eq!(session.faults()[0].stream, 1);
        assert_eq!(session.faults()[0].frame, 4);
        // Every frame of every stream was served; the healthy streams stay
        // bit-identical to serial.
        assert_eq!(out[0], serial);
        assert_eq!(out[2], serial);
        assert_eq!(out[1].len(), streams[1].len());
    }

    #[test]
    fn quarantine_retires_only_the_faulty_lane() {
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).unwrap();
        let exec = rtm_exec::Executor::new(2);
        let mut streams: Vec<Vec<Vec<f32>>> = (0..3).map(|_| frames()).collect();
        streams[1][2][0] = f32::NAN;
        let serial = compiled.forward(&frames());
        let mut session = BatchedSession::new(&compiled, &exec, 3)
            .with_health(crate::health::HealthPolicy::Quarantine);
        let out = session.run(&streams);
        let stats = session.stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.completed, 2, "the quarantined stream never completes");
        // The poisoned stream's logits stop at its last healthy frame.
        assert_eq!(out[1].len(), 2);
        assert_eq!(out[1], serial[..2].to_vec());
        // The surviving lanes are bit-identical to serial end to end.
        assert_eq!(out[0], serial);
        assert_eq!(out[2], serial);
        assert_eq!(session.faults().len(), 1);
        assert_eq!(session.faults()[0].stream, 1);
        assert_eq!(session.faults()[0].frame, 2);
    }

    #[test]
    fn incremental_subset_stepping_matches_serial_bit_exact() {
        // Continuous batching's core contract: lanes stepped in ragged
        // subsets — some streams lagging, some bursting — produce logits
        // bit-identical to each stream's serial forward.
        let net = net();
        let streams: Vec<Vec<Vec<f32>>> = (0..4)
            .map(|s| {
                (0..8)
                    .map(|t| {
                        (0..6)
                            .map(|i| ((s * 71 + t * 6 + i) as f32 * 0.27).sin() * 0.5)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        for precision in [RuntimePrecision::F32, RuntimePrecision::F16] {
            let compiled = CompiledNetwork::compile(&net, 4, 4, precision).unwrap();
            let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| compiled.forward(s)).collect();
            for threads in [1usize, 3] {
                let exec = rtm_exec::Executor::new(threads);
                let mut session = BatchedSession::new(&compiled, &exec, 4);
                let mut cursors = [0usize; 4];
                let mut out: Vec<Vec<Vec<f32>>> = vec![Vec::new(); 4];
                for s in 0..4 {
                    assert!(session.admit(s));
                }
                assert!(session.is_full());
                // A fixed ragged schedule: each tick advances a different
                // subset, including out-of-lane-order subsets.
                let schedule: [&[usize]; 12] = [
                    &[0, 1, 2, 3],
                    &[3, 1],
                    &[0],
                    &[2, 0, 1],
                    &[3, 2],
                    &[1, 0, 3],
                    &[2],
                    &[0, 1, 2, 3],
                    &[3, 2, 1, 0],
                    &[0, 1],
                    &[2, 3],
                    &[0, 1, 2, 3],
                ];
                for subset in schedule {
                    let ready: Vec<(usize, &[f32])> = subset
                        .iter()
                        .filter(|&&s| cursors[s] < streams[s].len())
                        .map(|&s| (s, streams[s][cursors[s]].as_slice()))
                        .collect();
                    let served = session.step(&ready).unwrap();
                    for (s, row) in served.logits {
                        out[s].push(row);
                        cursors[s] += 1;
                    }
                }
                for s in 0..4 {
                    assert_eq!(session.frames_served(s), Some(cursors[s]));
                    assert_eq!(
                        out[s],
                        serial[s][..cursors[s]].to_vec(),
                        "{precision:?} threads={threads} stream {s} ragged schedule"
                    );
                }
                assert_eq!(session.drain(), vec![0, 1, 2, 3]);
                assert_eq!(session.active_lanes(), 0);
            }
        }
    }

    #[test]
    fn incremental_admit_retire_midflight_matches_serial() {
        // A lane retiring mid-flight and a fresh stream taking its place —
        // the continuous-batching lifecycle — never disturbs the others.
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16).unwrap();
        let exec = rtm_exec::Executor::new(2);
        let mk = |seed: usize, len: usize| -> Vec<Vec<f32>> {
            (0..len)
                .map(|t| {
                    (0..6)
                        .map(|i| ((seed * 53 + t * 6 + i) as f32 * 0.33).sin() * 0.5)
                        .collect()
                })
                .collect()
        };
        let streams = [mk(0, 6), mk(1, 3), mk(2, 5)];
        let serial: Vec<Vec<Vec<f32>>> = streams.iter().map(|s| compiled.forward(s)).collect();

        let mut session = BatchedSession::new(&compiled, &exec, 2);
        let mut out: Vec<Vec<Vec<f32>>> = vec![Vec::new(); 3];
        let mut cursors = [0usize; 3];
        assert!(session.admit(0) && session.admit(1));
        assert!(!session.admit(2), "session is full");
        loop {
            let ready: Vec<(usize, &[f32])> = session
                .tokens()
                .to_vec()
                .into_iter()
                .filter(|&s| cursors[s] < streams[s].len())
                .map(|s| (s, streams[s][cursors[s]].as_slice()))
                .collect();
            if ready.is_empty() {
                break;
            }
            for (s, row) in session.step(&ready).unwrap().logits {
                out[s].push(row);
                cursors[s] += 1;
            }
            // Retire exhausted lanes and backfill with the waiting stream.
            for s in session.tokens().to_vec() {
                if cursors[s] == streams[s].len() {
                    assert!(session.retire(s));
                    session.mark_completed();
                }
            }
            if !session.is_full() && session.frames_served(2).is_none() && cursors[2] == 0 {
                assert!(session.admit(2));
            }
        }
        assert_eq!(out.to_vec(), serial, "mid-flight churn keeps bit-identity");
        assert_eq!(session.stats().admitted, 3);
        assert_eq!(session.stats().completed, 3);
        assert!(!session.retire(7), "unknown token retires nothing");
    }

    #[test]
    #[should_panic(expected = "batch capacity")]
    fn zero_capacity_rejected() {
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).unwrap();
        let exec = rtm_exec::Executor::new(1);
        let _ = BatchedSession::new(&compiled, &exec, 0);
    }

    #[test]
    fn bad_partition_propagates_error() {
        let net = net();
        // stripes > rows for 12-row matrices is clamped, so force the error
        // with zero blocks.
        assert!(CompiledNetwork::compile(&net, 0, 4, RuntimePrecision::F32).is_err());
    }
}
