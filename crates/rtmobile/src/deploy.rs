//! The deployed runtime artifact: BSPC-compiled GRU inference.
//!
//! [`CompiledNetwork`] lowers a (pruned) [`GruNetwork`] into per-gate
//! [`BspcMatrix`] storage carrying the matrix-reorder permutation, then
//! *executes* inference through the sparse kernels. This is the functional
//! counterpart of the simulator's cost model: the simulator prices the
//! kernels, this module proves they compute the right thing. With
//! [`RuntimePrecision::F16`] all weights and intermediate activations round
//! through IEEE binary16, modelling the paper's 16-bit GPU datapath.

use rtm_compiler::reorder::ReorderPlan;
use rtm_rnn::GruNetwork;
use rtm_sparse::BspcMatrix;
use rtm_tensor::activations::{sigmoid, sigmoid_slice, tanh, tanh_slice};
use rtm_tensor::f16::quantize_f16;
use rtm_tensor::{Matrix, Vector};

/// Numeric mode of the compiled runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimePrecision {
    /// Full f32 (CPU path).
    #[default]
    F32,
    /// Round weights and activations through binary16 (GPU path).
    F16,
    /// Symmetric int8 *weight-only* quantization (the DESIGN.md §6 what-if
    /// CPU path): weights round through int8, activations stay f32.
    Int8,
}

/// One compiled GRU layer: six BSPC gate matrices plus biases.
#[derive(Debug, Clone)]
pub struct CompiledGruLayer {
    pub(crate) w_z: BspcMatrix,
    pub(crate) u_z: BspcMatrix,
    pub(crate) b_z: Vec<f32>,
    pub(crate) w_r: BspcMatrix,
    pub(crate) u_r: BspcMatrix,
    pub(crate) b_r: Vec<f32>,
    pub(crate) w_n: BspcMatrix,
    pub(crate) u_n: BspcMatrix,
    pub(crate) b_n: Vec<f32>,
    pub(crate) hidden: usize,
}

/// A GRU network compiled to BSPC sparse storage.
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    pub(crate) layers: Vec<CompiledGruLayer>,
    pub(crate) head_w: Matrix,
    pub(crate) head_b: Vec<f32>,
    pub(crate) precision: RuntimePrecision,
}

/// Reusable workspace for the compiled streaming loop.
///
/// One instance serves every layer of every frame of a stream: the gate
/// vectors and recurrent-SpMV temporaries live here and are resized on
/// use, so the steady state of [`CompiledNetwork::forward`] /
/// [`CompiledNetwork::forward_with`] allocates nothing but the returned
/// logits.
#[derive(Debug, Clone, Default)]
pub struct GruRuntimeScratch {
    /// Update gate.
    z: Vec<f32>,
    /// Reset gate.
    r: Vec<f32>,
    /// Candidate state.
    n: Vec<f32>,
    /// Reset-gated state `r ⊙ h_prev`.
    rh: Vec<f32>,
    /// Recurrent-SpMV temp (serial path) / `U_n (r ⊙ h)` (both paths).
    tmp: Vec<f32>,
    /// `U_z h_prev` in the pooled phase A.
    tmp2: Vec<f32>,
    /// `U_r h_prev` in the pooled phase A.
    tmp3: Vec<f32>,
}

impl GruRuntimeScratch {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> GruRuntimeScratch {
        GruRuntimeScratch::default()
    }

    /// Sizes the per-gate buffers for a layer of width `hidden`.
    fn reserve(&mut self, hidden: usize) {
        self.z.resize(hidden, 0.0);
        self.r.resize(hidden, 0.0);
        self.n.resize(hidden, 0.0);
        self.rh.resize(hidden, 0.0);
        self.tmp.resize(hidden, 0.0);
        self.tmp2.resize(hidden, 0.0);
        self.tmp3.resize(hidden, 0.0);
    }
}

impl CompiledNetwork {
    /// Compiles `net` with the given BSP partition and precision.
    ///
    /// Every gate matrix is converted to BSPC (with the matrix-reorder
    /// permutation attached per §IV-B-c) and, under
    /// [`RuntimePrecision::F16`], quantized through binary16 first.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`rtm_sparse::BspcError`] when the partition
    /// does not fit a tensor.
    pub fn compile(
        net: &GruNetwork,
        stripes: usize,
        blocks: usize,
        precision: RuntimePrecision,
    ) -> Result<CompiledNetwork, rtm_sparse::BspcError> {
        let quant = |m: &Matrix| -> Matrix {
            match precision {
                RuntimePrecision::F32 => m.clone(),
                RuntimePrecision::F16 => m.map(quantize_f16),
                RuntimePrecision::Int8 => rtm_tensor::QuantizedMatrix::quantize(m).dequantize(),
            }
        };
        let lower = |m: &Matrix| -> Result<BspcMatrix, rtm_sparse::BspcError> {
            let q = quant(m);
            let s = stripes.min(q.rows().max(1));
            let b = blocks.min(q.cols().max(1));
            let reorder = ReorderPlan::compute(&q, 8);
            let perm: Vec<u32> = reorder.perm.iter().map(|&r| r as u32).collect();
            BspcMatrix::from_dense(&q, s, b)?.with_reorder(perm)
        };

        let mut layers = Vec::with_capacity(net.layers.len());
        for cell in &net.layers {
            layers.push(CompiledGruLayer {
                w_z: lower(&cell.w_z)?,
                u_z: lower(&cell.u_z)?,
                b_z: cell.b_z.clone(),
                w_r: lower(&cell.w_r)?,
                u_r: lower(&cell.u_r)?,
                b_r: cell.b_r.clone(),
                w_n: lower(&cell.w_n)?,
                u_n: lower(&cell.u_n)?,
                b_n: cell.b_n.clone(),
                hidden: cell.hidden_dim(),
            });
        }
        Ok(CompiledNetwork {
            layers,
            head_w: quant(&net.head.w),
            head_b: net.head.b.clone(),
            precision,
        })
    }

    /// The numeric mode.
    pub fn precision(&self) -> RuntimePrecision {
        self.precision
    }

    /// Total bytes of the compiled weight storage (values + indices) at the
    /// runtime precision.
    pub fn storage_bytes(&self) -> usize {
        use rtm_sparse::footprint::{Footprint, Precision};
        let prec = match self.precision {
            RuntimePrecision::F32 => Precision::F32,
            RuntimePrecision::F16 => Precision::F16,
            RuntimePrecision::Int8 => Precision::Int8,
        };
        self.layers
            .iter()
            .flat_map(|l| [&l.w_z, &l.u_z, &l.w_r, &l.u_r, &l.w_n, &l.u_n])
            .map(|m| Footprint::bspc(m, prec).total())
            .sum()
    }

    fn maybe_quantize(&self, v: &mut [f32]) {
        if self.precision == RuntimePrecision::F16 {
            for x in v {
                *x = quantize_f16(*x);
            }
        }
    }

    /// Runs inference over a frame sequence, returning per-frame logits.
    ///
    /// Streaming is zero-allocation in steady state: one
    /// [`GruRuntimeScratch`] plus double-buffered state/input vectors serve
    /// every frame; only the returned logit rows are freshly allocated.
    ///
    /// # Panics
    ///
    /// Panics if the frame dimension does not match the compiled model.
    pub fn forward(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut states: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.hidden]).collect();
        let mut scratch = GruRuntimeScratch::new();
        let mut x: Vec<f32> = Vec::new();
        let mut h_next: Vec<f32> = Vec::new();
        let mut logits = Vec::with_capacity(frames.len());
        for frame in frames {
            x.clear();
            x.extend_from_slice(frame);
            self.maybe_quantize(&mut x);
            for (layer, h) in self.layers.iter().zip(states.iter_mut()) {
                layer.step_into(&x, h, self.precision, &mut scratch, &mut h_next);
                std::mem::swap(h, &mut h_next);
                x.clear();
                x.extend_from_slice(h);
            }
            let mut out = rtm_tensor::gemm::gemv(&self.head_w, &x).expect("head dims");
            Vector::axpy(1.0, &self.head_b, &mut out);
            logits.push(out);
        }
        logits
    }

    /// Per-frame argmax predictions.
    pub fn predict(&self, frames: &[Vec<f32>]) -> Vec<usize> {
        self.forward(frames)
            .iter()
            .map(|l| Vector::argmax(l))
            .collect()
    }

    /// [`CompiledNetwork::forward`] with every gate SpMV dispatched through
    /// a parallel [`rtm_exec::Executor`]. Bit-identical to the serial
    /// forward for any thread count (per-gate accumulation order is
    /// preserved; see [`CompiledGruLayer::step_with`]).
    ///
    /// # Panics
    ///
    /// Panics if the frame dimension does not match the compiled model.
    pub fn forward_with(&self, exec: &rtm_exec::Executor, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let mut states: Vec<Vec<f32>> = self.layers.iter().map(|l| vec![0.0; l.hidden]).collect();
        let mut scratch = GruRuntimeScratch::new();
        let mut x: Vec<f32> = Vec::new();
        let mut h_next: Vec<f32> = Vec::new();
        let mut logits = Vec::with_capacity(frames.len());
        for frame in frames {
            x.clear();
            x.extend_from_slice(frame);
            self.maybe_quantize(&mut x);
            for (layer, h) in self.layers.iter().zip(states.iter_mut()) {
                layer.step_with_into(exec, &x, h, self.precision, &mut scratch, &mut h_next);
                std::mem::swap(h, &mut h_next);
                x.clear();
                x.extend_from_slice(h);
            }
            let mut out = rtm_tensor::gemm::gemv(&self.head_w, &x).expect("head dims");
            Vector::axpy(1.0, &self.head_b, &mut out);
            logits.push(out);
        }
        logits
    }

    /// Per-frame argmax predictions through the parallel executor.
    pub fn predict_with(&self, exec: &rtm_exec::Executor, frames: &[Vec<f32>]) -> Vec<usize> {
        self.forward_with(exec, frames)
            .iter()
            .map(|l| Vector::argmax(l))
            .collect()
    }
}

/// A GRU layer compiled with gate fusion: one `3H × I` input kernel and
/// one `3H × H` recurrent kernel per step — the launch structure the
/// simulator's frame model (and the Figure 4 saturation) assumes.
#[derive(Debug, Clone)]
pub struct FusedGruLayer {
    wx: BspcMatrix,
    uh: BspcMatrix,
    biases: [Vec<f32>; 3],
    hidden: usize,
}

impl FusedGruLayer {
    /// Fuses a trained cell's gates (z, r, n order) into the two kernels.
    ///
    /// # Errors
    ///
    /// Returns [`rtm_sparse::BspcError`] if the partition does not fit the
    /// fused matrices.
    pub fn compile(
        cell: &rtm_rnn::gru::GruCell,
        stripes: usize,
        blocks: usize,
    ) -> Result<FusedGruLayer, rtm_sparse::BspcError> {
        use rtm_compiler::fusion::FusedMatrix;
        let wx_fused = FusedMatrix::stack(&[&cell.w_z, &cell.w_r, &cell.w_n])
            .expect("gates share the input width");
        let uh_fused = FusedMatrix::stack(&[&cell.u_z, &cell.u_r, &cell.u_n])
            .expect("gates share the hidden width");
        let s = |m: &Matrix| stripes.min(m.rows().max(1));
        let b = |m: &Matrix| blocks.min(m.cols().max(1));
        Ok(FusedGruLayer {
            wx: BspcMatrix::from_dense(&wx_fused.matrix, s(&wx_fused.matrix), b(&wx_fused.matrix))?,
            uh: BspcMatrix::from_dense(&uh_fused.matrix, s(&uh_fused.matrix), b(&uh_fused.matrix))?,
            biases: [cell.b_z.clone(), cell.b_r.clone(), cell.b_n.clone()],
            hidden: cell.hidden_dim(),
        })
    }

    /// One GRU step through the fused kernels.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn step(&self, x: &[f32], h_prev: &[f32]) -> Vec<f32> {
        let hid = self.hidden;
        // Kernel 1: all input-side gate pre-activations at once.
        let wx_out = self.wx.spmv(x).expect("input dims");
        // Kernel 2: all recurrent pre-activations on h (z and r use these;
        // the candidate's recurrent part needs r ⊙ h, computed below).
        let uh_out = self.uh.spmv(h_prev).expect("hidden dims");

        let mut z = vec![0.0f32; hid];
        let mut r = vec![0.0f32; hid];
        for i in 0..hid {
            z[i] = sigmoid(wx_out[i] + uh_out[i] + self.biases[0][i]);
            r[i] = sigmoid(wx_out[hid + i] + uh_out[hid + i] + self.biases[1][i]);
        }
        let rh: Vec<f32> = r.iter().zip(h_prev).map(|(&a, &b)| a * b).collect();
        let uh_rh = self.uh.spmv(&rh).expect("hidden dims");
        let mut h = vec![0.0f32; hid];
        for i in 0..hid {
            let n = tanh(wx_out[2 * hid + i] + uh_rh[2 * hid + i] + self.biases[2][i]);
            h[i] = (1.0 - z[i]) * n + z[i] * h_prev[i];
        }
        h
    }
}

impl CompiledGruLayer {
    /// One serial GRU step, allocation-free: gates and temporaries live in
    /// `scratch`, the fresh state lands in `h_out` (resized on entry).
    fn step_into(
        &self,
        x: &[f32],
        h_prev: &[f32],
        precision: RuntimePrecision,
        scratch: &mut GruRuntimeScratch,
        h_out: &mut Vec<f32>,
    ) {
        let quantize = |v: &mut [f32]| {
            if precision == RuntimePrecision::F16 {
                for e in v.iter_mut() {
                    *e = quantize_f16(*e);
                }
            }
        };
        scratch.reserve(self.hidden);
        h_out.resize(self.hidden, 0.0);

        self.w_z.spmv_into(x, &mut scratch.z).expect("dims");
        self.u_z.spmv_into(h_prev, &mut scratch.tmp).expect("dims");
        Vector::axpy(1.0, &scratch.tmp, &mut scratch.z);
        Vector::axpy(1.0, &self.b_z, &mut scratch.z);
        sigmoid_slice(&mut scratch.z);
        quantize(&mut scratch.z);

        self.w_r.spmv_into(x, &mut scratch.r).expect("dims");
        self.u_r.spmv_into(h_prev, &mut scratch.tmp).expect("dims");
        Vector::axpy(1.0, &scratch.tmp, &mut scratch.r);
        Vector::axpy(1.0, &self.b_r, &mut scratch.r);
        sigmoid_slice(&mut scratch.r);
        quantize(&mut scratch.r);

        Vector::hadamard_into(&scratch.r, h_prev, &mut scratch.rh);
        self.w_n.spmv_into(x, &mut scratch.n).expect("dims");
        self.u_n
            .spmv_into(&scratch.rh, &mut scratch.tmp)
            .expect("dims");
        Vector::axpy(1.0, &scratch.tmp, &mut scratch.n);
        Vector::axpy(1.0, &self.b_n, &mut scratch.n);
        tanh_slice(&mut scratch.n);
        quantize(&mut scratch.n);

        for i in 0..self.hidden {
            h_out[i] = (1.0 - scratch.z[i]) * scratch.n[i] + scratch.z[i] * h_prev[i];
        }
        quantize(h_out);
    }

    /// One step with the five `h_prev`-independent gate SpMVs (`W_z x`,
    /// `U_z h`, `W_r x`, `U_r h`, `W_n x`) dispatched as parallel pool
    /// tasks, and the reset-gated candidate recurrence `U_n (r ⊙ h)` as a
    /// row-parallel BSPC SpMV once `r` is known. Combination order per gate
    /// matches [`CompiledGruLayer::step_into`] exactly, so the output is
    /// bit-identical to the serial step for any thread count — and like the
    /// serial form, the steady state allocates nothing: the pool tasks
    /// write straight into disjoint `scratch` buffers.
    fn step_with_into(
        &self,
        exec: &rtm_exec::Executor,
        x: &[f32],
        h_prev: &[f32],
        precision: RuntimePrecision,
        scratch: &mut GruRuntimeScratch,
        h_out: &mut Vec<f32>,
    ) {
        let quantize = |v: &mut [f32]| {
            if precision == RuntimePrecision::F16 {
                for e in v.iter_mut() {
                    *e = quantize_f16(*e);
                }
            }
        };
        scratch.reserve(self.hidden);
        h_out.resize(self.hidden, 0.0);

        // Phase A: everything that only needs x and h_prev. The gate input
        // terms land in z/r/n, the recurrent terms in tmp2/tmp3.
        {
            let spmv = |m: &BspcMatrix, v: &[f32], out: &mut [f32]| {
                m.spmv_into(v, out).expect("dims");
            };
            let wzx = &mut scratch.z;
            let uzh = &mut scratch.tmp2;
            let wrx = &mut scratch.r;
            let urh = &mut scratch.tmp3;
            let wnx = &mut scratch.n;
            exec.run(vec![
                Box::new(move || spmv(&self.w_z, x, wzx)),
                Box::new(move || spmv(&self.u_z, h_prev, uzh)),
                Box::new(move || spmv(&self.w_r, x, wrx)),
                Box::new(move || spmv(&self.u_r, h_prev, urh)),
                Box::new(move || spmv(&self.w_n, x, wnx)),
            ]);
        }

        Vector::axpy(1.0, &scratch.tmp2, &mut scratch.z);
        Vector::axpy(1.0, &self.b_z, &mut scratch.z);
        sigmoid_slice(&mut scratch.z);
        quantize(&mut scratch.z);

        Vector::axpy(1.0, &scratch.tmp3, &mut scratch.r);
        Vector::axpy(1.0, &self.b_r, &mut scratch.r);
        sigmoid_slice(&mut scratch.r);
        quantize(&mut scratch.r);

        // Phase B: the candidate recurrence, row-parallel across the pool.
        Vector::hadamard_into(&scratch.r, h_prev, &mut scratch.rh);
        exec.spmv_bspc_into(&self.u_n, &scratch.rh, &mut scratch.tmp)
            .expect("dims");
        Vector::axpy(1.0, &scratch.tmp, &mut scratch.n);
        Vector::axpy(1.0, &self.b_n, &mut scratch.n);
        tanh_slice(&mut scratch.n);
        quantize(&mut scratch.n);

        for i in 0..self.hidden {
            h_out[i] = (1.0 - scratch.z[i]) * scratch.n[i] + scratch.z[i] * h_prev[i];
        }
        quantize(h_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_rnn::model::NetworkConfig;

    fn net() -> GruNetwork {
        GruNetwork::new(
            &NetworkConfig {
                input_dim: 6,
                hidden_dims: vec![12, 12],
                num_classes: 4,
            },
            17,
        )
    }

    fn frames() -> Vec<Vec<f32>> {
        (0..9)
            .map(|t| {
                (0..6)
                    .map(|i| ((t * 6 + i) as f32 * 0.3).sin() * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn f32_compiled_matches_dense_exactly() {
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32).unwrap();
        let dense = net.forward(&frames());
        let sparse = compiled.forward(&frames());
        for (d, s) in dense.iter().zip(&sparse) {
            for (a, b) in d.iter().zip(s) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
        assert_eq!(compiled.precision(), RuntimePrecision::F32);
    }

    #[test]
    fn f16_compiled_close_to_dense() {
        let net = net();
        let compiled = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16).unwrap();
        let dense = net.forward(&frames());
        let half = compiled.forward(&frames());
        // f16 rounding perturbs but must not change the ballpark.
        for (d, s) in dense.iter().zip(&half) {
            for (a, b) in d.iter().zip(s) {
                assert!((a - b).abs() < 0.05, "{a} vs {b}");
            }
        }
        // Predictions agree on a comfortable majority of frames.
        let agree = net
            .predict(&frames())
            .iter()
            .zip(compiled.predict(&frames()))
            .filter(|(a, b)| **a == *b)
            .count();
        assert!(agree >= 7, "agreement {agree}/9");
    }

    #[test]
    fn pruned_network_roundtrips() {
        // Zero half the columns (BSP-like) and verify the compiled network
        // still matches the dense forward of the pruned weights.
        let mut net = net();
        for (_, m) in net.prunable_mut() {
            let cols = m.cols();
            for r in 0..m.rows() {
                for c in 0..cols {
                    if c % 2 == 1 {
                        m[(r, c)] = 0.0;
                    }
                }
            }
        }
        let compiled = CompiledNetwork::compile(&net, 4, 2, RuntimePrecision::F32).unwrap();
        let dense = net.forward(&frames());
        let sparse = compiled.forward(&frames());
        for (d, s) in dense.iter().zip(&sparse) {
            for (a, b) in d.iter().zip(s) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn fused_layer_matches_unfused_step() {
        let net = net();
        let cell = &net.layers[0];
        let fused = FusedGruLayer::compile(cell, 4, 2).expect("fits");
        let x: Vec<f32> = (0..6).map(|i| (i as f32 * 0.5).sin()).collect();
        let mut h = vec![0.0f32; cell.hidden_dim()];
        for _ in 0..5 {
            let unfused = cell.step(&x, &h);
            let fused_h = fused.step(&x, &h);
            for (a, b) in unfused.h.iter().zip(&fused_h) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
            h = fused_h;
        }
    }

    #[test]
    fn int8_weight_only_quantization_close_to_f32() {
        let net = net();
        let q = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::Int8).unwrap();
        assert_eq!(q.precision(), RuntimePrecision::Int8);
        let dense = net.forward(&frames());
        let quantized = q.forward(&frames());
        for (d, s) in dense.iter().zip(&quantized) {
            for (a, b) in d.iter().zip(s) {
                assert!((a - b).abs() < 0.05, "{a} vs {b}");
            }
        }
        // Int8 storage accounting is the smallest of the three modes.
        let f32b = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F32)
            .unwrap()
            .storage_bytes();
        let f16b = CompiledNetwork::compile(&net, 4, 4, RuntimePrecision::F16)
            .unwrap()
            .storage_bytes();
        assert!(q.storage_bytes() < f16b && f16b < f32b);
    }

    #[test]
    fn storage_shrinks_with_pruning_and_precision() {
        let net_dense = net();
        let mut net_pruned = net_dense.clone();
        for (_, m) in net_pruned.prunable_mut() {
            let cols = m.cols();
            for r in 0..m.rows() {
                for c in 0..cols {
                    if c % 4 != 0 {
                        m[(r, c)] = 0.0;
                    }
                }
            }
        }
        let d32 = CompiledNetwork::compile(&net_dense, 4, 4, RuntimePrecision::F32)
            .unwrap()
            .storage_bytes();
        let p32 = CompiledNetwork::compile(&net_pruned, 4, 4, RuntimePrecision::F32)
            .unwrap()
            .storage_bytes();
        let p16 = CompiledNetwork::compile(&net_pruned, 4, 4, RuntimePrecision::F16)
            .unwrap()
            .storage_bytes();
        assert!(p32 < d32 / 2, "pruning shrinks storage: {p32} vs {d32}");
        assert!(p16 < p32, "f16 shrinks storage further: {p16} vs {p32}");
    }

    #[test]
    fn forward_with_matches_forward_bit_exact() {
        let net = net();
        for precision in [
            RuntimePrecision::F32,
            RuntimePrecision::F16,
            RuntimePrecision::Int8,
        ] {
            let compiled = CompiledNetwork::compile(&net, 4, 4, precision).unwrap();
            let serial = compiled.forward(&frames());
            for threads in [1usize, 2, 4] {
                let exec = rtm_exec::Executor::new(threads);
                assert_eq!(
                    compiled.forward_with(&exec, &frames()),
                    serial,
                    "{precision:?}, {threads} threads"
                );
                assert_eq!(
                    compiled.predict_with(&exec, &frames()),
                    compiled.predict(&frames())
                );
            }
        }
    }

    #[test]
    fn bad_partition_propagates_error() {
        let net = net();
        // stripes > rows for 12-row matrices is clamped, so force the error
        // with zero blocks.
        assert!(CompiledNetwork::compile(&net, 0, 4, RuntimePrecision::F32).is_err());
    }
}
