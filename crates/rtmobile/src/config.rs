//! The unified runtime configuration.
//!
//! The serving stack grew one knob at a time — threads, batch, SIMD
//! dispatch, health policy, admission control, tracing — each with its own
//! builder method, environment variable or CLI flag. [`RuntimeConfig`]
//! consolidates them into one serde-free struct that the
//! [`RtMobile`](crate::RtMobile) builder, the `rtm` CLI and the
//! environment ([`RuntimeConfig::from_env`], via [`crate::env`]) all flow
//! through, so "how is this process configured?" has a single answer.
//!
//! The `Option` knobs (`simd`, `health`, `trace`) distinguish "explicitly
//! chosen" from "let the environment variable decide": a `None` leaves the
//! corresponding process-global default (`RTM_SIMD`, `RTM_HEALTH`,
//! `RTM_TRACE`) in charge, exactly as the pre-consolidation builder
//! methods did.

use crate::deploy::{RuntimeFormat, RuntimePrecision};
use crate::health::HealthPolicy;
use crate::serve::{AdmissionConfig, ServeOptions};
use rtm_tensor::simd::SimdPolicy;
use rtm_trace::TraceConfig;

/// How the pipeline picks the storage precision of the compiled weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrecisionChoice {
    /// Compile every layer at this precision.
    Fixed(RuntimePrecision),
    /// Measure the f32/f16/int8 kernels per layer shape and pick the
    /// fastest per layer, subject to the pipeline's accuracy guard (a
    /// PER-degradation bound versus the f32 baseline; violations fall back
    /// to all-f32).
    Auto,
}

impl PrecisionChoice {
    /// Parses `"f32"`, `"f16"`, `"int8"` or `"auto"` (the `RTM_PRECISION`
    /// / `--precision` grammar).
    pub fn parse(s: &str) -> Option<PrecisionChoice> {
        if s == "auto" {
            Some(PrecisionChoice::Auto)
        } else {
            RuntimePrecision::parse(s).map(PrecisionChoice::Fixed)
        }
    }

    /// The label [`PrecisionChoice::parse`] accepts for this value.
    pub fn tag(self) -> &'static str {
        match self {
            PrecisionChoice::Fixed(p) => p.tag(),
            PrecisionChoice::Auto => "auto",
        }
    }
}

/// How the pipeline picks the sparse storage format of the compiled
/// weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatChoice {
    /// Compile every layer into this format.
    Fixed(RuntimeFormat),
    /// Measure the BSPC/CSR/BBS/CSB kernels per layer shape and pick the
    /// fastest per layer, subject to the pipeline's accuracy guard (a
    /// PER-degradation bound versus the all-BSPC baseline; violations fall
    /// back to all-BSPC).
    Auto,
}

impl FormatChoice {
    /// Parses `"bspc"`, `"csr"`, `"bbs"`, `"csb"` or `"auto"` (the
    /// `RTM_FORMAT` / `--format` grammar).
    pub fn parse(s: &str) -> Option<FormatChoice> {
        if s == "auto" {
            Some(FormatChoice::Auto)
        } else {
            RuntimeFormat::parse(s).map(FormatChoice::Fixed)
        }
    }

    /// The label [`FormatChoice::parse`] accepts for this value.
    pub fn tag(self) -> &'static str {
        match self {
            FormatChoice::Fixed(f) => f.tag(),
            FormatChoice::Auto => "auto",
        }
    }
}

/// How decoded symbol sequences are produced from the classifier's
/// per-frame logits (the `RTM_DECODER` / `--decoder` grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecoderChoice {
    /// Collapse consecutive argmax frames — the legacy PER path, now
    /// behind [`rtm_speech::ArgmaxDecoder`].
    Argmax,
    /// First-order Viterbi smoothing ([`rtm_speech::ViterbiDecoder`]) with
    /// the pipeline's default switch penalty. Offline: partial hypotheses
    /// are only available at `finish`.
    Viterbi,
    /// CTC best-path decoding ([`rtm_speech::CtcGreedyDecoder`]; the blank
    /// is the silence phone for 39-class heads).
    CtcGreedy,
    /// CTC prefix beam search ([`rtm_speech::CtcBeamDecoder`]) with this
    /// beam width (≥ 1).
    CtcBeam(usize),
}

impl DecoderChoice {
    /// The Viterbi switch penalty the pipeline uses (the value the
    /// examples and speech benches settled on).
    pub const VITERBI_PENALTY: f32 = 2.5;

    /// Parses `"argmax"`, `"viterbi"`, `"ctc-greedy"` or `"ctc-beam:N"`
    /// (N ≥ 1) — the `RTM_DECODER` / `--decoder` grammar.
    pub fn parse(s: &str) -> Option<DecoderChoice> {
        match s {
            "argmax" => Some(DecoderChoice::Argmax),
            "viterbi" => Some(DecoderChoice::Viterbi),
            "ctc-greedy" => Some(DecoderChoice::CtcGreedy),
            _ => s
                .strip_prefix("ctc-beam:")
                .and_then(|w| w.parse::<usize>().ok())
                .filter(|&w| w >= 1)
                .map(DecoderChoice::CtcBeam),
        }
    }

    /// The decoder family name (beam width elided — see
    /// [`DecoderChoice::label`] for the round-trippable form).
    pub fn tag(self) -> &'static str {
        match self {
            DecoderChoice::Argmax => "argmax",
            DecoderChoice::Viterbi => "viterbi",
            DecoderChoice::CtcGreedy => "ctc-greedy",
            DecoderChoice::CtcBeam(_) => "ctc-beam",
        }
    }

    /// The beam width (0 for the non-beam decoders).
    pub fn beam_width(self) -> usize {
        match self {
            DecoderChoice::CtcBeam(w) => w,
            _ => 0,
        }
    }

    /// The full label [`DecoderChoice::parse`] accepts for this value
    /// (e.g. `"ctc-beam:4"`).
    pub fn label(self) -> String {
        match self {
            DecoderChoice::CtcBeam(w) => format!("ctc-beam:{w}"),
            other => other.tag().to_string(),
        }
    }

    /// Builds the decoder for a `classes`-way classifier head. CTC
    /// decoders map the blank onto [`rtm_speech::blank_for`]`(classes)`.
    pub fn build(self, classes: usize) -> Box<dyn rtm_speech::Decoder + Send> {
        let blank = rtm_speech::blank_for(classes);
        match self {
            DecoderChoice::Argmax => Box::new(
                rtm_speech::ArgmaxDecoder::new()
                    .with_endpointing(blank, rtm_speech::ctc::DEFAULT_TRAILING_BLANKS),
            ),
            DecoderChoice::Viterbi => {
                Box::new(rtm_speech::ViterbiDecoder::new(Self::VITERBI_PENALTY))
            }
            DecoderChoice::CtcGreedy => Box::new(rtm_speech::CtcGreedyDecoder::new(blank)),
            DecoderChoice::CtcBeam(w) => Box::new(rtm_speech::CtcBeamDecoder::new(blank, w)),
        }
    }
}

/// Every runtime knob of the serving stack in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads for the compiled runtime's inference pass (≥ 1;
    /// parallel execution is bit-identical to serial).
    pub threads: usize,
    /// Concurrent inference lanes of the batched scoring pass (≥ 1; the
    /// batched path is bit-identical to the serial per-utterance loop).
    pub batch: usize,
    /// Kernel dispatch policy; `None` defers to `RTM_SIMD`.
    pub simd: Option<SimdPolicy>,
    /// Numerical-health policy; `None` defers to `RTM_HEALTH`.
    pub health: Option<HealthPolicy>,
    /// Observability switch; `None` defers to `RTM_TRACE`.
    pub trace: Option<TraceConfig>,
    /// Weight storage precision; `None` defers to `RTM_PRECISION` (and the
    /// pipeline's f16 default when that is unset too).
    pub precision: Option<PrecisionChoice>,
    /// Sparse weight storage format; `None` defers to `RTM_FORMAT` (and
    /// the pipeline's BSPC default when that is unset too).
    pub format: Option<FormatChoice>,
    /// Utterance decoder; `None` defers to `RTM_DECODER` (and the legacy
    /// argmax-collapse default when that is unset too).
    pub decoder: Option<DecoderChoice>,
    /// Admission control of the batched scheduler (unbounded by default).
    pub admission: AdmissionConfig,
    /// Socket-layer bounds of the `rtm serve` front end (ephemeral port,
    /// 64 connections, no tenant quota by default).
    pub serve: ServeOptions,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            threads: 1,
            batch: 1,
            simd: None,
            health: None,
            trace: None,
            precision: None,
            format: None,
            decoder: None,
            admission: AdmissionConfig::unbounded(),
            serve: ServeOptions::default(),
        }
    }
}

impl RuntimeConfig {
    /// The default configuration with every environment-settable knob
    /// resolved from its variable (`RTM_SIMD`, `RTM_HEALTH`, `RTM_TRACE`).
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::env::EnvError`] for a variable that is
    /// set but unparseable — a deployment typo surfaces as a typed error
    /// instead of a silently ignored setting.
    pub fn from_env() -> Result<RuntimeConfig, crate::env::EnvError> {
        Ok(RuntimeConfig {
            simd: crate::env::simd_policy()?,
            health: crate::env::health_policy()?,
            trace: crate::env::trace_config()?,
            precision: crate::env::precision_choice()?,
            format: crate::env::format_choice()?,
            decoder: crate::env::decoder_choice()?,
            ..RuntimeConfig::default()
        })
    }

    /// Sets the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> RuntimeConfig {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Sets the batched-lane capacity.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn with_batch(mut self, batch: usize) -> RuntimeConfig {
        assert!(batch > 0, "batch capacity must be at least 1");
        self.batch = batch;
        self
    }

    /// Pins the kernel dispatch policy (overrides `RTM_SIMD`).
    pub fn with_simd(mut self, policy: SimdPolicy) -> RuntimeConfig {
        self.simd = Some(policy);
        self
    }

    /// Pins the numerical-health policy (overrides `RTM_HEALTH`).
    pub fn with_health(mut self, policy: HealthPolicy) -> RuntimeConfig {
        self.health = Some(policy);
        self
    }

    /// Pins the observability switch (overrides `RTM_TRACE`).
    pub fn with_trace(mut self, trace: TraceConfig) -> RuntimeConfig {
        self.trace = Some(trace);
        self
    }

    /// Pins the weight storage precision (overrides `RTM_PRECISION`).
    pub fn with_precision(mut self, precision: PrecisionChoice) -> RuntimeConfig {
        self.precision = Some(precision);
        self
    }

    /// Pins the sparse weight storage format (overrides `RTM_FORMAT`).
    pub fn with_format(mut self, format: FormatChoice) -> RuntimeConfig {
        self.format = Some(format);
        self
    }

    /// Pins the utterance decoder (overrides `RTM_DECODER`).
    pub fn with_decoder(mut self, decoder: DecoderChoice) -> RuntimeConfig {
        self.decoder = Some(decoder);
        self
    }

    /// Sets the batched scheduler's admission control.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> RuntimeConfig {
        self.admission = admission;
        self
    }

    /// Sets the `rtm serve` socket-layer bounds.
    pub fn with_serve(mut self, serve: ServeOptions) -> RuntimeConfig {
        self.serve = serve;
        self
    }

    /// The precision choice a run resolves to: the pinned one, otherwise
    /// the `RTM_PRECISION` deployment default, otherwise the pipeline's
    /// f16 default (the paper's mobile-GPU datapath).
    pub fn resolved_precision(&self) -> PrecisionChoice {
        self.precision
            .or_else(|| crate::env::precision_choice().ok().flatten())
            .unwrap_or(PrecisionChoice::Fixed(RuntimePrecision::F16))
    }

    /// The format choice a run resolves to: the pinned one, otherwise the
    /// `RTM_FORMAT` deployment default, otherwise the pipeline's BSPC
    /// default (the paper's block-based structured pruning format).
    pub fn resolved_format(&self) -> FormatChoice {
        self.format
            .or_else(|| crate::env::format_choice().ok().flatten())
            .unwrap_or(FormatChoice::Fixed(RuntimeFormat::Bspc))
    }

    /// The decoder a run resolves to: the pinned one, otherwise the
    /// `RTM_DECODER` deployment default, otherwise the legacy
    /// argmax-collapse path (bit-compatible with the pre-decoder PER
    /// scoring).
    pub fn resolved_decoder(&self) -> DecoderChoice {
        self.decoder
            .or_else(|| crate::env::decoder_choice().ok().flatten())
            .unwrap_or(DecoderChoice::Argmax)
    }

    /// The health policy a run resolves to: the pinned one, otherwise the
    /// `RTM_HEALTH` deployment default.
    pub fn resolved_health(&self) -> HealthPolicy {
        self.health.unwrap_or_else(crate::health::policy_from_env)
    }

    /// Installs the process-global knobs this config pins: the SIMD
    /// dispatch policy ([`rtm_tensor::simd::set_policy`]) and the trace
    /// switch ([`rtm_trace::set_config`]). `None` knobs leave the ambient
    /// (environment-derived) globals untouched.
    pub fn apply_globals(&self) {
        if let Some(policy) = self.simd {
            rtm_tensor::simd::set_policy(policy);
        }
        if let Some(trace) = self.trace {
            rtm_trace::set_config(trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ShedPolicy;
    use rtm_tensor::simd::Variant;

    #[test]
    fn default_matches_legacy_builder_defaults() {
        let c = RuntimeConfig::default();
        assert_eq!(c.threads, 1);
        assert_eq!(c.batch, 1);
        assert_eq!(c.simd, None);
        assert_eq!(c.health, None);
        assert_eq!(c.trace, None);
        assert_eq!(c.precision, None);
        assert_eq!(c.format, None);
        assert_eq!(c.decoder, None);
        assert_eq!(c.admission, AdmissionConfig::unbounded());
        assert_eq!(c.serve, ServeOptions::default());
        assert_eq!(c.serve.port, 0, "default serve port is ephemeral");
        assert_eq!(c.serve.max_conns, 64);
    }

    #[test]
    fn format_choice_parses_and_roundtrips() {
        use crate::deploy::RuntimeFormat;
        for choice in [
            FormatChoice::Fixed(RuntimeFormat::Bspc),
            FormatChoice::Fixed(RuntimeFormat::Csr),
            FormatChoice::Fixed(RuntimeFormat::Bbs),
            FormatChoice::Fixed(RuntimeFormat::Csb),
            FormatChoice::Auto,
        ] {
            assert_eq!(FormatChoice::parse(choice.tag()), Some(choice));
        }
        assert_eq!(FormatChoice::parse("coo"), None);
        assert_eq!(FormatChoice::parse("dense"), None);
        let c = RuntimeConfig::default().with_format(FormatChoice::Auto);
        assert_eq!(c.format, Some(FormatChoice::Auto));
        assert_eq!(c.resolved_format(), FormatChoice::Auto);
    }

    #[test]
    fn precision_choice_parses_and_roundtrips() {
        use crate::deploy::RuntimePrecision;
        for choice in [
            PrecisionChoice::Fixed(RuntimePrecision::F32),
            PrecisionChoice::Fixed(RuntimePrecision::F16),
            PrecisionChoice::Fixed(RuntimePrecision::Int8),
            PrecisionChoice::Auto,
        ] {
            assert_eq!(PrecisionChoice::parse(choice.tag()), Some(choice));
        }
        assert_eq!(PrecisionChoice::parse("fp64"), None);
        let c = RuntimeConfig::default().with_precision(PrecisionChoice::Auto);
        assert_eq!(c.precision, Some(PrecisionChoice::Auto));
        assert_eq!(c.resolved_precision(), PrecisionChoice::Auto);
    }

    #[test]
    fn decoder_choice_parses_and_roundtrips() {
        for choice in [
            DecoderChoice::Argmax,
            DecoderChoice::Viterbi,
            DecoderChoice::CtcGreedy,
            DecoderChoice::CtcBeam(1),
            DecoderChoice::CtcBeam(4),
            DecoderChoice::CtcBeam(16),
        ] {
            assert_eq!(DecoderChoice::parse(&choice.label()), Some(choice));
        }
        assert_eq!(DecoderChoice::parse("ctc"), None);
        assert_eq!(DecoderChoice::parse("ctc-beam"), None);
        assert_eq!(DecoderChoice::parse("ctc-beam:"), None);
        assert_eq!(DecoderChoice::parse("ctc-beam:0"), None, "zero width");
        assert_eq!(DecoderChoice::parse("ctc-beam:-1"), None);
        assert_eq!(DecoderChoice::parse("ctc-beam:wide"), None);
        assert_eq!(DecoderChoice::parse("beam"), None);
        assert_eq!(DecoderChoice::CtcBeam(4).tag(), "ctc-beam");
        assert_eq!(DecoderChoice::CtcBeam(4).beam_width(), 4);
        assert_eq!(DecoderChoice::Argmax.beam_width(), 0);
        let c = RuntimeConfig::default().with_decoder(DecoderChoice::CtcBeam(4));
        assert_eq!(c.decoder, Some(DecoderChoice::CtcBeam(4)));
        assert_eq!(c.resolved_decoder(), DecoderChoice::CtcBeam(4));
        assert_eq!(
            RuntimeConfig::default().decoder,
            None,
            "default defers to RTM_DECODER"
        );
    }

    #[test]
    fn decoder_choice_builds_working_decoders() {
        // Peaked logits over 4 classes (blank = 0 below the phone
        // inventory): B 1 1 B 2 → CTC decodes [1, 2]; argmax keeps the
        // blank class as a symbol.
        let frames: Vec<Vec<f32>> = [0usize, 1, 1, 0, 2]
            .iter()
            .map(|&l| (0..4).map(|c| if c == l { 6.0 } else { 0.0 }).collect())
            .collect();
        for (choice, want) in [
            (DecoderChoice::Argmax, vec![0usize, 1, 0, 2]),
            (DecoderChoice::Viterbi, vec![0, 1, 0, 2]),
            (DecoderChoice::CtcGreedy, vec![1, 2]),
            (DecoderChoice::CtcBeam(4), vec![1, 2]),
        ] {
            let mut decoder = choice.build(4);
            let hyp = rtm_speech::decode_offline(decoder.as_mut(), &frames);
            assert_eq!(hyp.symbols, want, "{}", choice.label());
        }
    }

    #[test]
    fn builder_sets_every_knob() {
        let c = RuntimeConfig::default()
            .with_threads(4)
            .with_batch(8)
            .with_simd(SimdPolicy::Fixed(Variant::ScalarU1))
            .with_health(HealthPolicy::Quarantine)
            .with_trace(rtm_trace::TraceConfig::on())
            .with_format(FormatChoice::Fixed(crate::deploy::RuntimeFormat::Csb))
            .with_admission(
                AdmissionConfig::unbounded()
                    .with_queue_depth(3)
                    .with_shed(ShedPolicy::DropOldest),
            )
            .with_serve(
                ServeOptions::default()
                    .with_port(9099)
                    .with_max_conns(8)
                    .with_tenant_quota(2)
                    .with_max_streams(100)
                    .with_idle_sleep_us(250),
            );
        assert_eq!(c.threads, 4);
        assert_eq!(c.batch, 8);
        assert_eq!(c.simd, Some(SimdPolicy::Fixed(Variant::ScalarU1)));
        assert_eq!(c.health, Some(HealthPolicy::Quarantine));
        assert_eq!(c.trace, Some(rtm_trace::TraceConfig::on()));
        assert_eq!(
            c.format,
            Some(FormatChoice::Fixed(crate::deploy::RuntimeFormat::Csb))
        );
        assert_eq!(c.admission.queue_depth, 3);
        assert_eq!(c.serve.port, 9099);
        assert_eq!(c.serve.max_conns, 8);
        assert_eq!(c.serve.tenant_quota, 2);
        assert_eq!(c.serve.max_streams, Some(100));
        assert_eq!(c.serve.idle_sleep_us, 250);
        assert_eq!(c.resolved_health(), HealthPolicy::Quarantine);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_is_rejected() {
        let _ = RuntimeConfig::default().with_threads(0);
    }

    #[test]
    #[should_panic(expected = "batch capacity")]
    fn zero_batch_is_rejected() {
        let _ = RuntimeConfig::default().with_batch(0);
    }
}
