//! Numerical-health guards for the serving runtime.
//!
//! A single NaN sample in one stream must not corrupt a whole batch: the
//! lane-major batched kernels keep lanes arithmetically independent, so a
//! poisoned lane's garbage never *mixes* into its neighbours — but without a
//! detector the poisoned stream keeps producing garbage logits forever, and
//! a NaN that reaches a shipped decoder is a silent wrong answer.
//! [`HealthPolicy`] is the knob (DESIGN.md §10): `Off` trusts the input,
//! `Check` detects and records, `Quarantine` detects and retires the
//! offending lane while every other lane stays bit-identical to serial.
//!
//! The same policy optionally hardens model *loading*: with a policy other
//! than `Off`, [`crate::model_file::from_bytes_with`] rejects weight files
//! carrying non-finite values.
//!
//! Mirrors the `RTM_SIMD` pattern: programmatic configuration wins, the
//! `RTM_HEALTH` environment variable is the deployment-side default.

use std::fmt;

/// What the runtime does about numerically broken activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthPolicy {
    /// No scanning: maximum throughput, garbage in → garbage out.
    #[default]
    Off,
    /// Scan layer outputs every frame and record faults, but keep serving
    /// the faulty lane (useful for observability without behaviour change).
    Check,
    /// Scan layer outputs every frame and retire a faulty lane immediately:
    /// its faulty frame produces no logits, its remaining frames are
    /// dropped, and the surviving lanes stay bit-identical to serial.
    Quarantine,
}

/// The saturation threshold of the health scan: the largest finite IEEE
/// binary16 value. The deployed GPU datapath is f16, so any activation
/// beyond this magnitude has already left the representable range of the
/// shipped numerics even if the f32 host value is still finite.
pub const SATURATION_LIMIT: f32 = 65504.0;

/// Parses an `RTM_HEALTH` value (or a `--health` CLI flag). Recognized:
/// `off`, `check`, `quarantine` (case-insensitive).
pub fn parse_policy(s: &str) -> Option<HealthPolicy> {
    match s.to_ascii_lowercase().as_str() {
        "off" | "none" => Some(HealthPolicy::Off),
        "check" => Some(HealthPolicy::Check),
        "quarantine" => Some(HealthPolicy::Quarantine),
        _ => None,
    }
}

/// The deployment-side default policy: `RTM_HEALTH` if set and parseable,
/// otherwise [`HealthPolicy::Off`]. Deliberately lenient — a typo in a
/// deployment environment degrades to the safe default rather than
/// aborting; use [`crate::env::health_policy`] to surface the typo.
pub fn policy_from_env() -> HealthPolicy {
    crate::env::health_policy()
        .ok()
        .flatten()
        .unwrap_or_default()
}

impl fmt::Display for HealthPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthPolicy::Off => write!(f, "off"),
            HealthPolicy::Check => write!(f, "check"),
            HealthPolicy::Quarantine => write!(f, "quarantine"),
        }
    }
}

impl HealthPolicy {
    /// Whether this policy scans activations at all.
    pub fn scans(&self) -> bool {
        !matches!(self, HealthPolicy::Off)
    }
}

/// The fault classes the health scan distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericFault {
    /// A NaN sample (poisons everything it touches).
    NaN,
    /// An infinite sample (overflowed arithmetic).
    Inf,
    /// Finite but beyond [`SATURATION_LIMIT`]: out of the shipped f16
    /// datapath's range.
    Saturated,
}

impl fmt::Display for NumericFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericFault::NaN => write!(f, "NaN"),
            NumericFault::Inf => write!(f, "Inf"),
            NumericFault::Saturated => write!(f, "saturated"),
        }
    }
}

/// Classifies one sample; `None` means healthy.
#[inline]
pub fn classify(v: f32) -> Option<NumericFault> {
    if v.is_nan() {
        Some(NumericFault::NaN)
    } else if v.is_infinite() {
        Some(NumericFault::Inf)
    } else if v.abs() > SATURATION_LIMIT {
        Some(NumericFault::Saturated)
    } else {
        None
    }
}

/// Scans a buffer serially, returning the first fault found.
pub fn scan(buf: &[f32]) -> Option<NumericFault> {
    buf.iter().copied().find_map(classify)
}

/// Scans lane `lane` of a lane-major `[rows × width]` buffer, returning the
/// first fault in that lane. Other lanes are not read — the scan itself
/// respects lane isolation.
///
/// # Panics
///
/// Panics if `lane >= width` (a scheduler bug, not an input fault).
pub fn scan_lane(buf: &[f32], width: usize, lane: usize) -> Option<NumericFault> {
    assert!(lane < width, "scan_lane: lane {lane} out of {width}");
    buf[lane..]
        .iter()
        .step_by(width)
        .copied()
        .find_map(classify)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_distinguishes_fault_classes() {
        assert_eq!(classify(0.0), None);
        assert_eq!(classify(-65504.0), None);
        assert_eq!(classify(65504.0), None);
        assert_eq!(classify(f32::NAN), Some(NumericFault::NaN));
        assert_eq!(classify(f32::INFINITY), Some(NumericFault::Inf));
        assert_eq!(classify(f32::NEG_INFINITY), Some(NumericFault::Inf));
        assert_eq!(classify(65505.0), Some(NumericFault::Saturated));
        assert_eq!(classify(-1.0e6), Some(NumericFault::Saturated));
    }

    #[test]
    fn scan_finds_first_fault() {
        assert_eq!(scan(&[1.0, 2.0, 3.0]), None);
        assert_eq!(scan(&[]), None);
        assert_eq!(
            scan(&[1.0, f32::INFINITY, f32::NAN]),
            Some(NumericFault::Inf)
        );
    }

    #[test]
    fn scan_lane_isolates_lanes() {
        // 3 rows × 4 lanes, NaN only in lane 2.
        let mut buf = vec![0.5f32; 12];
        buf[4 + 2] = f32::NAN;
        for lane in 0..4 {
            let expect = if lane == 2 {
                Some(NumericFault::NaN)
            } else {
                None
            };
            assert_eq!(scan_lane(&buf, 4, lane), expect, "lane {lane}");
        }
    }

    #[test]
    fn policy_parses_and_displays() {
        assert_eq!(parse_policy("off"), Some(HealthPolicy::Off));
        assert_eq!(parse_policy("CHECK"), Some(HealthPolicy::Check));
        assert_eq!(parse_policy("quarantine"), Some(HealthPolicy::Quarantine));
        assert_eq!(parse_policy("nope"), None);
        assert_eq!(HealthPolicy::Quarantine.to_string(), "quarantine");
        assert_eq!(HealthPolicy::default(), HealthPolicy::Off);
        assert!(!HealthPolicy::Off.scans());
        assert!(HealthPolicy::Check.scans());
        assert!(HealthPolicy::Quarantine.scans());
    }

    #[test]
    #[should_panic(expected = "scan_lane")]
    fn scan_lane_rejects_out_of_range_lane() {
        scan_lane(&[0.0; 4], 2, 2);
    }
}
