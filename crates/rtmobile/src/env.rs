//! The single parse point for `RTM_*` environment variables.
//!
//! Before this module, each variable was read wherever it happened to be
//! consumed — `RTM_SIMD` in the tensor crate, `RTM_HEALTH` in
//! [`crate::health`], `RTM_FUZZ_ITERS` in the fault-injection harness —
//! each with its own ad-hoc "unparseable means default" behaviour. The
//! accessors here parse each variable exactly once per call with a shared
//! convention: unset is `Ok(None)`, a parseable value is `Ok(Some(v))`,
//! and a set-but-invalid value is a typed [`EnvError`] naming the variable,
//! the offending value and the accepted grammar. Callers that want the old
//! lenient behaviour (a deployment default that shrugs off typos) spell it
//! explicitly as `.ok().flatten()`.
//!
//! [`crate::RuntimeConfig::from_env`] pulls all the runtime knobs through
//! these accessors in one shot.

pub use rtm_trace::env::EnvError;

use crate::health::HealthPolicy;
use rtm_tensor::simd::SimdPolicy;
use rtm_trace::TraceConfig;

/// `RTM_SIMD`: the kernel dispatch policy.
///
/// # Errors
///
/// [`EnvError`] if the variable is set to something
/// [`rtm_tensor::simd::parse_policy`] rejects.
pub fn simd_policy() -> Result<Option<SimdPolicy>, EnvError> {
    rtm_trace::env::parsed(
        "RTM_SIMD",
        "auto, off, scalar, u1, u4, u8 or vector",
        rtm_tensor::simd::parse_policy,
    )
}

/// `RTM_HEALTH`: the numerical-health policy.
///
/// # Errors
///
/// [`EnvError`] if the variable is set to something
/// [`crate::health::parse_policy`] rejects.
pub fn health_policy() -> Result<Option<HealthPolicy>, EnvError> {
    rtm_trace::env::parsed(
        "RTM_HEALTH",
        "off, check or quarantine",
        crate::health::parse_policy,
    )
}

/// `RTM_TRACE`: the observability switch.
///
/// # Errors
///
/// [`EnvError`] if the variable is set to something
/// [`rtm_trace::parse_config`] rejects.
pub fn trace_config() -> Result<Option<TraceConfig>, EnvError> {
    rtm_trace::env::parsed(
        "RTM_TRACE",
        "on, 1, true, off, 0 or false",
        rtm_trace::parse_config,
    )
}

/// `RTM_PRECISION`: the weight storage precision of the compiled pipeline.
///
/// # Errors
///
/// [`EnvError`] if the variable is set to something
/// [`crate::config::PrecisionChoice::parse`] rejects.
pub fn precision_choice() -> Result<Option<crate::config::PrecisionChoice>, EnvError> {
    rtm_trace::env::parsed(
        "RTM_PRECISION",
        "f32, f16, int8 or auto",
        crate::config::PrecisionChoice::parse,
    )
}

/// `RTM_FORMAT`: the sparse weight storage format of the compiled
/// pipeline.
///
/// # Errors
///
/// [`EnvError`] if the variable is set to something
/// [`crate::config::FormatChoice::parse`] rejects.
pub fn format_choice() -> Result<Option<crate::config::FormatChoice>, EnvError> {
    rtm_trace::env::parsed(
        "RTM_FORMAT",
        "bspc, csr, bbs, csb or auto",
        crate::config::FormatChoice::parse,
    )
}

/// `RTM_DECODER`: the utterance decoder applied to the classifier's frame
/// logits.
///
/// # Errors
///
/// [`EnvError`] if the variable is set to something
/// [`crate::config::DecoderChoice::parse`] rejects (including
/// `ctc-beam:0` and malformed beam widths).
pub fn decoder_choice() -> Result<Option<crate::config::DecoderChoice>, EnvError> {
    rtm_trace::env::parsed(
        "RTM_DECODER",
        "argmax, viterbi, ctc-greedy or ctc-beam:N",
        crate::config::DecoderChoice::parse,
    )
}

/// `RTM_RELOAD`: hot-reload switch of `rtm serve`. `off`/`false` disables
/// watching (the outer `Ok(Some(None))`), `on`/`true` enables it at the
/// default poll interval, and a bare integer enables it with that poll
/// interval in milliseconds.
///
/// # Errors
///
/// [`EnvError`] if the variable is set to anything else.
pub fn reload_poll_ms() -> Result<Option<Option<u64>>, EnvError> {
    rtm_trace::env::parsed(
        "RTM_RELOAD",
        "on, off or a poll interval in milliseconds",
        |s| match s {
            "off" | "false" => Some(None),
            "on" | "true" => Some(Some(crate::serve::ReloadConfig::default().poll_ms)),
            other => other.parse::<u64>().ok().map(Some),
        },
    )
}

/// `RTM_FUZZ_ITERS`: iteration budget of the fault-injection harness.
///
/// # Errors
///
/// [`EnvError`] if the variable is set to something that is not a
/// non-negative integer.
pub fn fuzz_iters() -> Result<Option<usize>, EnvError> {
    rtm_trace::env::parsed("RTM_FUZZ_ITERS", "a non-negative integer", |s| {
        s.parse::<usize>().ok()
    })
}

#[cfg(test)]
mod tests {
    // The accessors are thin compositions over `rtm_trace::env::parsed`
    // (tested in rtm-trace) and each parser's own unit tests; exercising
    // them against real process environment variables from the default
    // multi-threaded test harness would race with the suites that set
    // RTM_SIMD / RTM_HEALTH. The env-sensitive behaviour is covered by the
    // dedicated single-binary integration tests (simd_policy,
    // trace_contract).

    #[test]
    fn env_error_reexport_is_the_trace_type() {
        let err: super::EnvError = rtm_trace::env::EnvError {
            var: "RTM_SIMD".to_string(),
            value: "warp".to_string(),
            expected: "auto, off, scalar, u1, u4, u8 or vector",
        };
        let msg = err.to_string();
        assert!(msg.contains("RTM_SIMD"), "{msg}");
        assert!(msg.contains("warp"), "{msg}");
    }
}
