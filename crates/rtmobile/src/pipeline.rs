//! The end-to-end RTMobile pipeline (paper Fig. 3).
//!
//! One [`RtMobile::run`] call executes the whole flow the paper describes:
//!
//! 1. generate the speech task and train the dense 2-layer GRU (baseline
//!    PER — Table I's "w/o pruning" row);
//! 2. run BSP: ADMM-driven column-block pruning, then row pruning, then
//!    masked fine-tuning (pruned PER and achieved compression rate);
//! 3. compile the pruned network to BSPC with matrix reorder at the
//!    resolved storage precision (f32, f16, int8 or per-layer `auto`
//!    selection from measured kernel costs, guarded by a PER-degradation
//!    bound), and re-score the PER through the *compiled* path — the
//!    accuracy actually shipped to the device;
//! 4. price one inference frame of the paper-scale workload (hidden 1024)
//!    at the same compression on the simulated Adreno-640 GPU and
//!    Kryo-485 CPU.
//!
//! The builder exposes every knob with laptop-scale defaults.

use crate::config::{FormatChoice, PrecisionChoice, RuntimeConfig};
use crate::deploy::{CompiledNetwork, RuntimeFormat, RuntimePrecision, TunerCost};
use crate::report::{AccuracyReport, DecodeStats, PerformanceReport, PipelineReport};
use crate::serve::ServeStats;
use rtm_compiler::plan::{ExecutionPlan, StorageFormat};
use rtm_pruning::admm::AdmmConfig;
use rtm_pruning::bsp::{BspConfig, BspPruner};
use rtm_pruning::schedule::CompressionTarget;
use rtm_sim::{GruWorkload, InferenceSim};
use rtm_speech::corpus::CorpusConfig;
use rtm_speech::per::PerReport;
use rtm_speech::task::SpeechTask;

/// Builder-configured end-to-end pipeline.
#[derive(Debug, Clone)]
pub struct RtMobile {
    corpus: CorpusConfig,
    hidden: usize,
    dense_epochs: usize,
    dense_lr: f32,
    target: CompressionTarget,
    stripes: usize,
    blocks: usize,
    admm: AdmmConfig,
    seed: u64,
    sim_hidden: usize,
    runtime: RuntimeConfig,
    precision_guard: f64,
}

impl RtMobile {
    /// Starts a builder with laptop-scale defaults.
    pub fn builder() -> RtMobile {
        RtMobile {
            corpus: CorpusConfig::default_scaled(),
            hidden: 48,
            dense_epochs: 15,
            dense_lr: 8e-3,
            target: CompressionTarget::new(10.0, 1.0),
            stripes: 4,
            blocks: 4,
            admm: AdmmConfig {
                rho: 2.0,
                admm_iterations: 2,
                epochs_per_iteration: 4,
                finetune_epochs: 8,
                lr: 4e-3,
                clip: Some(rtm_rnn::GradClip::new(5.0)),
            },
            seed: 1,
            sim_hidden: 1024,
            runtime: RuntimeConfig::default(),
            precision_guard: 2.0,
        }
    }

    /// Overrides the corpus configuration.
    pub fn corpus(mut self, cfg: CorpusConfig) -> RtMobile {
        self.corpus = cfg;
        self
    }

    /// Hidden width of the trained GRU (per layer).
    pub fn hidden(mut self, hidden: usize) -> RtMobile {
        self.hidden = hidden;
        self
    }

    /// Dense pre-training epochs and learning rate.
    pub fn dense_training(mut self, epochs: usize, lr: f32) -> RtMobile {
        self.dense_epochs = epochs;
        self.dense_lr = lr;
        self
    }

    /// The `(column, row)` compression target.
    ///
    /// # Panics
    ///
    /// Panics if either rate is below 1.
    pub fn compression(mut self, col_rate: f64, row_rate: f64) -> RtMobile {
        self.target = CompressionTarget::new(col_rate, row_rate);
        self
    }

    /// The BSP partition (`Numr`, `Numc`).
    pub fn partition(mut self, stripes: usize, blocks: usize) -> RtMobile {
        self.stripes = stripes;
        self.blocks = blocks;
        self
    }

    /// ADMM hyper-parameters.
    pub fn admm(mut self, cfg: AdmmConfig) -> RtMobile {
        self.admm = cfg;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> RtMobile {
        self.seed = seed;
        self
    }

    /// Hidden width of the *simulated* paper-scale workload (default 1024).
    pub fn sim_hidden(mut self, hidden: usize) -> RtMobile {
        self.sim_hidden = hidden;
        self
    }

    /// Replaces the whole [`RuntimeConfig`] at once — the preferred entry
    /// point for callers that already assembled one (e.g. the `rtm` CLI or
    /// [`RuntimeConfig::from_env`]). The per-knob methods below
    /// ([`RtMobile::threads`], [`RtMobile::batch`], [`RtMobile::simd`],
    /// [`RtMobile::health`], [`RtMobile::trace`]) are thin wrappers over
    /// the same struct.
    pub fn runtime(mut self, runtime: RuntimeConfig) -> RtMobile {
        self.runtime = runtime;
        self
    }

    /// The currently configured [`RuntimeConfig`].
    pub fn runtime_config(&self) -> &RuntimeConfig {
        &self.runtime
    }

    /// Worker threads for the compiled runtime's inference pass (default 1,
    /// i.e. serial). The parallel path is bit-identical to serial, so this
    /// only changes wall-clock, never any reported accuracy number.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> RtMobile {
        self.runtime = self.runtime.with_threads(threads);
        self
    }

    /// Concurrent inference lanes for the compiled runtime's scoring pass
    /// (default 1, i.e. one utterance at a time). With `batch > 1` the
    /// test utterances are scored through a [`crate::deploy::BatchedSession`]
    /// that carries up to `batch` streams per weight pass. The batched path
    /// is bit-identical to the serial per-utterance forward, so — like
    /// [`RtMobile::threads`] — this only changes wall-clock, never any
    /// reported accuracy number.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn batch(mut self, batch: usize) -> RtMobile {
        self.runtime = self.runtime.with_batch(batch);
        self
    }

    /// Kernel dispatch policy for every tensor/SpMV kernel the run touches
    /// (process-global, see [`rtm_tensor::simd::set_policy`]): `Auto` picks
    /// the widest realization the host supports, `Fixed` pins one — e.g.
    /// force-scalar for a bit-exactness audit. When this knob is not set,
    /// the `RTM_SIMD` environment variable (read once per process) decides.
    /// Scalar and vector paths differ only in float summation order, never
    /// in any reported accuracy metric's meaning.
    pub fn simd(mut self, policy: rtm_tensor::simd::SimdPolicy) -> RtMobile {
        self.runtime = self.runtime.with_simd(policy);
        self
    }

    /// Numerical-health policy of the batched scoring pass (see
    /// [`crate::health::HealthPolicy`]): `Off` trusts the data, `Check`
    /// records faults, `Quarantine` retires a faulty lane while every other
    /// lane stays bit-identical to serial. When this knob is not set, the
    /// `RTM_HEALTH` environment variable decides (default `Off`). The
    /// synthetic corpus is finite, so on a healthy run this never changes
    /// any reported number — it only adds the scan.
    pub fn health(mut self, policy: crate::health::HealthPolicy) -> RtMobile {
        self.runtime = self.runtime.with_health(policy);
        self
    }

    /// Weight storage precision of the compiled runtime (see
    /// [`PrecisionChoice`]): a fixed `f32`/`f16`/`int8`, or `auto` to let
    /// the tuner measure the three kernel precisions per layer shape and
    /// pick the fastest, guarded by [`RtMobile::precision_guard`]. When
    /// this knob is not set, the `RTM_PRECISION` environment variable
    /// decides (default `f16`, the paper's mobile-GPU datapath).
    pub fn precision(mut self, choice: PrecisionChoice) -> RtMobile {
        self.runtime = self.runtime.with_precision(choice);
        self
    }

    /// The accuracy guard of the `auto` precision and format selectors: if
    /// a measured-fastest per-layer mix degrades PER by more than this many
    /// percentage points versus the reference compile of the same pruned
    /// network (all-f32 for the precision axis, all-BSPC for the format
    /// axis), the pipeline ships the reference compile instead (default
    /// 2.0). Ignored for fixed choices.
    pub fn precision_guard(mut self, points: f64) -> RtMobile {
        self.precision_guard = points;
        self
    }

    /// Sparse weight storage format of the compiled runtime (see
    /// [`FormatChoice`]): a fixed `bspc`/`csr`/`bbs`/`csb`, or `auto` to
    /// let the tuner time the four formats against each layer's actual
    /// pruned weights and pick the fastest per layer, guarded by
    /// [`RtMobile::precision_guard`]. When this knob is not set, the
    /// `RTM_FORMAT` environment variable decides (default `bspc`, the
    /// paper's block-based structured pruning format).
    pub fn format(mut self, choice: FormatChoice) -> RtMobile {
        self.runtime = self.runtime.with_format(choice);
        self
    }

    /// Observability switch (see [`rtm_trace::TraceConfig`]): `on` records
    /// kernel counters, stage spans and serving histograms into the
    /// process-global [`rtm_trace`] registry. When this knob is not set,
    /// the `RTM_TRACE` environment variable decides (default off). Tracing
    /// never changes any computed number — outputs stay bit-identical.
    pub fn trace(mut self, trace: rtm_trace::TraceConfig) -> RtMobile {
        self.runtime = self.runtime.with_trace(trace);
        self
    }

    /// Executes the pipeline.
    ///
    /// # Panics
    ///
    /// Panics on internal shape errors (a bug) or invalid configuration.
    pub fn run(self) -> PipelineReport {
        self.run_keeping_model().0
    }

    /// Executes the pipeline and additionally returns the pruned network
    /// and its compiled runtime at the resolved precision (e.g. for saving
    /// with [`crate::model_file`]).
    ///
    /// # Panics
    ///
    /// Panics on internal shape errors (a bug) or invalid configuration.
    pub fn run_keeping_model(self) -> (PipelineReport, rtm_rnn::GruNetwork, CompiledNetwork) {
        self.runtime.apply_globals();
        let pipeline_span = rtm_trace::span("pipeline");

        // 1. Task + dense training.
        let train_span = rtm_trace::span("pipeline.train");
        let task = SpeechTask::new(&self.corpus, self.seed);
        let mut net = task.new_network(self.hidden, self.seed.wrapping_add(1));
        task.train(&mut net, self.dense_epochs, self.dense_lr);
        let baseline = task.evaluate(&net);
        drop(train_span);

        // 2. BSP pruning with ADMM retraining.
        let prune_span = rtm_trace::span("pipeline.prune");
        let (pruned, bsp_report) = if self.target.is_dense() {
            (baseline, None)
        } else {
            let pruner = BspPruner::new(BspConfig {
                num_stripes: self.stripes,
                num_blocks: self.blocks,
                target: self.target,
                admm: self.admm,
            });
            let report = pruner.prune(&mut net, &task.training_data());
            (task.evaluate(&net), Some(report))
        };
        drop(prune_span);

        // 3. Compile to the runtime at the resolved precision and storage
        //    format, and score the compiled path.
        let compile_span = rtm_trace::span("pipeline.compile");
        let choice = self.runtime.resolved_precision();
        let format_choice = self.runtime.resolved_format();
        // Precision axis: a fixed choice compiles uniformly; `auto` times
        // the f32/f16/int8 SpMV kernels at each layer's gate shape
        // (inflated to at least 256 so timing noise does not dominate the
        // tiny laptop-scale widths) and keeps the fastest per layer.
        // Probe measurements recorded along the way ride with the shipped
        // model (`.rtm` v4 cost section), so a serving-side load reports
        // what the tuner saw without re-running the probe.
        let mut tuner_costs: Vec<TunerCost> = Vec::new();
        let (default_prec, per_layer_prec): (RuntimePrecision, Vec<RuntimePrecision>) = match choice
        {
            PrecisionChoice::Fixed(p) => (p, Vec::new()),
            PrecisionChoice::Auto => {
                let per_layer = net
                    .layers
                    .iter()
                    .enumerate()
                    .map(|(i, cell)| {
                        let costs = rtm_compiler::tuner::measure_precision_costs(
                            cell.hidden_dim().max(256),
                            cell.input_dim().max(256),
                            self.stripes,
                            self.blocks,
                            4,
                        );
                        let storage = rtm_compiler::tuner::select_precision(&costs);
                        if let Some(c) = costs.iter().find(|c| c.precision == storage) {
                            tuner_costs.push(TunerCost {
                                layer: i,
                                format: RuntimeFormat::Bspc,
                                precision: RuntimePrecision::from_storage(storage),
                                micros: (c.seconds * 1e6) as f32,
                            });
                        }
                        RuntimePrecision::from_storage(storage)
                    })
                    .collect();
                (RuntimePrecision::F32, per_layer)
            }
        };
        // Format axis: a fixed choice compiles uniformly; `auto` encodes
        // each layer's actual pruned recurrent gate in all four formats at
        // the layer's resolved precision, times a real SpMV (and batched
        // SpMM when `batch > 1`) sweep, and keeps the fastest per layer.
        let format_candidates = [
            StorageFormat::Bspc,
            StorageFormat::Csr,
            StorageFormat::Bbs,
            StorageFormat::Csb,
        ];
        let (default_format, per_layer_format): (RuntimeFormat, Vec<RuntimeFormat>) =
            match format_choice {
                FormatChoice::Fixed(f) => (f, Vec::new()),
                FormatChoice::Auto => {
                    let per_layer = net
                        .layers
                        .iter()
                        .enumerate()
                        .map(|(i, cell)| {
                            let prec = per_layer_prec.get(i).copied().unwrap_or(default_prec);
                            let costs = rtm_compiler::tuner::measure_format_costs(
                                &cell.u_z,
                                &format_candidates,
                                prec.storage(),
                                self.stripes,
                                self.blocks,
                                self.runtime.batch,
                                4,
                            );
                            let storage = rtm_compiler::tuner::select_format(&costs);
                            let format =
                                RuntimeFormat::from_storage(storage).unwrap_or(RuntimeFormat::Bspc);
                            if let Some(c) = costs.iter().find(|c| c.format == storage) {
                                tuner_costs.push(TunerCost {
                                    layer: i,
                                    format,
                                    precision: RuntimePrecision::from_storage(c.precision),
                                    micros: (c.seconds * 1e6) as f32,
                                });
                            }
                            format
                        })
                        .collect();
                    (RuntimeFormat::Bspc, per_layer)
                }
            };
        let mut compiled = CompiledNetwork::compile_with_formats(
            &net,
            self.stripes,
            self.blocks,
            &per_layer_prec,
            default_prec,
            &per_layer_format,
            default_format,
        )
        .expect("partition validated by BSP config");
        let exec = rtm_exec::Executor::new(self.runtime.threads);
        drop(compile_span);

        let deploy_span = rtm_trace::span("pipeline.deploy");
        let health = self.runtime.resolved_health();
        let decoder_choice = self.runtime.resolved_decoder();
        let score = |compiled: &CompiledNetwork| -> (PerReport, Option<ServeStats>) {
            let mut report = PerReport::default();
            if self.runtime.batch > 1 {
                // Multi-stream scoring: up to `batch` utterances share
                // each weight pass. Bit-identical to the serial loop
                // below (the per-lane decoder rides on the side and never
                // touches the logits).
                let utterances = task.test_utterances();
                let streams: Vec<&[Vec<f32>]> =
                    utterances.iter().map(|u| u.frames.as_slice()).collect();
                let mut session =
                    crate::deploy::BatchedSession::new(compiled, &exec, self.runtime.batch)
                        .with_health(health)
                        .with_admission(self.runtime.admission)
                        .with_decoder(decoder_choice);
                for (u, preds) in utterances.iter().zip(session.predict(&streams)) {
                    report.add(&preds, &u.labels, &u.phones);
                }
                (report, Some(session.stats()))
            } else {
                for u in task.test_utterances() {
                    let preds = compiled.predict_with(&exec, &u.frames);
                    report.add(&preds, &u.labels, &u.phones);
                }
                (report, None)
            }
        };
        let (mut compiled_report, mut serve) = score(&compiled);
        let mut precision_guard_tripped = false;
        let mut format_guard_tripped = false;
        // Accuracy guard of the auto precision selector: if the
        // measured-fastest per-layer mix degrades PER beyond the bound
        // versus an all-f32 compile of the same pruned network (at the same
        // per-layer formats), ship the f32 compile.
        if choice == PrecisionChoice::Auto
            && compiled
                .layer_precisions()
                .iter()
                .any(|p| *p != RuntimePrecision::F32)
        {
            let f32_compiled = CompiledNetwork::compile_with_formats(
                &net,
                self.stripes,
                self.blocks,
                &[],
                RuntimePrecision::F32,
                &per_layer_format,
                default_format,
            )
            .expect("partition validated by BSP config");
            let (f32_report, f32_serve) = score(&f32_compiled);
            if compiled_report.per_percent() - f32_report.per_percent() > self.precision_guard {
                precision_guard_tripped = true;
                compiled = f32_compiled;
                compiled_report = f32_report;
                serve = f32_serve;
            }
        }
        // Accuracy guard of the auto format selector: every format stores
        // the same quantized values, so this should never fire — but the
        // contract is measured, not assumed. If the per-layer format mix
        // degrades PER beyond the bound versus an all-BSPC compile at the
        // same per-layer precisions, ship the BSPC compile.
        if format_choice == FormatChoice::Auto
            && compiled
                .layer_formats()
                .iter()
                .any(|f| *f != RuntimeFormat::Bspc)
        {
            let layer_precs = compiled.layer_precisions();
            let bspc_compiled = CompiledNetwork::compile_with_formats(
                &net,
                self.stripes,
                self.blocks,
                &layer_precs,
                default_prec,
                &[],
                RuntimeFormat::Bspc,
            )
            .expect("partition validated by BSP config");
            let (bspc_report, bspc_serve) = score(&bspc_compiled);
            if compiled_report.per_percent() - bspc_report.per_percent() > self.precision_guard {
                format_guard_tripped = true;
                compiled = bspc_compiled;
                compiled_report = bspc_report;
                serve = bspc_serve;
            }
        }
        // Whichever compile the guards shipped carries the probe record.
        compiled = compiled.with_tuner_costs(tuner_costs);
        drop(deploy_span);

        // Decode scoring: stream the resolved decoder over every test
        // utterance and price it as RTF (wall time over audio time at the
        // 10 ms frame hop). The serial per-utterance loop yields the
        // per-stream numbers and latency-to-first-symbol; the batched
        // session above already measured the per-batch RTF.
        let decode_span = rtm_trace::span("pipeline.decode");
        let decode = {
            let strip = |s: &[usize]| -> Vec<usize> {
                s.iter()
                    .copied()
                    .filter(|&p| p != rtm_speech::phones::SILENCE)
                    .collect()
            };
            let utterances = task.test_utterances();
            let mut symbols = 0usize;
            let mut endpoints = 0usize;
            let mut errors = 0usize;
            let mut ref_len = 0usize;
            let mut rtf_sum = 0.0f64;
            let mut rtf_max = 0.0f64;
            let mut first_ms_sum = 0.0f64;
            let mut first_count = 0usize;
            let mut wall_total_us = 0.0f64;
            let mut audio_total_us = 0.0f64;
            for u in &utterances {
                let t0 = std::time::Instant::now();
                let logits = compiled.forward_with(&exec, &u.frames);
                let classes = logits.first().map_or(1, Vec::len);
                let mut decoder = decoder_choice.build(classes);
                let mut first_symbol_frame: Option<usize> = None;
                let mut in_endpoint = false;
                for (i, row) in logits.iter().enumerate() {
                    if let Some(h) = decoder.push_frame(row) {
                        if first_symbol_frame.is_none() && !h.symbols.is_empty() {
                            first_symbol_frame = Some(i);
                        }
                        if h.endpoint && !in_endpoint {
                            endpoints += 1;
                        }
                        in_endpoint = h.endpoint;
                    }
                }
                let hyp = decoder.finish();
                let wall_us = t0.elapsed().as_secs_f64() * 1e6;
                let audio_us = u.frames.len() as f64 * rtm_sim::realtime::FRAME_HOP_US;
                if audio_us > 0.0 {
                    let rtf = wall_us / audio_us;
                    rtf_sum += rtf;
                    rtf_max = rtf_max.max(rtf);
                    rtm_trace::record(rtm_trace::key::RTF_STREAM, rtf * 1000.0);
                }
                wall_total_us += wall_us;
                audio_total_us += audio_us;
                if let Some(i) = first_symbol_frame {
                    first_ms_sum += (i + 1) as f64 * rtm_sim::realtime::FRAME_HOP_US / 1e3;
                    first_count += 1;
                }
                symbols += hyp.symbols.len();
                let hyp_sym = strip(&hyp.symbols);
                let ref_sym = strip(&u.phones);
                errors += rtm_speech::per::edit_distance(&hyp_sym, &ref_sym);
                ref_len += ref_sym.len();
            }
            let n = utterances.len().max(1) as f64;
            DecodeStats {
                decoder: decoder_choice.tag(),
                beam: decoder_choice.beam_width(),
                utterances: utterances.len(),
                symbols,
                endpoints,
                decoded_per: if ref_len > 0 {
                    100.0 * errors as f64 / ref_len as f64
                } else {
                    0.0
                },
                rtf_stream_mean: rtf_sum / n,
                rtf_stream_max: rtf_max,
                rtf_batch: match &serve {
                    Some(s) => s.batch_rtf(),
                    None if audio_total_us > 0.0 => wall_total_us / audio_total_us,
                    None => 0.0,
                },
                first_symbol_ms_mean: if first_count > 0 {
                    first_ms_sum / first_count as f64
                } else {
                    0.0
                },
            }
        };
        drop(decode_span);

        // 4. Paper-scale performance simulation.
        let sim_span = rtm_trace::span("pipeline.simulate");
        let workload = GruWorkload::with_bsp_pattern(
            40,
            self.sim_hidden,
            2,
            self.target.col_rate,
            self.target.row_rate,
            8,
            8,
            self.seed,
        );
        let sim = InferenceSim::new();
        let (gpu_plan, cpu_plan) = if self.target.is_dense() {
            (
                ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations(),
                ExecutionPlan::cpu_default(StorageFormat::Dense).without_optimizations(),
            )
        } else {
            (
                ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8),
                ExecutionPlan::cpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8),
            )
        };
        let gpu = sim.run_frame(&workload, &gpu_plan);
        let cpu = sim.run_frame(&workload, &cpu_plan);
        drop(sim_span);

        let (achieved_rate, kept, total) = match &bsp_report {
            Some(r) => (r.achieved_rate, r.kept_params, r.total_params),
            None => {
                let total = net.total_prunable_params();
                (1.0, total, total)
            }
        };

        let layer_precisions = compiled.layer_precisions();
        let count = |p: RuntimePrecision| layer_precisions.iter().filter(|&&q| q == p).count();
        let layer_formats = compiled.layer_formats();
        let count_fmt = |f: RuntimeFormat| layer_formats.iter().filter(|&&g| g == f).count();
        let report = PipelineReport {
            accuracy: AccuracyReport {
                baseline_per: baseline.per_percent(),
                pruned_per: pruned.per_percent(),
                compiled_per: compiled_report.per_percent(),
                baseline_frame_accuracy: baseline.frame_accuracy(),
                pruned_frame_accuracy: pruned.frame_accuracy(),
                achieved_rate,
                kept_params: kept,
                total_params: total,
            },
            performance: PerformanceReport {
                target: self.target,
                workload_rate: workload.compression_rate(),
                gop: gpu.gop,
                gpu,
                cpu,
                precision: choice.tag(),
                layers_f32: count(RuntimePrecision::F32),
                layers_f16: count(RuntimePrecision::F16),
                layers_int8: count(RuntimePrecision::Int8),
                format: format_choice.tag(),
                layers_bspc: count_fmt(RuntimeFormat::Bspc),
                layers_csr: count_fmt(RuntimeFormat::Csr),
                layers_bbs: count_fmt(RuntimeFormat::Bbs),
                layers_csb: count_fmt(RuntimeFormat::Csb),
                storage_bytes: compiled.storage_bytes(),
                precision_guard_tripped,
                format_guard_tripped,
            },
            decode: Some(decode),
            serve,
        };
        drop(pipeline_span);
        (report, net, compiled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RtMobile {
        RtMobile::builder()
            .corpus(CorpusConfig {
                speakers: 8,
                sentences_per_speaker: 2,
                phones_per_sentence: 4,
                ..CorpusConfig::tiny()
            })
            .hidden(16)
            .dense_training(6, 0.01)
            .sim_hidden(128)
            .admm(AdmmConfig {
                rho: 2.0,
                admm_iterations: 1,
                epochs_per_iteration: 2,
                finetune_epochs: 3,
                lr: 5e-3,
                clip: Some(rtm_rnn::GradClip::new(5.0)),
            })
    }

    #[test]
    fn dense_pipeline_runs() {
        let report = quick().compression(1.0, 1.0).seed(5).run();
        assert_eq!(report.accuracy.achieved_rate, 1.0);
        assert_eq!(report.accuracy.baseline_per, report.accuracy.pruned_per);
        assert!(report.performance.gpu.time_us > 0.0);
        assert!(report.performance.cpu.time_us > report.performance.gpu.time_us);
        assert!(!report.render().is_empty());
    }

    #[test]
    fn batched_scoring_reports_identical_accuracy() {
        // The multi-stream scorer is bit-identical to the per-utterance
        // loop, so every accuracy number must match exactly.
        let serial = quick().compression(1.0, 1.0).seed(5).run();
        let batched = quick()
            .compression(1.0, 1.0)
            .seed(5)
            .batch(5)
            .threads(2)
            .run();
        assert_eq!(serial.accuracy.compiled_per, batched.accuracy.compiled_per);
        assert_eq!(serial.accuracy.baseline_per, batched.accuracy.baseline_per);
    }

    #[test]
    fn fixed_precision_choice_flows_into_report() {
        let report = quick()
            .compression(1.0, 1.0)
            .seed(5)
            .precision(PrecisionChoice::Fixed(RuntimePrecision::Int8))
            .run();
        assert_eq!(report.performance.precision, "int8");
        assert_eq!(report.performance.layers_f32, 0);
        assert_eq!(report.performance.layers_f16, 0);
        assert_eq!(report.performance.layers_int8, 2);
        assert!(report.performance.storage_bytes > 0);
        // Weight-only int8 stays close to the dense-scored accuracy on
        // this easy task.
        let f32_run = quick()
            .compression(1.0, 1.0)
            .seed(5)
            .precision(PrecisionChoice::Fixed(RuntimePrecision::F32))
            .run();
        assert_eq!(f32_run.performance.precision, "f32");
        assert!(
            (report.accuracy.compiled_per - f32_run.accuracy.compiled_per).abs() < 15.0,
            "int8 {} f32 {}",
            report.accuracy.compiled_per,
            f32_run.accuracy.compiled_per
        );
        // int8 storage is strictly smaller than the f32 compile.
        assert!(report.performance.storage_bytes < f32_run.performance.storage_bytes);
    }

    #[test]
    fn pruned_pipeline_compresses_and_stays_reasonable() {
        let report = quick().compression(4.0, 1.0).seed(6).run();
        assert!(
            report.accuracy.achieved_rate > 2.5,
            "rate {}",
            report.accuracy.achieved_rate
        );
        assert!(report.accuracy.kept_params < report.accuracy.total_params);
        // Pruned PER should not be catastrophically worse than baseline on
        // this easy task.
        assert!(
            report.accuracy.pruned_per < report.accuracy.baseline_per + 40.0,
            "baseline {} pruned {}",
            report.accuracy.baseline_per,
            report.accuracy.pruned_per
        );
        // The compiled (default f16) path tracks the pruned accuracy.
        assert!(
            (report.accuracy.compiled_per - report.accuracy.pruned_per).abs() < 15.0,
            "pruned {} compiled {}",
            report.accuracy.pruned_per,
            report.accuracy.compiled_per
        );
        // Pruned inference is faster than the dense run.
        let dense = quick().compression(1.0, 1.0).seed(6).run();
        assert!(report.performance.gpu.time_us < dense.performance.gpu.time_us);
    }
}
