//! Pipeline reports with Table-I/Table-II style rendering.

use crate::serve::ServeStats;
use rtm_pruning::schedule::CompressionTarget;
use rtm_sim::FrameReport;
use std::fmt::Write as _;

/// The accuracy half of a pipeline run (Table I's columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Dense (unpruned) PER in percent.
    pub baseline_per: f64,
    /// PER after BSP pruning and fine-tuning.
    pub pruned_per: f64,
    /// PER of the compiled f16 runtime (what ships to the GPU).
    pub compiled_f16_per: f64,
    /// Dense frame accuracy.
    pub baseline_frame_accuracy: f64,
    /// Pruned frame accuracy.
    pub pruned_frame_accuracy: f64,
    /// Achieved overall compression rate.
    pub achieved_rate: f64,
    /// Surviving prunable parameters.
    pub kept_params: usize,
    /// Total prunable parameters.
    pub total_params: usize,
}

impl AccuracyReport {
    /// PER degradation in percentage points (Table I's "PER Degrad.").
    pub fn degradation(&self) -> f64 {
        self.pruned_per - self.baseline_per
    }
}

/// The performance half (Table II's columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformanceReport {
    /// The requested `(column, row)` target.
    pub target: CompressionTarget,
    /// Compression rate of the simulated paper-scale workload.
    pub workload_rate: f64,
    /// Giga-operations per frame.
    pub gop: f64,
    /// Simulated mobile-GPU frame report.
    pub gpu: FrameReport,
    /// Simulated mobile-CPU frame report.
    pub cpu: FrameReport,
    /// Compiled f16 model storage in bytes.
    pub storage_bytes_f16: usize,
}

/// Full result of one [`RtMobile`](crate::RtMobile) run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Accuracy results on the speech task.
    pub accuracy: AccuracyReport,
    /// Simulated performance results.
    pub performance: PerformanceReport,
    /// Serving counters of the batched scoring pass (`None` when scoring
    /// ran serially, i.e. `batch == 1`).
    pub serve: Option<ServeStats>,
}

impl PipelineReport {
    /// Renders a human-readable summary combining a Table I row and a
    /// Table II row.
    pub fn render(&self) -> String {
        let a = &self.accuracy;
        let p = &self.performance;
        let mut s = String::new();
        let _ = writeln!(s, "RTMobile pipeline report");
        let _ = writeln!(
            s,
            "  target: {}x cols x {}x rows (overall nominal {:.0}x)",
            p.target.col_rate,
            p.target.row_rate,
            p.target.nominal_overall()
        );
        let _ = writeln!(s, "  -- accuracy (synthetic TIMIT-like task) --");
        let _ = writeln!(
            s,
            "  PER: {:.2}% -> {:.2}% (degradation {:+.2} pts), f16 runtime {:.2}%",
            a.baseline_per,
            a.pruned_per,
            a.degradation(),
            a.compiled_f16_per
        );
        let _ = writeln!(
            s,
            "  params: {} / {} kept ({:.1}x compression)",
            a.kept_params, a.total_params, a.achieved_rate
        );
        let _ = writeln!(
            s,
            "  -- performance (simulated Snapdragon 855, paper-scale GRU) --"
        );
        let _ = writeln!(
            s,
            "  GPU: {:.1} us/frame, {:.1} GOP/s, {:.2}x ESE energy efficiency",
            p.gpu.time_us, p.gpu.gop_per_s, p.gpu.efficiency_vs_ese
        );
        let _ = writeln!(
            s,
            "  CPU: {:.1} us/frame, {:.1} GOP/s, {:.2}x ESE energy efficiency",
            p.cpu.time_us, p.cpu.gop_per_s, p.cpu.efficiency_vs_ese
        );
        let _ = writeln!(
            s,
            "  model storage (BSPC, f16): {:.1} KiB",
            p.storage_bytes_f16 as f64 / 1024.0
        );
        if let Some(v) = &self.serve {
            let _ = writeln!(
                s,
                "  serving: {} admitted, {} completed, {} shed, {} quarantined, \
                 {} deadline-missed over {} batched frames",
                v.admitted, v.completed, v.shed, v.quarantined, v.deadline_missed, v.frames
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_frame() -> FrameReport {
        FrameReport {
            time_us: 100.0,
            gop: 0.01,
            gop_per_s: 100.0,
            energy_uj: 107.0,
            efficiency_vs_ese: 31.7,
            kernels: 4,
            memory_bound_fraction: 1.0,
        }
    }

    fn dummy() -> PipelineReport {
        PipelineReport {
            accuracy: AccuracyReport {
                baseline_per: 12.0,
                pruned_per: 13.5,
                compiled_f16_per: 13.6,
                baseline_frame_accuracy: 0.9,
                pruned_frame_accuracy: 0.88,
                achieved_rate: 10.0,
                kept_params: 1000,
                total_params: 10000,
            },
            performance: PerformanceReport {
                target: CompressionTarget::new(10.0, 1.0),
                workload_rate: 9.7,
                gop: 0.058,
                gpu: dummy_frame(),
                cpu: dummy_frame(),
                storage_bytes_f16: 2048,
            },
            serve: None,
        }
    }

    #[test]
    fn degradation_is_difference() {
        let r = dummy();
        assert!((r.accuracy.degradation() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn render_contains_key_numbers() {
        let text = dummy().render();
        assert!(text.contains("12.00%"));
        assert!(text.contains("13.50%"));
        assert!(text.contains("+1.50"));
        assert!(text.contains("10.0x compression"));
        assert!(text.contains("31.70x ESE"));
        assert!(text.contains("2.0 KiB"));
        assert!(!text.contains("serving:"));
        let mut r = dummy();
        r.serve = Some(ServeStats {
            admitted: 5,
            shed: 2,
            quarantined: 1,
            deadline_missed: 0,
            frames: 40,
            completed: 4,
        });
        let text = r.render();
        assert!(text.contains("5 admitted"));
        assert!(text.contains("2 shed"));
        assert!(text.contains("1 quarantined"));
    }
}
