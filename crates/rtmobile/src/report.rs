//! Pipeline reports with Table-I/Table-II style rendering, and the shared
//! [`Report`] trait: one JSON-emission path for every structured result
//! the stack produces (pipeline runs, serving counters, streaming-sim
//! reports), built on the same hand-rolled [`rtm_trace::json`] helpers the
//! benchmark artifacts use.

use crate::serve::ServeStats;
use rtm_pruning::schedule::CompressionTarget;
use rtm_sim::streaming::{MultiStreamReport, ShedReport, StreamingReport};
use rtm_sim::FrameReport;
use rtm_trace::json::{json_row, JsonValue};
use std::fmt::Write as _;

/// The accuracy half of a pipeline run (Table I's columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Dense (unpruned) PER in percent.
    pub baseline_per: f64,
    /// PER after BSP pruning and fine-tuning.
    pub pruned_per: f64,
    /// PER of the compiled runtime at the deployed precision (what ships
    /// to the device).
    pub compiled_per: f64,
    /// Dense frame accuracy.
    pub baseline_frame_accuracy: f64,
    /// Pruned frame accuracy.
    pub pruned_frame_accuracy: f64,
    /// Achieved overall compression rate.
    pub achieved_rate: f64,
    /// Surviving prunable parameters.
    pub kept_params: usize,
    /// Total prunable parameters.
    pub total_params: usize,
}

impl AccuracyReport {
    /// PER degradation in percentage points (Table I's "PER Degrad.").
    pub fn degradation(&self) -> f64 {
        self.pruned_per - self.baseline_per
    }
}

/// The performance half (Table II's columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformanceReport {
    /// The requested `(column, row)` target.
    pub target: CompressionTarget,
    /// Compression rate of the simulated paper-scale workload.
    pub workload_rate: f64,
    /// Giga-operations per frame.
    pub gop: f64,
    /// Simulated mobile-GPU frame report.
    pub gpu: FrameReport,
    /// Simulated mobile-CPU frame report.
    pub cpu: FrameReport,
    /// The precision choice the run resolved to (`"f32"`, `"f16"`,
    /// `"int8"` or `"auto"`).
    pub precision: &'static str,
    /// Layers compiled at f32 storage.
    pub layers_f32: usize,
    /// Layers compiled at f16 storage.
    pub layers_f16: usize,
    /// Layers compiled at int8 storage.
    pub layers_int8: usize,
    /// The storage-format choice the run resolved to (`"bspc"`, `"csr"`,
    /// `"bbs"`, `"csb"` or `"auto"`).
    pub format: &'static str,
    /// Layers compiled to BSPC storage.
    pub layers_bspc: usize,
    /// Layers compiled to CSR storage.
    pub layers_csr: usize,
    /// Layers compiled to BBS storage.
    pub layers_bbs: usize,
    /// Layers compiled to CSB storage.
    pub layers_csb: usize,
    /// Compiled model storage in bytes at the deployed precisions and
    /// formats (sparse index structure plus values and scale metadata).
    pub storage_bytes: usize,
    /// `true` when the auto-precision PER guard rejected the
    /// measured-fastest mix and shipped the all-f32 compile instead.
    pub precision_guard_tripped: bool,
    /// `true` when the auto-format PER guard rejected the per-layer format
    /// mix and shipped the all-BSPC compile instead.
    pub format_guard_tripped: bool,
}

/// Utterance-decode results of a pipeline run: what the resolved
/// [`DecoderChoice`](crate::config::DecoderChoice) produced on the test
/// set, and the real-time factor (RTF = wall-time / audio-time, at the
/// 10 ms frame hop) it cost to produce it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeStats {
    /// Decoder family tag (`"argmax"`, `"viterbi"`, `"ctc-greedy"`,
    /// `"ctc-beam"`).
    pub decoder: &'static str,
    /// Beam width (0 for the non-beam decoders).
    pub beam: usize,
    /// Test utterances decoded.
    pub utterances: usize,
    /// Total decoded symbols.
    pub symbols: usize,
    /// Endpoint events the streaming decoders fired.
    pub endpoints: usize,
    /// Utterance-level PER of the decoded symbol sequences (edit distance
    /// against the reference phones, silence symbols dropped first).
    pub decoded_per: f64,
    /// Mean per-stream RTF: each utterance's decode+inference wall time
    /// over its audio time.
    pub rtf_stream_mean: f64,
    /// Worst per-stream RTF.
    pub rtf_stream_max: f64,
    /// Per-batch RTF: total wall time over total audio time of the scoring
    /// pass (equals the stream mean when scoring runs serially).
    pub rtf_batch: f64,
    /// Mean latency to the first decoded symbol, in milliseconds of audio
    /// consumed (frames × 10 ms hop); `0.0` when no utterance produced a
    /// streaming partial (e.g. the offline Viterbi decoder).
    pub first_symbol_ms_mean: f64,
}

impl DecodeStats {
    /// The full decoder label (`"ctc-beam:4"` style for beam decoders).
    pub fn label(&self) -> String {
        if self.beam > 0 {
            format!("{}:{}", self.decoder, self.beam)
        } else {
            self.decoder.to_string()
        }
    }
}

/// Full result of one [`RtMobile`](crate::RtMobile) run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Accuracy results on the speech task.
    pub accuracy: AccuracyReport,
    /// Simulated performance results.
    pub performance: PerformanceReport,
    /// Utterance decode + RTF results of the scoring pass (`None` when the
    /// run skipped decode scoring).
    pub decode: Option<DecodeStats>,
    /// Serving counters of the batched scoring pass (`None` when scoring
    /// ran serially, i.e. `batch == 1`).
    pub serve: Option<ServeStats>,
}

impl PipelineReport {
    /// Renders a human-readable summary combining a Table I row and a
    /// Table II row.
    pub fn render(&self) -> String {
        let a = &self.accuracy;
        let p = &self.performance;
        let mut s = String::new();
        let _ = writeln!(s, "RTMobile pipeline report");
        let _ = writeln!(
            s,
            "  target: {}x cols x {}x rows (overall nominal {:.0}x)",
            p.target.col_rate,
            p.target.row_rate,
            p.target.nominal_overall()
        );
        let _ = writeln!(s, "  -- accuracy (synthetic TIMIT-like task) --");
        let _ = writeln!(
            s,
            "  PER: {:.2}% -> {:.2}% (degradation {:+.2} pts), compiled runtime {:.2}%",
            a.baseline_per,
            a.pruned_per,
            a.degradation(),
            a.compiled_per
        );
        let _ = writeln!(
            s,
            "  params: {} / {} kept ({:.1}x compression)",
            a.kept_params, a.total_params, a.achieved_rate
        );
        let _ = writeln!(
            s,
            "  -- performance (simulated Snapdragon 855, paper-scale GRU) --"
        );
        let _ = writeln!(
            s,
            "  GPU: {:.1} us/frame, {:.1} GOP/s, {:.2}x ESE energy efficiency",
            p.gpu.time_us, p.gpu.gop_per_s, p.gpu.efficiency_vs_ese
        );
        let _ = writeln!(
            s,
            "  CPU: {:.1} us/frame, {:.1} GOP/s, {:.2}x ESE energy efficiency",
            p.cpu.time_us, p.cpu.gop_per_s, p.cpu.efficiency_vs_ese
        );
        let _ = writeln!(
            s,
            "  precision: {} ({} f32 / {} f16 / {} int8 layers)",
            p.precision, p.layers_f32, p.layers_f16, p.layers_int8
        );
        let _ = writeln!(
            s,
            "  format: {} ({} bspc / {} csr / {} bbs / {} csb layers)",
            p.format, p.layers_bspc, p.layers_csr, p.layers_bbs, p.layers_csb
        );
        let _ = writeln!(
            s,
            "  model storage: {:.1} KiB",
            p.storage_bytes as f64 / 1024.0
        );
        if p.precision_guard_tripped || p.format_guard_tripped {
            let _ = writeln!(
                s,
                "  guards: precision {}, format {}",
                if p.precision_guard_tripped {
                    "TRIPPED (shipped f32)"
                } else {
                    "ok"
                },
                if p.format_guard_tripped {
                    "TRIPPED (shipped bspc)"
                } else {
                    "ok"
                }
            );
        }
        if let Some(d) = &self.decode {
            let _ = writeln!(
                s,
                "  decode: {} -> PER {:.2}%, {} symbols, {} endpoints",
                d.label(),
                d.decoded_per,
                d.symbols,
                d.endpoints
            );
            let _ = writeln!(
                s,
                "  RTF: {:.4} per stream (max {:.4}), {:.4} per batch \
                 ({:.1} real-time streams/core), first symbol {:.0} ms",
                d.rtf_stream_mean,
                d.rtf_stream_max,
                d.rtf_batch,
                if d.rtf_batch > 0.0 {
                    1.0 / d.rtf_batch
                } else {
                    0.0
                },
                d.first_symbol_ms_mean
            );
        }
        if let Some(v) = &self.serve {
            let _ = writeln!(
                s,
                "  serving: {} admitted, {} completed, {} shed, {} quarantined, \
                 {} deadline-missed over {} batched frames (batch RTF {:.4})",
                v.admitted,
                v.completed,
                v.shed,
                v.quarantined,
                v.deadline_missed,
                v.frames,
                v.batch_rtf()
            );
        }
        s
    }
}

/// A structured result that renders itself through the one shared JSON
/// path ([`rtm_trace::json`], the same helpers behind every `BENCH_*.json`
/// artifact). Implemented for the pipeline report, the serving counters
/// and the streaming-simulation reports, so every JSON the stack emits
/// goes through a single escaping/formatting routine instead of a
/// per-binary copy.
pub trait Report {
    /// Machine-readable kind tag (`"pipeline"`, `"serve_stats"`, …),
    /// emitted as the leading `"report"` field.
    fn kind(&self) -> &'static str;

    /// The `(key, value)` pairs of the JSON object, in emission order.
    fn fields(&self) -> Vec<(&'static str, JsonValue)>;

    /// Renders one single-line JSON object: `{"report": kind, ...fields}`.
    fn to_json(&self) -> String {
        let mut all: Vec<(&str, JsonValue)> = vec![("report", JsonValue::Str(self.kind().into()))];
        all.extend(self.fields());
        json_row(&all)
    }
}

/// Nested JSON for one simulated frame (shared by the GPU and CPU halves).
fn frame_json(f: &FrameReport) -> String {
    json_row(&[
        ("time_us", JsonValue::F64(f.time_us, 2)),
        ("gop_per_s", JsonValue::F64(f.gop_per_s, 2)),
        ("energy_uj", JsonValue::F64(f.energy_uj, 2)),
        ("efficiency_vs_ese", JsonValue::F64(f.efficiency_vs_ese, 3)),
        ("kernels", JsonValue::Int(f.kernels as i64)),
        (
            "memory_bound_fraction",
            JsonValue::F64(f.memory_bound_fraction, 3),
        ),
    ])
}

/// Nested JSON for one queueing result (shared by the streaming reports).
fn streaming_json(r: &StreamingReport) -> String {
    json_row(&[
        ("period_us", JsonValue::F64(r.period_us, 2)),
        ("service_us", JsonValue::F64(r.service_us, 2)),
        ("stable", JsonValue::Raw(r.stable.to_string())),
        ("frames", JsonValue::Int(r.latencies_us.len() as i64)),
        ("max_latency_us", JsonValue::F64(r.max_latency_us, 2)),
        ("mean_latency_us", JsonValue::F64(r.mean_latency_us, 2)),
    ])
}

impl Report for PipelineReport {
    fn kind(&self) -> &'static str {
        "pipeline"
    }

    fn fields(&self) -> Vec<(&'static str, JsonValue)> {
        let a = &self.accuracy;
        let p = &self.performance;
        vec![
            (
                "accuracy",
                JsonValue::Raw(json_row(&[
                    ("baseline_per", JsonValue::F64(a.baseline_per, 3)),
                    ("pruned_per", JsonValue::F64(a.pruned_per, 3)),
                    ("compiled_per", JsonValue::F64(a.compiled_per, 3)),
                    ("degradation", JsonValue::F64(a.degradation(), 3)),
                    ("achieved_rate", JsonValue::F64(a.achieved_rate, 2)),
                    ("kept_params", JsonValue::Int(a.kept_params as i64)),
                    ("total_params", JsonValue::Int(a.total_params as i64)),
                ])),
            ),
            (
                "performance",
                JsonValue::Raw(json_row(&[
                    ("col_rate", JsonValue::Raw(p.target.col_rate.to_string())),
                    ("row_rate", JsonValue::Raw(p.target.row_rate.to_string())),
                    ("workload_rate", JsonValue::F64(p.workload_rate, 2)),
                    ("gop", JsonValue::F64(p.gop, 4)),
                    ("gpu", JsonValue::Raw(frame_json(&p.gpu))),
                    ("cpu", JsonValue::Raw(frame_json(&p.cpu))),
                    ("precision", JsonValue::Str(p.precision.into())),
                    ("layers_f32", JsonValue::Int(p.layers_f32 as i64)),
                    ("layers_f16", JsonValue::Int(p.layers_f16 as i64)),
                    ("layers_int8", JsonValue::Int(p.layers_int8 as i64)),
                    ("format", JsonValue::Str(p.format.into())),
                    ("layers_bspc", JsonValue::Int(p.layers_bspc as i64)),
                    ("layers_csr", JsonValue::Int(p.layers_csr as i64)),
                    ("layers_bbs", JsonValue::Int(p.layers_bbs as i64)),
                    ("layers_csb", JsonValue::Int(p.layers_csb as i64)),
                    ("storage_bytes", JsonValue::Int(p.storage_bytes as i64)),
                    (
                        "precision_guard_tripped",
                        JsonValue::Raw(p.precision_guard_tripped.to_string()),
                    ),
                    (
                        "format_guard_tripped",
                        JsonValue::Raw(p.format_guard_tripped.to_string()),
                    ),
                ])),
            ),
            (
                "decode",
                match &self.decode {
                    Some(d) => JsonValue::Raw(json_row(&[
                        ("decoder", JsonValue::Str(d.decoder.into())),
                        ("beam", JsonValue::Int(d.beam as i64)),
                        ("label", JsonValue::Str(d.label())),
                        ("utterances", JsonValue::Int(d.utterances as i64)),
                        ("symbols", JsonValue::Int(d.symbols as i64)),
                        ("endpoints", JsonValue::Int(d.endpoints as i64)),
                        ("decoded_per", JsonValue::F64(d.decoded_per, 3)),
                        ("rtf_stream_mean", JsonValue::F64(d.rtf_stream_mean, 4)),
                        ("rtf_stream_max", JsonValue::F64(d.rtf_stream_max, 4)),
                        ("rtf_batch", JsonValue::F64(d.rtf_batch, 4)),
                        (
                            "first_symbol_ms_mean",
                            JsonValue::F64(d.first_symbol_ms_mean, 2),
                        ),
                    ])),
                    None => JsonValue::Raw("null".to_string()),
                },
            ),
            (
                "serve",
                match &self.serve {
                    Some(s) => JsonValue::Raw(s.to_json()),
                    None => JsonValue::Raw("null".to_string()),
                },
            ),
        ]
    }
}

impl Report for ServeStats {
    fn kind(&self) -> &'static str {
        "serve_stats"
    }

    fn fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("admitted", JsonValue::Int(self.admitted as i64)),
            ("completed", JsonValue::Int(self.completed as i64)),
            ("shed", JsonValue::Int(self.shed as i64)),
            ("quarantined", JsonValue::Int(self.quarantined as i64)),
            (
                "deadline_missed",
                JsonValue::Int(self.deadline_missed as i64),
            ),
            ("frames", JsonValue::Int(self.frames as i64)),
            ("stream_frames", JsonValue::Int(self.stream_frames as i64)),
            ("endpoints", JsonValue::Int(self.endpoints as i64)),
            ("batch_rtf", JsonValue::F64(self.batch_rtf(), 4)),
        ]
    }
}

impl Report for MultiStreamReport {
    fn kind(&self) -> &'static str {
        "multi_stream"
    }

    fn fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("streams", JsonValue::Int(self.streams as i64)),
            ("batched", JsonValue::Raw(streaming_json(&self.batched))),
            (
                "serial_service_us",
                JsonValue::F64(self.serial_service_us, 2),
            ),
            (
                "per_stream_service_us",
                JsonValue::F64(self.per_stream_service_us, 2),
            ),
            ("batch_speedup", JsonValue::F64(self.batch_speedup, 3)),
            ("rtf", JsonValue::F64(self.rtf, 4)),
        ]
    }
}

impl Report for ShedReport {
    fn kind(&self) -> &'static str {
        "shed"
    }

    fn fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("offered", JsonValue::Int(self.offered as i64)),
            ("capacity", JsonValue::Int(self.capacity as i64)),
            ("served", JsonValue::Int(self.served as i64)),
            ("shed_per_round", JsonValue::Int(self.shed_per_round as i64)),
            ("policy", JsonValue::Str(self.policy.to_string())),
            ("batched", JsonValue::Raw(streaming_json(&self.batched))),
            (
                "unshed_service_us",
                JsonValue::F64(self.unshed_service_us, 2),
            ),
            (
                "unshed_stable",
                JsonValue::Raw(self.unshed_stable.to_string()),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_frame() -> FrameReport {
        FrameReport {
            time_us: 100.0,
            gop: 0.01,
            gop_per_s: 100.0,
            energy_uj: 107.0,
            efficiency_vs_ese: 31.7,
            kernels: 4,
            memory_bound_fraction: 1.0,
        }
    }

    fn dummy() -> PipelineReport {
        PipelineReport {
            accuracy: AccuracyReport {
                baseline_per: 12.0,
                pruned_per: 13.5,
                compiled_per: 13.6,
                baseline_frame_accuracy: 0.9,
                pruned_frame_accuracy: 0.88,
                achieved_rate: 10.0,
                kept_params: 1000,
                total_params: 10000,
            },
            performance: PerformanceReport {
                target: CompressionTarget::new(10.0, 1.0),
                workload_rate: 9.7,
                gop: 0.058,
                gpu: dummy_frame(),
                cpu: dummy_frame(),
                precision: "f16",
                layers_f32: 0,
                layers_f16: 2,
                layers_int8: 0,
                format: "bbs",
                layers_bspc: 0,
                layers_csr: 0,
                layers_bbs: 2,
                layers_csb: 0,
                storage_bytes: 2048,
                precision_guard_tripped: false,
                format_guard_tripped: false,
            },
            decode: None,
            serve: None,
        }
    }

    #[test]
    fn degradation_is_difference() {
        let r = dummy();
        assert!((r.accuracy.degradation() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn render_contains_key_numbers() {
        let text = dummy().render();
        assert!(text.contains("12.00%"));
        assert!(text.contains("13.50%"));
        assert!(text.contains("+1.50"));
        assert!(text.contains("10.0x compression"));
        assert!(text.contains("31.70x ESE"));
        assert!(text.contains("precision: f16 (0 f32 / 2 f16 / 0 int8 layers)"));
        assert!(text.contains("format: bbs (0 bspc / 0 csr / 2 bbs / 0 csb layers)"));
        assert!(text.contains("2.0 KiB"));
        assert!(!text.contains("serving:"));
        assert!(!text.contains("guards:"), "untripped guards stay quiet");
        let mut tripped = dummy();
        tripped.performance.precision_guard_tripped = true;
        let text_tripped = tripped.render();
        assert!(text_tripped.contains("precision TRIPPED (shipped f32)"));
        assert!(text_tripped.contains("format ok"));
        let mut r = dummy();
        r.serve = Some(ServeStats {
            admitted: 5,
            shed: 2,
            quarantined: 1,
            deadline_missed: 0,
            frames: 40,
            completed: 4,
            ..ServeStats::default()
        });
        r.decode = Some(DecodeStats {
            decoder: "ctc-beam",
            beam: 4,
            utterances: 8,
            symbols: 96,
            endpoints: 8,
            decoded_per: 21.5,
            rtf_stream_mean: 0.05,
            rtf_stream_max: 0.09,
            rtf_batch: 0.02,
            first_symbol_ms_mean: 120.0,
        });
        let text = r.render();
        assert!(text.contains("5 admitted"));
        assert!(text.contains("2 shed"));
        assert!(text.contains("1 quarantined"));
        assert!(text.contains("decode: ctc-beam:4 -> PER 21.50%"));
        assert!(text.contains("50.0 real-time streams/core"));
        assert!(text.contains("first symbol 120 ms"));
    }

    #[test]
    fn report_trait_emits_tagged_json() {
        let mut r = dummy();
        let json = r.to_json();
        assert!(json.starts_with("{\"report\": \"pipeline\""), "{json}");
        assert!(json.contains("\"accuracy\": {\"baseline_per\": 12.000"));
        assert!(json.contains("\"gpu\": {\"time_us\": 100.00"));
        assert!(json.contains("\"precision\": \"f16\""));
        assert!(json.contains("\"layers_int8\": 0"));
        assert!(json.contains("\"format\": \"bbs\""));
        assert!(json.contains("\"layers_bbs\": 2"));
        assert!(json.contains("\"storage_bytes\": 2048"));
        assert!(json.contains("\"precision_guard_tripped\": false"));
        assert!(json.contains("\"format_guard_tripped\": false"));
        assert!(json.contains("\"serve\": null"));

        assert!(json.contains("\"decode\": null"));

        let stats = ServeStats {
            admitted: 5,
            shed: 2,
            quarantined: 1,
            deadline_missed: 0,
            frames: 40,
            completed: 4,
            stream_frames: 200,
            compute_ns: 100_000_000,
            endpoints: 3,
        };
        let sj = stats.to_json();
        assert!(sj.starts_with("{\"report\": \"serve_stats\""), "{sj}");
        assert!(sj.contains("\"admitted\": 5"));
        assert!(sj.contains("\"stream_frames\": 200"));
        assert!(sj.contains("\"endpoints\": 3"));
        assert!(sj.contains("\"batch_rtf\": 0.0500"), "{sj}");
        r.serve = Some(stats);
        assert!(r
            .to_json()
            .contains("\"serve\": {\"report\": \"serve_stats\""));
        r.decode = Some(DecodeStats {
            decoder: "argmax",
            beam: 0,
            utterances: 4,
            symbols: 40,
            endpoints: 4,
            decoded_per: 30.0,
            rtf_stream_mean: 0.1,
            rtf_stream_max: 0.2,
            rtf_batch: 0.1,
            first_symbol_ms_mean: 50.0,
        });
        let dj = r.to_json();
        assert!(dj.contains("\"decode\": {\"decoder\": \"argmax\""), "{dj}");
        assert!(dj.contains("\"rtf_batch\": 0.1000"), "{dj}");
    }

    #[test]
    fn streaming_reports_emit_tagged_json() {
        let batched = StreamingReport {
            period_us: 250.0,
            service_us: 100.0,
            stable: true,
            latencies_us: vec![100.0, 100.0],
            max_latency_us: 100.0,
            mean_latency_us: 100.0,
        };
        let ms = MultiStreamReport {
            streams: 4,
            batched: batched.clone(),
            serial_service_us: 400.0,
            per_stream_service_us: 25.0,
            batch_speedup: 4.0,
            rtf: 0.4,
        };
        let j = ms.to_json();
        assert!(j.starts_with("{\"report\": \"multi_stream\""), "{j}");
        assert!(j.contains("\"batched\": {\"period_us\": 250.00"));
        assert!(j.contains("\"stable\": true"));
        assert!(j.contains("\"rtf\": 0.4000"));

        let shed = ShedReport {
            offered: 8,
            capacity: 4,
            served: 4,
            shed_per_round: 4,
            policy: rtm_sim::streaming::ShedPolicy::DropOldest,
            batched,
            unshed_service_us: 180.0,
            unshed_stable: false,
        };
        let j = shed.to_json();
        assert!(j.starts_with("{\"report\": \"shed\""), "{j}");
        assert!(j.contains("\"policy\": \"drop-oldest\""));
        assert!(j.contains("\"unshed_stable\": false"));
    }
}
