//! Blocking client for the `rtm serve` wire protocol — the counterpart
//! the integration tests, the `serve_load` bench and the CI smoke use to
//! drive a [`super::Server`] over loopback.
//!
//! The client is deliberately synchronous: one [`StreamClient`] is one
//! stream, `send`/`recv` block, and the closed-loop `infer` round-trip is
//! exactly what the load generator times. Protocol-level surprises
//! (malformed server frames, early EOF) surface as
//! [`std::io::ErrorKind::InvalidData`] / `UnexpectedEof` errors.

use std::io::{Error, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};

use rtm_tensor::wire::FrameDecoder;

use super::protocol::{put_client_msg, ClientMsg, RejectCode, ServerMsg};

/// One client-side stream: connect, `start`, feed frames, `finish`.
#[derive(Debug)]
pub struct StreamClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Frame width the server's model expects (from `Hello`).
    pub input_dim: usize,
    /// Logit width the server produces (from `Hello`).
    pub classes: usize,
    /// Protocol version the server advertised in `Hello` (1 for a
    /// pre-streaming server, 2+ when hypotheses are available).
    pub protocol_version: u32,
    /// This stream opted into hypotheses
    /// ([`StreamClient::want_hypotheses`]).
    hypotheses: bool,
}

/// A decoded hypothesis as it arrived on the wire
/// ([`ServerMsg::Hypothesis`]), for streams that opted in via
/// [`StreamClient::want_hypotheses`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireHypothesis {
    /// Decoded symbol sequence (phone indices).
    pub symbols: Vec<u32>,
    /// Decoder score (log-domain; 0.0 for the argmax decoder).
    pub score: f32,
    /// The server's endpointer currently detects trailing silence.
    pub endpoint: bool,
    /// This is the stream's final hypothesis.
    pub is_final: bool,
}

fn invalid<E: std::error::Error + Send + Sync + 'static>(e: E) -> Error {
    Error::new(ErrorKind::InvalidData, e)
}

impl StreamClient {
    /// Connects and consumes the server's `Hello` greeting.
    ///
    /// # Errors
    ///
    /// Connection errors pass through; a non-`Hello` first message is
    /// `InvalidData`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<StreamClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = StreamClient {
            stream,
            decoder: FrameDecoder::new(),
            input_dim: 0,
            classes: 0,
            protocol_version: 1,
            hypotheses: false,
        };
        match client.recv()? {
            ServerMsg::Hello {
                input_dim,
                classes,
                version,
            } => {
                client.input_dim = input_dim as usize;
                client.classes = classes as usize;
                client.protocol_version = version;
                Ok(client)
            }
            other => Err(Error::new(
                ErrorKind::InvalidData,
                format!("expected Hello, got {other:?}"),
            )),
        }
    }

    /// Sends one protocol message.
    ///
    /// # Errors
    ///
    /// Socket write errors pass through.
    pub fn send(&mut self, msg: &ClientMsg) -> std::io::Result<()> {
        let mut out = Vec::new();
        put_client_msg(&mut out, msg);
        self.stream.write_all(&out)
    }

    /// Blocks until the next server message arrives.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server closes first; `InvalidData` for
    /// unframeable or undecodable bytes; other socket errors pass through.
    pub fn recv(&mut self) -> std::io::Result<ServerMsg> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(payload) = self.decoder.next_frame().map_err(invalid)? {
                return ServerMsg::decode(&payload).map_err(invalid);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Joins the admission queue under `tenant`. The outcome (a lane, or a
    /// `Reject`) arrives with the first `recv`/`infer` response.
    ///
    /// # Errors
    ///
    /// Socket write errors pass through.
    pub fn start(&mut self, tenant: u32) -> std::io::Result<()> {
        self.send(&ClientMsg::Start { tenant })
    }

    /// Opts this stream into streaming decode: every
    /// [`infer_decoded`](StreamClient::infer_decoded) round trip carries a
    /// hypothesis behind its logits, and
    /// [`finish_decoded`](StreamClient::finish_decoded) returns the final
    /// one. Call after [`start`](StreamClient::start).
    ///
    /// # Errors
    ///
    /// `Unsupported` when the server's advertised protocol version
    /// predates hypotheses (< 2); socket write errors pass through.
    pub fn want_hypotheses(&mut self) -> std::io::Result<()> {
        if self.protocol_version < 2 {
            return Err(Error::new(
                ErrorKind::Unsupported,
                format!(
                    "server speaks protocol v{}, hypotheses need v2",
                    self.protocol_version
                ),
            ));
        }
        self.send(&ClientMsg::WantHypotheses)?;
        self.hypotheses = true;
        Ok(())
    }

    /// The closed-loop round trip the load generator times: sends one
    /// frame and blocks for its logits.
    ///
    /// # Errors
    ///
    /// A `Reject` comes back as a [`RejectedError`] wrapped in
    /// `InvalidData` (inspect via [`std::io::Error::get_ref`]); any other
    /// non-`Logits` reply is `InvalidData` too.
    pub fn infer(&mut self, frame: &[f32]) -> std::io::Result<Vec<f32>> {
        self.send(&ClientMsg::Frame(frame.to_vec()))?;
        match self.recv()? {
            ServerMsg::Logits(row) => Ok(row),
            ServerMsg::Reject { code } => Err(invalid(RejectedError { code })),
            other => Err(Error::new(
                ErrorKind::InvalidData,
                format!("expected Logits, got {other:?}"),
            )),
        }
    }

    /// [`infer`](StreamClient::infer) for an opted-in stream: sends one
    /// frame and blocks for its logits **and** the hypothesis the server
    /// pairs with every served frame.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the stream never opted in
    /// ([`want_hypotheses`](StreamClient::want_hypotheses)), on a
    /// `Reject` ([`RejectedError`]) and on out-of-order replies.
    pub fn infer_decoded(&mut self, frame: &[f32]) -> std::io::Result<(Vec<f32>, WireHypothesis)> {
        if !self.hypotheses {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "stream did not opt into hypotheses",
            ));
        }
        let row = self.infer(frame)?;
        match self.recv()? {
            ServerMsg::Hypothesis {
                symbols,
                score,
                endpoint,
                is_final,
            } => Ok((
                row,
                WireHypothesis {
                    symbols,
                    score,
                    endpoint,
                    is_final,
                },
            )),
            ServerMsg::Reject { code } => Err(invalid(RejectedError { code })),
            other => Err(Error::new(
                ErrorKind::InvalidData,
                format!("expected Hypothesis, got {other:?}"),
            )),
        }
    }

    /// Ends the stream and blocks for `Done`, returning the frame count
    /// the server reports.
    ///
    /// # Errors
    ///
    /// A `Reject` maps to [`RejectedError`] as in
    /// [`infer`](StreamClient::infer); any other non-`Done` reply is
    /// `InvalidData`.
    pub fn finish(&mut self) -> std::io::Result<u32> {
        self.send(&ClientMsg::End)?;
        match self.recv()? {
            ServerMsg::Done { frames } => Ok(frames),
            ServerMsg::Reject { code } => Err(invalid(RejectedError { code })),
            other => Err(Error::new(
                ErrorKind::InvalidData,
                format!("expected Done, got {other:?}"),
            )),
        }
    }

    /// [`finish`](StreamClient::finish) for an opted-in stream: the final
    /// hypothesis precedes `Done` on the wire, so this returns both.
    ///
    /// # Errors
    ///
    /// As [`finish`](StreamClient::finish), plus `InvalidData` when the
    /// stream never opted in.
    pub fn finish_decoded(&mut self) -> std::io::Result<(WireHypothesis, u32)> {
        if !self.hypotheses {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "stream did not opt into hypotheses",
            ));
        }
        self.send(&ClientMsg::End)?;
        let hyp = match self.recv()? {
            ServerMsg::Hypothesis {
                symbols,
                score,
                endpoint,
                is_final,
            } => WireHypothesis {
                symbols,
                score,
                endpoint,
                is_final,
            },
            ServerMsg::Reject { code } => return Err(invalid(RejectedError { code })),
            other => {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!("expected final Hypothesis, got {other:?}"),
                ))
            }
        };
        match self.recv()? {
            ServerMsg::Done { frames } => Ok((hyp, frames)),
            ServerMsg::Reject { code } => Err(invalid(RejectedError { code })),
            other => Err(Error::new(
                ErrorKind::InvalidData,
                format!("expected Done, got {other:?}"),
            )),
        }
    }
}

/// The server refused (or stopped) serving this stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectedError {
    /// The server's reason.
    pub code: RejectCode,
}

impl std::fmt::Display for RejectedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream rejected: {}", self.code.tag())
    }
}

impl std::error::Error for RejectedError {}
