//! Blocking client for the `rtm serve` wire protocol — the counterpart
//! the integration tests, the `serve_load` bench and the CI smoke use to
//! drive a [`super::Server`] over loopback.
//!
//! The client is deliberately synchronous: one [`StreamClient`] is one
//! stream, `send`/`recv` block, and the closed-loop `infer` round-trip is
//! exactly what the load generator times. Protocol-level surprises
//! (malformed server frames, early EOF) surface as
//! [`std::io::ErrorKind::InvalidData`] / `UnexpectedEof` errors.

use std::io::{Error, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};

use rtm_tensor::wire::FrameDecoder;

use super::protocol::{put_client_msg, ClientMsg, RejectCode, ServerMsg};

/// One client-side stream: connect, `start`, feed frames, `finish`.
#[derive(Debug)]
pub struct StreamClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Frame width the server's model expects (from `Hello`).
    pub input_dim: usize,
    /// Logit width the server produces (from `Hello`).
    pub classes: usize,
}

fn invalid<E: std::error::Error + Send + Sync + 'static>(e: E) -> Error {
    Error::new(ErrorKind::InvalidData, e)
}

impl StreamClient {
    /// Connects and consumes the server's `Hello` greeting.
    ///
    /// # Errors
    ///
    /// Connection errors pass through; a non-`Hello` first message is
    /// `InvalidData`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<StreamClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = StreamClient {
            stream,
            decoder: FrameDecoder::new(),
            input_dim: 0,
            classes: 0,
        };
        match client.recv()? {
            ServerMsg::Hello { input_dim, classes } => {
                client.input_dim = input_dim as usize;
                client.classes = classes as usize;
                Ok(client)
            }
            other => Err(Error::new(
                ErrorKind::InvalidData,
                format!("expected Hello, got {other:?}"),
            )),
        }
    }

    /// Sends one protocol message.
    ///
    /// # Errors
    ///
    /// Socket write errors pass through.
    pub fn send(&mut self, msg: &ClientMsg) -> std::io::Result<()> {
        let mut out = Vec::new();
        put_client_msg(&mut out, msg);
        self.stream.write_all(&out)
    }

    /// Blocks until the next server message arrives.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server closes first; `InvalidData` for
    /// unframeable or undecodable bytes; other socket errors pass through.
    pub fn recv(&mut self) -> std::io::Result<ServerMsg> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(payload) = self.decoder.next_frame().map_err(invalid)? {
                return ServerMsg::decode(&payload).map_err(invalid);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Joins the admission queue under `tenant`. The outcome (a lane, or a
    /// `Reject`) arrives with the first `recv`/`infer` response.
    ///
    /// # Errors
    ///
    /// Socket write errors pass through.
    pub fn start(&mut self, tenant: u32) -> std::io::Result<()> {
        self.send(&ClientMsg::Start { tenant })
    }

    /// The closed-loop round trip the load generator times: sends one
    /// frame and blocks for its logits.
    ///
    /// # Errors
    ///
    /// A `Reject` comes back as a [`RejectedError`] wrapped in
    /// `InvalidData` (inspect via [`std::io::Error::get_ref`]); any other
    /// non-`Logits` reply is `InvalidData` too.
    pub fn infer(&mut self, frame: &[f32]) -> std::io::Result<Vec<f32>> {
        self.send(&ClientMsg::Frame(frame.to_vec()))?;
        match self.recv()? {
            ServerMsg::Logits(row) => Ok(row),
            ServerMsg::Reject { code } => Err(invalid(RejectedError { code })),
            other => Err(Error::new(
                ErrorKind::InvalidData,
                format!("expected Logits, got {other:?}"),
            )),
        }
    }

    /// Ends the stream and blocks for `Done`, returning the frame count
    /// the server reports.
    ///
    /// # Errors
    ///
    /// A `Reject` maps to [`RejectedError`] as in
    /// [`infer`](StreamClient::infer); any other non-`Done` reply is
    /// `InvalidData`.
    pub fn finish(&mut self) -> std::io::Result<u32> {
        self.send(&ClientMsg::End)?;
        match self.recv()? {
            ServerMsg::Done { frames } => Ok(frames),
            ServerMsg::Reject { code } => Err(invalid(RejectedError { code })),
            other => Err(Error::new(
                ErrorKind::InvalidData,
                format!("expected Done, got {other:?}"),
            )),
        }
    }
}

/// The server refused (or stopped) serving this stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectedError {
    /// The server's reason.
    pub code: RejectCode,
}

impl std::fmt::Display for RejectedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream rejected: {}", self.code.tag())
    }
}

impl std::error::Error for RejectedError {}
