//! The serving stack: admission control, serving statistics, and the
//! `rtm serve` TCP front end.
//!
//! Three submodules turn the batched runtime into a network service
//! (DESIGN.md §14): [`protocol`] defines the length-prefixed wire messages
//! over the [`rtm_tensor::wire`] codec, [`server`] runs a std-only
//! non-blocking readiness loop that feeds connections into
//! [`crate::deploy::BatchedSession`] lanes (continuous batching), and
//! [`client`] is the blocking counterpart used by tests, the bench load
//! generator and CI smokes.
//!
//! The ROADMAP's serving contract is *sustained* faster-than-realtime
//! operation, which breaks the moment offered load exceeds capacity: an
//! unbounded backlog grows without bound and every stream's latency with
//! it. [`AdmissionConfig`] bounds the backlog — excess streams are shed
//! under a [`ShedPolicy`] instead of queued forever — and budgets a
//! per-stream admission deadline so late service is *counted*, not hidden.
//! [`ServeStats`] is the observable: every admission, shed, quarantine and
//! deadline miss of a [`crate::deploy::BatchedSession`] run shows up here.
//!
//! The shed policies are shared with the analytical simulator
//! ([`rtm_sim::streaming::run_streams_shed`](rtm_sim::streaming::StreamingSim::run_streams_shed)),
//! so a deployment can price a policy in the sim and then enforce the same
//! one in the runtime.

use crate::health::NumericFault;

pub mod client;
pub mod protocol;
pub mod reload;
pub mod server;

pub use client::StreamClient;
pub use protocol::{ClientMsg, ProtocolError, RejectCode, ServerMsg};
pub use reload::{ReloadConfig, ReloadStats, Reloader};
pub use rtm_sim::streaming::ShedPolicy;
pub use server::{ServeOptions, Server};

/// Bounds on what a [`crate::deploy::BatchedSession`] run will accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum streams parked awaiting a lane at any scheduling round;
    /// beyond it the excess is shed under [`AdmissionConfig::shed`].
    /// `usize::MAX` (the default) never sheds.
    pub queue_depth: usize,
    /// Admission deadline in batched steps: a stream first admitted after
    /// more than this many steps have run counts as a deadline miss (it is
    /// still served — the counter is the observable, shedding is the
    /// remedy). `None` (the default) disables the accounting.
    pub deadline_steps: Option<usize>,
    /// Which streams are sacrificed when the queue bound is hit.
    pub shed: ShedPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            queue_depth: usize::MAX,
            deadline_steps: None,
            shed: ShedPolicy::RejectNew,
        }
    }
}

impl AdmissionConfig {
    /// An unbounded config (never sheds, never counts misses) — the
    /// behaviour of a session with no admission control.
    pub fn unbounded() -> AdmissionConfig {
        AdmissionConfig::default()
    }

    /// Bounds the parked backlog at `depth` streams.
    pub fn with_queue_depth(mut self, depth: usize) -> AdmissionConfig {
        self.queue_depth = depth;
        self
    }

    /// Sets the admission deadline budget in batched steps.
    pub fn with_deadline_steps(mut self, steps: usize) -> AdmissionConfig {
        self.deadline_steps = Some(steps);
        self
    }

    /// Picks the shed policy.
    pub fn with_shed(mut self, shed: ShedPolicy) -> AdmissionConfig {
        self.shed = shed;
        self
    }
}

/// Counters from one batched serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Streams admitted to a lane.
    pub admitted: usize,
    /// Streams shed by admission control (they produce no logits).
    pub shed: usize,
    /// Lanes retired by the health policy mid-stream.
    pub quarantined: usize,
    /// Streams admitted after their deadline budget had elapsed.
    pub deadline_missed: usize,
    /// Batched frames executed (scheduling steps).
    pub frames: usize,
    /// Streams that ran to completion (all frames produced logits).
    pub completed: usize,
    /// Per-stream frames served (logit rows across all lanes; one batched
    /// step serving 8 lanes adds 8 here and 1 to [`ServeStats::frames`]).
    pub stream_frames: usize,
    /// Wall time spent inside batched inference steps, in nanoseconds
    /// (integer so the stats stay `Copy + Eq`; see
    /// [`ServeStats::batch_rtf`]).
    pub compute_ns: u64,
    /// Endpoint events observed by the per-lane decoders (zero when no
    /// decoder is configured).
    pub endpoints: usize,
}

impl ServeStats {
    /// Field-wise sum — aggregates the per-generation sessions of a
    /// hot-swapping server into the one set of counters callers observe.
    pub fn merged(self, other: ServeStats) -> ServeStats {
        ServeStats {
            admitted: self.admitted + other.admitted,
            shed: self.shed + other.shed,
            quarantined: self.quarantined + other.quarantined,
            deadline_missed: self.deadline_missed + other.deadline_missed,
            frames: self.frames + other.frames,
            completed: self.completed + other.completed,
            stream_frames: self.stream_frames + other.stream_frames,
            compute_ns: self.compute_ns + other.compute_ns,
            endpoints: self.endpoints + other.endpoints,
        }
    }

    /// Per-batch real-time factor: inference wall time over the audio time
    /// of the frames served (`stream_frames` × the 10 ms frame hop,
    /// [`rtm_sim::realtime::FRAME_HOP_US`]). Below 1.0 is faster than real
    /// time; its reciprocal is the sustainable real-time stream count.
    /// `0.0` before any frame is served.
    pub fn batch_rtf(&self) -> f64 {
        if self.stream_frames == 0 {
            return 0.0;
        }
        let compute_us = self.compute_ns as f64 / 1e3;
        compute_us / (self.stream_frames as f64 * rtm_sim::realtime::FRAME_HOP_US)
    }
}

/// One numeric fault observed by the health scan, attributed to its stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFault {
    /// Index of the stream in the caller's list.
    pub stream: usize,
    /// Frame index within the stream at which the fault surfaced.
    pub frame: usize,
    /// What the scan saw.
    pub fault: NumericFault,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_admission_is_unbounded() {
        let c = AdmissionConfig::default();
        assert_eq!(c.queue_depth, usize::MAX);
        assert_eq!(c.deadline_steps, None);
        assert_eq!(c.shed, ShedPolicy::RejectNew);
        assert_eq!(c, AdmissionConfig::unbounded());
    }

    #[test]
    fn builder_sets_every_knob() {
        let c = AdmissionConfig::default()
            .with_queue_depth(3)
            .with_deadline_steps(10)
            .with_shed(ShedPolicy::DropOldest);
        assert_eq!(c.queue_depth, 3);
        assert_eq!(c.deadline_steps, Some(10));
        assert_eq!(c.shed, ShedPolicy::DropOldest);
    }

    #[test]
    fn stats_start_at_zero() {
        let s = ServeStats::default();
        assert_eq!(s.admitted + s.shed + s.quarantined, 0);
        assert_eq!(s.deadline_missed + s.frames + s.completed, 0);
        assert_eq!(s.stream_frames + s.endpoints, 0);
        assert_eq!(s.compute_ns, 0);
        assert_eq!(s.batch_rtf(), 0.0, "no frames yet: RTF undefined as 0");
    }

    #[test]
    fn batch_rtf_is_compute_over_audio() {
        let s = ServeStats {
            stream_frames: 100,     // 100 frames × 10 ms = 1 s audio
            compute_ns: 20_000_000, // 20 ms of compute
            ..ServeStats::default()
        };
        assert!((s.batch_rtf() - 0.02).abs() < 1e-12);
        let merged = s.merged(s);
        assert_eq!(merged.stream_frames, 200);
        assert_eq!(merged.compute_ns, 40_000_000);
        assert!(
            (merged.batch_rtf() - 0.02).abs() < 1e-12,
            "rtf is scale-free"
        );
    }
}
