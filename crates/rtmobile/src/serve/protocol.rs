//! The `rtm serve` wire protocol.
//!
//! Every message travels as one length-prefixed frame written by
//! [`rtm_tensor::wire::put_frame`] and recovered by
//! [`rtm_tensor::wire::FrameDecoder`]; the payload starts with a one-byte
//! tag followed by little-endian fields encoded with the workspace's
//! [`Buf`]/[`BufMut`] traits — zero registry dependencies, same codec as
//! the `.rtm` model file.
//!
//! The conversation is strictly client-driven after the greeting:
//!
//! ```text
//! server → Hello { input_dim, classes, version }   (on accept)
//! client → Start { tenant }                 (joins the admission queue)
//! client → WantHypotheses                   (optional opt-in, v2 servers)
//! client → Frame(x) …                       (one per audio frame)
//! server → Logits(y) …                      (one per served frame, in order)
//! server → Hypothesis …                     (after Logits, opted-in only)
//! client → End
//! server → Hypothesis { final }             (opted-in only, before Done)
//! server → Done { frames }                  (connection closes)
//! server → Reject { code }                  (instead of service, any time)
//! ```
//!
//! Version negotiation is one-sided and backward compatible: an 8-byte
//! `Hello` body (the original wire format) decodes as protocol version 1,
//! a 12-byte body carries the server's version explicitly. A v2 server
//! advertises the hypothesis capability in `Hello`; clients that never
//! send [`ClientMsg::WantHypotheses`] receive exactly the v1 message
//! sequence, bit-identical logits included.
//!
//! Decoding is total: unknown tags, truncated fields and trailing bytes
//! all surface as a typed [`ProtocolError`], never a panic — the server
//! drops the offending connection and the others are unaffected.

use rtm_tensor::wire::{Buf, BufMut};

/// The protocol version the server advertises in [`ServerMsg::Hello`].
/// Version 2 adds [`ClientMsg::WantHypotheses`] / [`ServerMsg::Hypothesis`]
/// (streaming decode); version 1 is the original logits-only exchange.
pub const PROTOCOL_VERSION: u32 = 2;

/// Tag bytes; client tags are low, server tags start at 16 so a direction
/// mix-up decodes as [`ProtocolError::UnknownTag`] rather than garbage.
const TAG_START: u8 = 1;
const TAG_FRAME: u8 = 2;
const TAG_END: u8 = 3;
const TAG_WANT_HYPOTHESES: u8 = 4;
const TAG_HELLO: u8 = 16;
const TAG_LOGITS: u8 = 17;
const TAG_DONE: u8 = 18;
const TAG_REJECT: u8 = 19;
const TAG_HYPOTHESIS: u8 = 20;

/// Why the server turned a stream away instead of serving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// Admission control shed the stream (queue depth exceeded under
    /// [`super::ShedPolicy`], or the connection table is full).
    Capacity,
    /// The stream's tenant already holds its quota of concurrent streams.
    TenantQuota,
    /// The health policy quarantined the stream's lane mid-flight.
    Quarantined,
}

impl RejectCode {
    fn code(self) -> u8 {
        match self {
            RejectCode::Capacity => 1,
            RejectCode::TenantQuota => 2,
            RejectCode::Quarantined => 3,
        }
    }

    fn from_code(c: u8) -> Option<RejectCode> {
        match c {
            1 => Some(RejectCode::Capacity),
            2 => Some(RejectCode::TenantQuota),
            3 => Some(RejectCode::Quarantined),
            _ => None,
        }
    }

    /// Human-readable label (used by the CLI and bench reports).
    pub fn tag(self) -> &'static str {
        match self {
            RejectCode::Capacity => "capacity",
            RejectCode::TenantQuota => "tenant-quota",
            RejectCode::Quarantined => "quarantined",
        }
    }
}

/// Messages the client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Joins the admission queue under a tenant id (quota bookkeeping).
    Start {
        /// Caller-chosen tenant identifier; quotas group streams by it.
        tenant: u32,
    },
    /// One input frame of `input_dim` features.
    Frame(Vec<f32>),
    /// Opts this stream into streaming decode: the server answers every
    /// [`ServerMsg::Logits`] with a [`ServerMsg::Hypothesis`] when the
    /// partial changed, and always sends a final one before
    /// [`ServerMsg::Done`]. Only meaningful against a server whose
    /// [`ServerMsg::Hello`] advertises `version >= 2`; a v1 server
    /// rejects the unknown tag. Streams that never send this receive the
    /// v1 message sequence unchanged.
    WantHypotheses,
    /// The stream is complete; the server answers [`ServerMsg::Done`]
    /// once every frame has its logits.
    End,
}

/// Messages the server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// The greeting: the model's frame width and logit width, so a client
    /// can validate its feed before streaming, plus the protocol version
    /// the server speaks (absent on the 8-byte v1 wire form, which decodes
    /// as `version: 1`).
    Hello {
        /// Expected `Frame` length.
        input_dim: u32,
        /// `Logits` length.
        classes: u32,
        /// Highest protocol version the server speaks; `>= 2` advertises
        /// the [`ServerMsg::Hypothesis`] capability.
        version: u32,
    },
    /// Logits for the next unanswered frame, bit-identical to a serial
    /// [`crate::deploy::CompiledNetwork::forward`] of the same stream.
    Logits(Vec<f32>),
    /// A decoded hypothesis for an opted-in stream
    /// ([`ClientMsg::WantHypotheses`]): the symbols decoded so far, sent
    /// after the [`ServerMsg::Logits`] whose frame changed the partial,
    /// and once more (with `is_final`) before [`ServerMsg::Done`].
    Hypothesis {
        /// Decoded symbol sequence (phone indices).
        symbols: Vec<u32>,
        /// Decoder score (log-domain; 0.0 for the argmax decoder).
        score: f32,
        /// The endpointer currently detects trailing silence.
        endpoint: bool,
        /// This is the stream's final hypothesis.
        is_final: bool,
    },
    /// The stream ran to completion after serving this many frames.
    Done {
        /// Frames served (equals frames sent when nothing was rejected).
        frames: u32,
    },
    /// The stream will not (or will no longer) be served.
    Reject {
        /// Why.
        code: RejectCode,
    },
}

/// A frame payload that does not decode as a protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The first byte is not a known message tag.
    UnknownTag(u8),
    /// The payload ended inside the named field.
    Truncated(&'static str),
    /// The payload continued past the end of the message.
    Trailing(usize),
    /// A `Reject` carried an unknown reason code.
    BadRejectCode(u8),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            ProtocolError::Truncated(what) => write!(f, "message truncated in {what}"),
            ProtocolError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            ProtocolError::BadRejectCode(c) => write!(f, "unknown reject code {c}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn need(buf: &&[u8], n: usize, what: &'static str) -> Result<(), ProtocolError> {
    if buf.remaining() < n {
        Err(ProtocolError::Truncated(what))
    } else {
        Ok(())
    }
}

fn get_f32s(buf: &mut &[u8], what: &'static str) -> Result<Vec<f32>, ProtocolError> {
    need(buf, 4, what)?;
    let count = buf.get_u32_le() as usize;
    need(buf, count.saturating_mul(4), what)?;
    Ok((0..count).map(|_| buf.get_f32_le()).collect())
}

fn put_f32s<B: BufMut>(out: &mut B, xs: &[f32]) {
    out.put_u32_le(xs.len() as u32);
    for &x in xs {
        out.put_f32_le(x);
    }
}

fn get_u32s(buf: &mut &[u8], what: &'static str) -> Result<Vec<u32>, ProtocolError> {
    need(buf, 4, what)?;
    let count = buf.get_u32_le() as usize;
    need(buf, count.saturating_mul(4), what)?;
    Ok((0..count).map(|_| buf.get_u32_le()).collect())
}

fn put_u32s<B: BufMut>(out: &mut B, xs: &[u32]) {
    out.put_u32_le(xs.len() as u32);
    for &x in xs {
        out.put_u32_le(x);
    }
}

fn done(buf: &[u8]) -> Result<(), ProtocolError> {
    if buf.remaining() == 0 {
        Ok(())
    } else {
        Err(ProtocolError::Trailing(buf.remaining()))
    }
}

impl ClientMsg {
    /// Appends this message's frame payload (tag + fields) to `out`.
    pub fn encode_payload<B: BufMut>(&self, out: &mut B) {
        match self {
            ClientMsg::Start { tenant } => {
                out.put_u8(TAG_START);
                out.put_u32_le(*tenant);
            }
            ClientMsg::Frame(xs) => {
                out.put_u8(TAG_FRAME);
                put_f32s(out, xs);
            }
            ClientMsg::WantHypotheses => out.put_u8(TAG_WANT_HYPOTHESES),
            ClientMsg::End => out.put_u8(TAG_END),
        }
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// Any malformed payload — unknown tag, truncation, trailing bytes —
    /// comes back as the matching [`ProtocolError`].
    pub fn decode(payload: &[u8]) -> Result<ClientMsg, ProtocolError> {
        let mut buf = payload;
        need(&buf, 1, "tag")?;
        let msg = match buf.get_u8() {
            TAG_START => {
                need(&buf, 4, "tenant")?;
                ClientMsg::Start {
                    tenant: buf.get_u32_le(),
                }
            }
            TAG_FRAME => ClientMsg::Frame(get_f32s(&mut buf, "frame")?),
            TAG_WANT_HYPOTHESES => ClientMsg::WantHypotheses,
            TAG_END => ClientMsg::End,
            t => return Err(ProtocolError::UnknownTag(t)),
        };
        done(buf)?;
        Ok(msg)
    }
}

impl ServerMsg {
    /// Appends this message's frame payload (tag + fields) to `out`.
    pub fn encode_payload<B: BufMut>(&self, out: &mut B) {
        match self {
            ServerMsg::Hello {
                input_dim,
                classes,
                version,
            } => {
                out.put_u8(TAG_HELLO);
                out.put_u32_le(*input_dim);
                out.put_u32_le(*classes);
                out.put_u32_le(*version);
            }
            ServerMsg::Logits(ys) => {
                out.put_u8(TAG_LOGITS);
                put_f32s(out, ys);
            }
            ServerMsg::Hypothesis {
                symbols,
                score,
                endpoint,
                is_final,
            } => {
                out.put_u8(TAG_HYPOTHESIS);
                put_u32s(out, symbols);
                out.put_f32_le(*score);
                out.put_u8(u8::from(*endpoint));
                out.put_u8(u8::from(*is_final));
            }
            ServerMsg::Done { frames } => {
                out.put_u8(TAG_DONE);
                out.put_u32_le(*frames);
            }
            ServerMsg::Reject { code } => {
                out.put_u8(TAG_REJECT);
                out.put_u8(code.code());
            }
        }
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// Any malformed payload — unknown tag, truncation, trailing bytes,
    /// bad reject code — comes back as the matching [`ProtocolError`].
    pub fn decode(payload: &[u8]) -> Result<ServerMsg, ProtocolError> {
        let mut buf = payload;
        need(&buf, 1, "tag")?;
        let msg = match buf.get_u8() {
            TAG_HELLO => {
                need(&buf, 8, "hello dims")?;
                let input_dim = buf.get_u32_le();
                let classes = buf.get_u32_le();
                // The original wire form stops here; v2+ servers append
                // their protocol version. Both decode.
                let version = if buf.remaining() >= 4 {
                    buf.get_u32_le()
                } else {
                    1
                };
                ServerMsg::Hello {
                    input_dim,
                    classes,
                    version,
                }
            }
            TAG_LOGITS => ServerMsg::Logits(get_f32s(&mut buf, "logits")?),
            TAG_HYPOTHESIS => {
                let symbols = get_u32s(&mut buf, "hypothesis symbols")?;
                need(&buf, 6, "hypothesis fields")?;
                ServerMsg::Hypothesis {
                    symbols,
                    score: buf.get_f32_le(),
                    endpoint: buf.get_u8() != 0,
                    is_final: buf.get_u8() != 0,
                }
            }
            TAG_DONE => {
                need(&buf, 4, "done frames")?;
                ServerMsg::Done {
                    frames: buf.get_u32_le(),
                }
            }
            TAG_REJECT => {
                need(&buf, 1, "reject code")?;
                let c = buf.get_u8();
                ServerMsg::Reject {
                    code: RejectCode::from_code(c).ok_or(ProtocolError::BadRejectCode(c))?,
                }
            }
            t => return Err(ProtocolError::UnknownTag(t)),
        };
        done(buf)?;
        Ok(msg)
    }
}

/// Encodes `msg` as a complete wire frame (length prefix + payload) into
/// `out` — the send-side helper both endpoints use.
pub fn put_client_msg(out: &mut Vec<u8>, msg: &ClientMsg) {
    let mut payload = Vec::new();
    msg.encode_payload(&mut payload);
    rtm_tensor::wire::put_frame(out, &payload);
}

/// Server-side counterpart of [`put_client_msg`].
pub fn put_server_msg(out: &mut Vec<u8>, msg: &ServerMsg) {
    let mut payload = Vec::new();
    msg.encode_payload(&mut payload);
    rtm_tensor::wire::put_frame(out, &payload);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_tensor::wire::FrameDecoder;

    #[test]
    fn every_message_roundtrips_through_the_framed_wire() {
        let client = [
            ClientMsg::Start { tenant: 7 },
            ClientMsg::WantHypotheses,
            ClientMsg::Frame(vec![0.5, -1.25, 3.0]),
            ClientMsg::Frame(Vec::new()),
            ClientMsg::End,
        ];
        let mut out = Vec::new();
        for m in &client {
            put_client_msg(&mut out, m);
        }
        let mut dec = FrameDecoder::new();
        dec.push(&out);
        for m in &client {
            let payload = dec.next_frame().unwrap().unwrap();
            assert_eq!(&ClientMsg::decode(&payload).unwrap(), m);
        }
        assert_eq!(dec.next_frame().unwrap(), None);

        let server = [
            ServerMsg::Hello {
                input_dim: 6,
                classes: 4,
                version: PROTOCOL_VERSION,
            },
            ServerMsg::Logits(vec![1.0, 2.0, 3.0, 4.0]),
            ServerMsg::Hypothesis {
                symbols: vec![3, 0, 17],
                score: -4.5,
                endpoint: true,
                is_final: false,
            },
            ServerMsg::Hypothesis {
                symbols: Vec::new(),
                score: 0.0,
                endpoint: false,
                is_final: true,
            },
            ServerMsg::Done { frames: 11 },
            ServerMsg::Reject {
                code: RejectCode::TenantQuota,
            },
        ];
        let mut out = Vec::new();
        for m in &server {
            put_server_msg(&mut out, m);
        }
        let mut dec = FrameDecoder::new();
        dec.push(&out);
        for m in &server {
            let payload = dec.next_frame().unwrap().unwrap();
            assert_eq!(&ServerMsg::decode(&payload).unwrap(), m);
        }
    }

    #[test]
    fn malformed_payloads_decode_to_typed_errors() {
        assert_eq!(ClientMsg::decode(&[]), Err(ProtocolError::Truncated("tag")));
        assert_eq!(ClientMsg::decode(&[99]), Err(ProtocolError::UnknownTag(99)));
        // Frame claiming 2 floats but carrying none.
        assert_eq!(
            ClientMsg::decode(&[super::TAG_FRAME, 2, 0, 0, 0]),
            Err(ProtocolError::Truncated("frame"))
        );
        // Start with garbage after the tenant id.
        assert_eq!(
            ClientMsg::decode(&[super::TAG_START, 1, 0, 0, 0, 0xFF]),
            Err(ProtocolError::Trailing(1))
        );
        assert_eq!(
            ServerMsg::decode(&[super::TAG_REJECT, 200]),
            Err(ProtocolError::BadRejectCode(200))
        );
        assert_eq!(
            ServerMsg::decode(&[super::TAG_HELLO, 1, 0, 0]),
            Err(ProtocolError::Truncated("hello dims"))
        );
        // Hypothesis with symbols but the trailing fields chopped off.
        assert_eq!(
            ServerMsg::decode(&[super::TAG_HYPOTHESIS, 1, 0, 0, 0, 5, 0, 0, 0]),
            Err(ProtocolError::Truncated("hypothesis fields"))
        );
        // A frame-count prefix near usize::MAX must not overflow the
        // bounds check into a bogus "enough bytes" answer.
        let mut huge = vec![super::TAG_FRAME];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            ClientMsg::decode(&huge),
            Err(ProtocolError::Truncated("frame"))
        );
    }

    #[test]
    fn legacy_eight_byte_hello_decodes_as_version_one() {
        // The pre-streaming wire form: tag + two u32 dims, no version.
        let mut legacy = vec![super::TAG_HELLO];
        legacy.extend_from_slice(&6u32.to_le_bytes());
        legacy.extend_from_slice(&4u32.to_le_bytes());
        assert_eq!(
            ServerMsg::decode(&legacy),
            Ok(ServerMsg::Hello {
                input_dim: 6,
                classes: 4,
                version: 1,
            })
        );
        // Bytes past the version field are still rejected.
        let mut overlong = legacy.clone();
        overlong.extend_from_slice(&2u32.to_le_bytes());
        overlong.push(0xFF);
        assert_eq!(
            ServerMsg::decode(&overlong),
            Err(ProtocolError::Trailing(1))
        );
    }

    #[test]
    fn reject_codes_roundtrip_and_label() {
        for code in [
            RejectCode::Capacity,
            RejectCode::TenantQuota,
            RejectCode::Quarantined,
        ] {
            assert_eq!(RejectCode::from_code(code.code()), Some(code));
            assert!(!code.tag().is_empty());
        }
        assert_eq!(RejectCode::from_code(0), None);
    }
}
