//! The `rtm serve` front end: a std-only, non-blocking TCP server with
//! continuous batching.
//!
//! One thread owns everything — the listener, every connection, and the
//! [`BatchedSession`] — and spins a readiness loop: accept until the
//! listener would block, read every socket until it would block, admit
//! parked streams into free lanes, run **one** batched step over whichever
//! active streams have a frame buffered (the continuous-batching core:
//! lanes join and retire mid-flight, the batch never waits for stragglers),
//! then flush outboxes until they would block. No `epoll`/`mio`/`tokio` —
//! `TcpListener::set_nonblocking` plus a bounded idle sleep is the whole
//! event mechanism, which keeps the server offline-safe and registry-free.
//!
//! Back-pressure and failure containment:
//! - the connection table is bounded ([`ServeOptions::max_conns`]); excess
//!   connections are greeted, rejected and closed,
//! - per-tenant concurrent streams are bounded
//!   ([`ServeOptions::tenant_quota`]),
//! - the parked backlog is bounded by the session's
//!   [`AdmissionConfig`](super::AdmissionConfig) under its
//!   [`ShedPolicy`](super::ShedPolicy),
//! - a malformed message, an oversized length prefix or a wrong-width
//!   frame drops *that* connection (and frees its lane); every other
//!   stream's logits are untouched — the bit-exactness contract of
//!   [`BatchedSession::step`] holds per lane regardless of which
//!   neighbours come and go.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rtm_tensor::wire::FrameDecoder;
use rtm_trace::key;

use super::protocol::{put_server_msg, ClientMsg, RejectCode, ServerMsg};
use super::ServeStats;
use crate::config::RuntimeConfig;
use crate::deploy::{BatchedSession, CompiledNetwork};

/// Knobs of the TCP front end (the batching/admission knobs live in
/// [`RuntimeConfig`]; these bound the socket layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Loopback port to bind; `0` (the default) asks the OS for an
    /// ephemeral port — read it back from [`Server::local_addr`].
    pub port: u16,
    /// Maximum simultaneously open connections; beyond it a new connection
    /// is greeted, sent [`RejectCode::Capacity`] and closed.
    pub max_conns: usize,
    /// Maximum concurrent streams (parked or active) per tenant id;
    /// `usize::MAX` (the default) disables the quota.
    pub tenant_quota: usize,
    /// Stop serving after this many streams finish (complete, shed,
    /// quarantined or disconnected): the listener closes to new work and
    /// [`Server::run`] returns once in-flight connections drain. `None`
    /// (the default) serves until the stop flag.
    pub max_streams: Option<usize>,
    /// Event-loop sleep when a pass makes no progress, in microseconds —
    /// the poll interval of the readiness loop.
    pub idle_sleep_us: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            port: 0,
            max_conns: 64,
            tenant_quota: usize::MAX,
            max_streams: None,
            idle_sleep_us: 500,
        }
    }
}

impl ServeOptions {
    /// Binds a specific port instead of an OS-assigned one.
    pub fn with_port(mut self, port: u16) -> ServeOptions {
        self.port = port;
        self
    }

    /// Bounds the connection table.
    ///
    /// # Panics
    ///
    /// Panics if `max_conns == 0`.
    pub fn with_max_conns(mut self, max_conns: usize) -> ServeOptions {
        assert!(max_conns > 0, "connection bound must be positive");
        self.max_conns = max_conns;
        self
    }

    /// Bounds concurrent streams per tenant.
    pub fn with_tenant_quota(mut self, quota: usize) -> ServeOptions {
        self.tenant_quota = quota;
        self
    }

    /// Serves `n` streams, then shuts down cleanly.
    pub fn with_max_streams(mut self, n: usize) -> ServeOptions {
        self.max_streams = Some(n);
        self
    }

    /// Sets the idle-poll interval.
    pub fn with_idle_sleep_us(mut self, us: u64) -> ServeOptions {
        self.idle_sleep_us = us;
        self
    }
}

/// Connection lifecycle. `Parked` and `Active` are the started states that
/// count against the tenant quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Greeted; waiting for `Start`.
    AwaitStart,
    /// Started; waiting in the admission queue for a lane.
    Parked,
    /// Holding a batching lane.
    Active,
    /// Terminal messages queued; drop once the outbox flushes.
    Closing,
}

struct Conn {
    stream: TcpStream,
    token: usize,
    tenant: u32,
    phase: Phase,
    decoder: FrameDecoder,
    /// Decoded frames not yet stepped (the per-stream input queue the
    /// batcher pulls from, one frame per step).
    inbox: VecDeque<Vec<f32>>,
    outbox: Vec<u8>,
    out_pos: usize,
    /// Client sent `End`; `Done` goes out once the inbox drains.
    ended: bool,
    frames_out: u32,
    /// Socket unusable (EOF, reset, protocol error): drop without
    /// flushing.
    dead: bool,
    /// Keeps the connection's lifetime visible in the trace timeline.
    _span: rtm_trace::SpanGuard,
}

impl Conn {
    /// Started streams are quota-relevant and count as "finished" when
    /// they terminate.
    fn started(&self) -> bool {
        matches!(self.phase, Phase::Parked | Phase::Active)
    }

    fn queue_msg(&mut self, msg: &ServerMsg) {
        put_server_msg(&mut self.outbox, msg);
    }
}

/// The `rtm serve` server: bind once, then [`run`](Server::run) the
/// readiness loop to completion.
pub struct Server<'a> {
    listener: TcpListener,
    addr: SocketAddr,
    session: BatchedSession<'a>,
    opts: ServeOptions,
    conns: Vec<Conn>,
    /// Tokens of started streams awaiting a lane, in admission order.
    parked: VecDeque<usize>,
    next_token: usize,
    /// Scheduling steps run (the deadline-accounting clock).
    steps: usize,
    /// Streams that reached a terminal state (served, shed, quarantined
    /// or disconnected) — the [`ServeOptions::max_streams`] clock.
    finished: usize,
    input_dim: usize,
    classes: usize,
}

impl<'a> Server<'a> {
    /// Binds a loopback listener and prepares a batched session, all sized
    /// by `config`: lanes = `config.batch`, admission = `config.admission`,
    /// health = `config.resolved_health()`, socket bounds = `config.serve`.
    ///
    /// # Errors
    ///
    /// Propagates the bind/configure `io::Error`.
    pub fn bind(
        net: &'a CompiledNetwork,
        exec: &'a rtm_exec::Executor,
        config: &RuntimeConfig,
    ) -> std::io::Result<Server<'a>> {
        let opts = config.serve;
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, opts.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let session = BatchedSession::new(net, exec, config.batch)
            .with_admission(config.admission)
            .with_health(config.resolved_health());
        Ok(Server {
            listener,
            addr,
            session,
            opts,
            conns: Vec::new(),
            parked: VecDeque::new(),
            next_token: 0,
            steps: 0,
            finished: 0,
            input_dim: net.input_dim(),
            classes: net.num_classes(),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ServeStats {
        self.session.stats()
    }

    /// Runs the readiness loop until [`ServeOptions::max_streams`] streams
    /// have finished and drained (forever when unset).
    ///
    /// # Errors
    ///
    /// Propagates listener `io::Error`s (per-connection socket errors are
    /// handled as disconnects, not propagated).
    pub fn run(&mut self) -> std::io::Result<ServeStats> {
        self.run_until(&AtomicBool::new(false))
    }

    /// [`run`](Server::run), but also returns promptly once `stop` is set
    /// (in-flight streams are abandoned, sockets closed).
    ///
    /// # Errors
    ///
    /// Propagates listener `io::Error`s.
    pub fn run_until(&mut self, stop: &AtomicBool) -> std::io::Result<ServeStats> {
        let _span = rtm_trace::span("serve.run");
        loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let draining = self.opts.max_streams.is_some_and(|n| self.finished >= n);
            let mut progress = false;
            if !draining {
                progress |= self.accept_ready()?;
            }
            progress |= self.read_ready();
            self.admit_and_shed();
            progress |= self.step_once();
            progress |= self.write_ready();
            self.reap();
            if rtm_trace::enabled() {
                self.session.trace_flush();
                rtm_trace::gauge(key::SERVE_QUEUE_DEPTH, self.parked.len() as f64);
                rtm_trace::gauge(key::SERVE_CONNS, self.conns.len() as f64);
            }
            if draining && self.conns.is_empty() {
                break;
            }
            if !progress {
                std::thread::sleep(Duration::from_micros(self.opts.idle_sleep_us));
            }
        }
        self.session.drain();
        self.session.trace_flush();
        Ok(self.session.stats())
    }

    /// Accepts until the listener would block; over-capacity connections
    /// are greeted, rejected and queued for close.
    fn accept_ready(&mut self) -> std::io::Result<bool> {
        let mut any = false;
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            any = true;
            stream.set_nonblocking(true)?;
            // Latency over throughput for 4-byte-prefixed frames.
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            let mut conn = Conn {
                stream,
                token,
                tenant: 0,
                phase: Phase::AwaitStart,
                decoder: FrameDecoder::new(),
                inbox: VecDeque::new(),
                outbox: Vec::new(),
                out_pos: 0,
                ended: false,
                frames_out: 0,
                dead: false,
                _span: rtm_trace::span("serve.conn"),
            };
            conn.queue_msg(&ServerMsg::Hello {
                input_dim: self.input_dim as u32,
                classes: self.classes as u32,
            });
            if self.conns.len() >= self.opts.max_conns {
                conn.queue_msg(&ServerMsg::Reject {
                    code: RejectCode::Capacity,
                });
                conn.phase = Phase::Closing;
                self.session.mark_shed();
            }
            self.conns.push(conn);
        }
        Ok(any)
    }

    /// Reads every socket until it would block and decodes buffered bytes
    /// into protocol messages. A connection that misbehaves (bad framing,
    /// bad message, wrong frame width, messages out of phase) is killed in
    /// place; its lane, if any, is freed for the next parked stream.
    fn read_ready(&mut self) -> bool {
        let mut any = false;
        let mut buf = [0u8; 8192];
        // `Closing` connections are still read (and their messages
        // discarded): leaving bytes unread would turn the eventual close
        // into a TCP reset that can destroy the in-flight `Reject`/`Done`.
        for i in 0..self.conns.len() {
            if self.conns[i].dead {
                continue;
            }
            let mut eof = false;
            loop {
                match self.conns[i].stream.read(&mut buf) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        rtm_trace::count(key::SERVE_BYTES_IN, n as u64);
                        self.conns[i].decoder.push(&buf[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            let mut violation = false;
            loop {
                match self.conns[i].decoder.next_frame() {
                    Ok(Some(payload)) => match ClientMsg::decode(&payload) {
                        Ok(msg) => {
                            if !self.apply_msg(i, msg) {
                                violation = true;
                                break;
                            }
                        }
                        Err(_) => {
                            violation = true;
                            break;
                        }
                    },
                    Ok(None) => break,
                    Err(_) => {
                        violation = true;
                        break;
                    }
                }
            }
            if violation {
                rtm_trace::count(key::SERVE_PROTOCOL_ERRORS, 1);
                self.kill(i);
            } else if eof {
                // EOF after `End` (or after the server already queued the
                // stream's terminal message) is the client closing
                // politely; anything earlier is a mid-stream disconnect.
                if !self.conns[i].ended && self.conns[i].phase != Phase::Closing {
                    rtm_trace::count(key::SERVE_DISCONNECTS, 1);
                }
                self.kill(i);
            }
        }
        any
    }

    /// Applies one decoded message to connection `i`; `false` means the
    /// message was illegal in the connection's phase (a protocol
    /// violation).
    fn apply_msg(&mut self, i: usize, msg: ClientMsg) -> bool {
        if self.conns[i].phase == Phase::Closing {
            // The stream's fate is already sealed (rejected or done);
            // whatever the client pipelined behind it is moot, not a
            // violation — discard so the terminal message still flushes.
            return true;
        }
        match msg {
            ClientMsg::Start { tenant } => {
                if self.conns[i].phase != Phase::AwaitStart {
                    return false;
                }
                let held = self
                    .conns
                    .iter()
                    .filter(|c| !c.dead && c.started() && c.tenant == tenant)
                    .count();
                if held >= self.opts.tenant_quota {
                    self.conns[i].queue_msg(&ServerMsg::Reject {
                        code: RejectCode::TenantQuota,
                    });
                    self.conns[i].phase = Phase::Closing;
                    self.session.mark_shed();
                    self.finished += 1;
                } else {
                    self.conns[i].tenant = tenant;
                    self.conns[i].phase = Phase::Parked;
                    self.parked.push_back(self.conns[i].token);
                }
                true
            }
            ClientMsg::Frame(xs) => {
                let c = &mut self.conns[i];
                if !c.started() || c.ended || xs.len() != self.input_dim {
                    return false;
                }
                c.inbox.push_back(xs);
                true
            }
            ClientMsg::End => {
                let c = &mut self.conns[i];
                if !c.started() || c.ended {
                    return false;
                }
                c.ended = true;
                true
            }
        }
    }

    /// Moves parked streams into free lanes (continuous batching: a lane
    /// freed this step is refilled before the next), then sheds whatever
    /// backlog exceeds the admission queue depth.
    fn admit_and_shed(&mut self) {
        while !self.session.is_full() {
            let Some(token) = self.parked.pop_front() else {
                break;
            };
            let Some(i) = self.conn_index(token) else {
                continue;
            };
            self.session.admit(token);
            self.conns[i].phase = Phase::Active;
            if self
                .session
                .admission()
                .deadline_steps
                .is_some_and(|d| self.steps > d)
            {
                self.session.mark_deadline_missed();
            }
        }
        while self.parked.len() > self.session.admission().queue_depth {
            let victim = match self.session.admission().shed {
                super::ShedPolicy::RejectNew => self.parked.pop_back(),
                super::ShedPolicy::DropOldest => self.parked.pop_front(),
            };
            let Some(i) = victim.and_then(|t| self.conn_index(t)) else {
                continue;
            };
            self.conns[i].queue_msg(&ServerMsg::Reject {
                code: RejectCode::Capacity,
            });
            self.conns[i].phase = Phase::Closing;
            self.session.mark_shed();
            self.finished += 1;
        }
    }

    /// Runs one batched step over every active stream with a buffered
    /// frame and routes the logits back to their connections. Streams
    /// whose inbox is drained after `End` retire and get `Done`.
    fn step_once(&mut self) -> bool {
        let mut ready: Vec<(usize, &[f32])> = Vec::new();
        for c in &self.conns {
            if c.phase == Phase::Active && !c.dead {
                if let Some(frame) = c.inbox.front() {
                    ready.push((c.token, frame.as_slice()));
                }
            }
        }
        let stepped = !ready.is_empty();
        if stepped {
            // Frame widths were validated at receive time, so the only
            // step errors left are executor-internal; those are fatal to
            // the process, not to a connection.
            let out = self.session.step(&ready).expect("batched step failed");
            self.steps += 1;
            for (token, row) in out.logits {
                if let Some(i) = self.conn_index(token) {
                    self.conns[i].inbox.pop_front();
                    self.conns[i].frames_out += 1;
                    self.conns[i].queue_msg(&ServerMsg::Logits(row));
                }
            }
            for token in out.quarantined {
                if let Some(i) = self.conn_index(token) {
                    self.conns[i].queue_msg(&ServerMsg::Reject {
                        code: RejectCode::Quarantined,
                    });
                    self.conns[i].phase = Phase::Closing;
                    self.finished += 1;
                }
            }
        }
        // Retire streams that have answered everything they will be sent.
        for i in 0..self.conns.len() {
            let c = &self.conns[i];
            if c.phase == Phase::Active && c.ended && c.inbox.is_empty() {
                self.session.retire(c.token);
                self.session.mark_completed();
                let frames = c.frames_out;
                self.conns[i].queue_msg(&ServerMsg::Done { frames });
                self.conns[i].phase = Phase::Closing;
                self.finished += 1;
            }
        }
        stepped
    }

    /// Flushes every outbox until the socket would block.
    fn write_ready(&mut self) -> bool {
        let mut any = false;
        for c in &mut self.conns {
            if c.dead {
                continue;
            }
            while c.out_pos < c.outbox.len() {
                match c.stream.write(&c.outbox[c.out_pos..]) {
                    Ok(0) => {
                        c.dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        rtm_trace::count(key::SERVE_BYTES_OUT, n as u64);
                        c.out_pos += n;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        c.dead = true;
                        break;
                    }
                }
            }
            if c.out_pos == c.outbox.len() && c.out_pos > 0 {
                c.outbox.clear();
                c.out_pos = 0;
            }
        }
        any
    }

    /// Marks connection `i` unusable and releases everything it holds: its
    /// lane (if active), its parked slot, and its finished-stream tick.
    fn kill(&mut self, i: usize) {
        let token = self.conns[i].token;
        if self.conns[i].phase == Phase::Active {
            self.session.retire(token);
        }
        if self.conns[i].started() {
            self.finished += 1;
        }
        self.parked.retain(|&t| t != token);
        self.conns[i].dead = true;
    }

    /// Drops dead connections and flushed `Closing` connections.
    fn reap(&mut self) {
        self.conns
            .retain(|c| !(c.dead || c.phase == Phase::Closing && c.out_pos == c.outbox.len()));
    }

    fn conn_index(&self, token: usize) -> Option<usize> {
        self.conns.iter().position(|c| c.token == token)
    }
}
