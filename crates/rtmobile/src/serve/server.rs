//! The `rtm serve` front end: a std-only, non-blocking TCP server with
//! continuous batching and zero-downtime model hot swap.
//!
//! One thread owns everything — the listener, every connection, and the
//! per-generation [`BatchedSession`]s — and spins a readiness loop: accept
//! until the listener would block, read every socket until it would block,
//! admit parked streams into free lanes, run **one** batched step over
//! whichever active streams have a frame buffered (the continuous-batching
//! core: lanes join and retire mid-flight, the batch never waits for
//! stragglers), then flush outboxes until they would block. No
//! `epoll`/`mio`/`tokio` — `TcpListener::set_nonblocking` plus a bounded
//! idle sleep is the whole event mechanism, which keeps the server
//! offline-safe and registry-free.
//!
//! Hot swap (DESIGN.md §15): the compiled network lives inside a
//! [`CompiledBundle`] behind an `Arc`, and the server keeps a stack of
//! **generation slots**, each pairing a bundle with its own
//! [`BatchedSession`]. New streams are always admitted to the newest slot;
//! older slots keep stepping their in-flight streams until they drain,
//! then are reaped. When a [`Reloader`] delivers a validated candidate,
//! promotion is a `Vec::push` — no lock, no pause, no dropped connection.
//! If the new generation's quarantine rate trips the configured threshold,
//! the server rolls back by re-promoting the previous bundle. Every
//! attempt/success/refusal/rollback is counted in [`ReloadStats`] and the
//! `serve.reload.*` trace family, with `serve.generation` as a gauge.
//!
//! Back-pressure and failure containment:
//! - the connection table is bounded ([`ServeOptions::max_conns`]); excess
//!   connections are greeted, rejected and closed,
//! - per-tenant concurrent streams are bounded
//!   ([`ServeOptions::tenant_quota`]),
//! - the parked backlog is bounded by the session's
//!   [`AdmissionConfig`](super::AdmissionConfig) under its
//!   [`ShedPolicy`](super::ShedPolicy),
//! - a malformed message, an oversized length prefix or a wrong-width
//!   frame drops *that* connection (and frees its lane); every other
//!   stream's logits are untouched — the bit-exactness contract of
//!   [`BatchedSession::step`] holds per lane regardless of which
//!   neighbours come and go, and holds per *generation* across a swap:
//!   a stream admitted on generation N computes on N's weights to its
//!   last frame.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rtm_tensor::wire::FrameDecoder;
use rtm_trace::key;

use super::protocol::{put_server_msg, ClientMsg, RejectCode, ServerMsg, PROTOCOL_VERSION};
use super::reload::{ReloadConfig, ReloadEvent, ReloadStats, Reloader};
use super::{AdmissionConfig, ServeStats};
use crate::bundle::CompiledBundle;
use crate::config::RuntimeConfig;
use crate::deploy::{BatchedSession, CompiledNetwork};
use crate::health::HealthPolicy;

/// Knobs of the TCP front end (the batching/admission knobs live in
/// [`RuntimeConfig`]; these bound the socket layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Loopback port to bind; `0` (the default) asks the OS for an
    /// ephemeral port — read it back from [`Server::local_addr`].
    pub port: u16,
    /// Maximum simultaneously open connections; beyond it a new connection
    /// is greeted, sent [`RejectCode::Capacity`] and closed.
    pub max_conns: usize,
    /// Maximum concurrent streams (parked or active) per tenant id;
    /// `usize::MAX` (the default) disables the quota.
    pub tenant_quota: usize,
    /// Stop serving after this many streams finish (complete, shed,
    /// quarantined or disconnected): the listener closes to new work and
    /// [`Server::run`] returns once in-flight connections drain. `None`
    /// (the default) serves until the stop flag.
    pub max_streams: Option<usize>,
    /// Event-loop sleep when a pass makes no progress, in microseconds —
    /// the poll interval of the readiness loop.
    pub idle_sleep_us: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            port: 0,
            max_conns: 64,
            tenant_quota: usize::MAX,
            max_streams: None,
            idle_sleep_us: 500,
        }
    }
}

impl ServeOptions {
    /// Binds a specific port instead of an OS-assigned one.
    pub fn with_port(mut self, port: u16) -> ServeOptions {
        self.port = port;
        self
    }

    /// Bounds the connection table.
    ///
    /// # Panics
    ///
    /// Panics if `max_conns == 0`.
    pub fn with_max_conns(mut self, max_conns: usize) -> ServeOptions {
        assert!(max_conns > 0, "connection bound must be positive");
        self.max_conns = max_conns;
        self
    }

    /// Bounds concurrent streams per tenant.
    pub fn with_tenant_quota(mut self, quota: usize) -> ServeOptions {
        self.tenant_quota = quota;
        self
    }

    /// Serves `n` streams, then shuts down cleanly.
    pub fn with_max_streams(mut self, n: usize) -> ServeOptions {
        self.max_streams = Some(n);
        self
    }

    /// Sets the idle-poll interval.
    pub fn with_idle_sleep_us(mut self, us: u64) -> ServeOptions {
        self.idle_sleep_us = us;
        self
    }
}

/// Connection lifecycle. `Parked` and `Active` are the started states that
/// count against the tenant quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Greeted; waiting for `Start`.
    AwaitStart,
    /// Started; waiting in the admission queue for a lane.
    Parked,
    /// Holding a batching lane.
    Active,
    /// Terminal messages queued; drop once the outbox flushes.
    Closing,
}

struct Conn {
    stream: TcpStream,
    token: usize,
    tenant: u32,
    phase: Phase,
    /// Generation slot holding this stream's lane (set at admission; a
    /// stream computes on that slot's weights for its whole life, even
    /// across swaps).
    seq: u64,
    decoder: FrameDecoder,
    /// Decoded frames not yet stepped (the per-stream input queue the
    /// batcher pulls from, one frame per step).
    inbox: VecDeque<Vec<f32>>,
    outbox: Vec<u8>,
    out_pos: usize,
    /// Client sent `End`; `Done` goes out once the inbox drains.
    ended: bool,
    /// Client opted into streaming decode ([`ClientMsg::WantHypotheses`]):
    /// every `Logits` is followed by a `Hypothesis`, and a final one
    /// precedes `Done`. Off (the default) keeps the v1 message sequence.
    wants_hypotheses: bool,
    /// Last hypothesis message sent (re-sent verbatim on frames where the
    /// partial did not change, keeping the Logits/Hypothesis pairing
    /// deterministic for the blocking client).
    last_hyp: Option<ServerMsg>,
    frames_out: u32,
    /// Socket unusable (EOF, reset, protocol error): drop without
    /// flushing.
    dead: bool,
    /// Keeps the connection's lifetime visible in the trace timeline.
    _span: rtm_trace::SpanGuard,
}

impl Conn {
    /// Started streams are quota-relevant and count as "finished" when
    /// they terminate.
    fn started(&self) -> bool {
        matches!(self.phase, Phase::Parked | Phase::Active)
    }

    fn queue_msg(&mut self, msg: &ServerMsg) {
        put_server_msg(&mut self.outbox, msg);
    }
}

/// Converts a decoder hypothesis into its wire message.
fn hypothesis_msg(hyp: &rtm_speech::Hypothesis, is_final: bool) -> ServerMsg {
    ServerMsg::Hypothesis {
        symbols: hyp.symbols.iter().map(|&s| s as u32).collect(),
        score: hyp.score,
        endpoint: hyp.endpoint,
        is_final,
    }
}

/// One model generation being served: its bundle and the batched session
/// holding its in-flight lanes. The newest slot admits; older slots only
/// drain.
struct GenSlot<'a> {
    /// Monotonic promotion counter (distinct from the bundle's generation
    /// stamp, which an operator could republish).
    seq: u64,
    bundle: CompiledBundle,
    session: BatchedSession<'a>,
}

/// The `rtm serve` server: bind once, then [`run`](Server::run) the
/// readiness loop to completion.
pub struct Server<'a> {
    listener: TcpListener,
    addr: SocketAddr,
    exec: &'a rtm_exec::Executor,
    /// Lane capacity, admission bounds, health policy and decoder every
    /// generation's session is built with.
    batch: usize,
    admission: AdmissionConfig,
    health: HealthPolicy,
    decoder: crate::config::DecoderChoice,
    /// Generation slots, oldest first; the last is the active one.
    slots: Vec<GenSlot<'a>>,
    next_seq: u64,
    /// Counters of slots already reaped (folded into [`Server::stats`]).
    retired: ServeStats,
    /// The bundle serving before the most recent swap — the rollback
    /// target. Cleared once consumed (one rollback per swap) or once a
    /// further swap replaces it.
    previous: Option<CompiledBundle>,
    reloader: Option<Reloader>,
    reload_stats: ReloadStats,
    opts: ServeOptions,
    conns: Vec<Conn>,
    /// Tokens of started streams awaiting a lane, in admission order.
    parked: VecDeque<usize>,
    next_token: usize,
    /// Scheduling steps run (the deadline-accounting clock).
    steps: usize,
    /// Streams that reached a terminal state (served, shed, quarantined
    /// or disconnected) — the [`ServeOptions::max_streams`] clock.
    finished: usize,
    input_dim: usize,
    classes: usize,
}

impl<'a> Server<'a> {
    /// Binds a loopback listener and prepares a batched session, all sized
    /// by `config`: lanes = `config.batch`, admission = `config.admission`,
    /// health = `config.resolved_health()`, socket bounds = `config.serve`.
    ///
    /// The network is wrapped in an unstamped [`CompiledBundle`]; use
    /// [`Server::bind_bundle`] to serve a loaded bundle with its metadata
    /// (and a meaningful generation gauge).
    ///
    /// # Errors
    ///
    /// Propagates the bind/configure `io::Error`.
    pub fn bind(
        net: &CompiledNetwork,
        exec: &'a rtm_exec::Executor,
        config: &RuntimeConfig,
    ) -> std::io::Result<Server<'a>> {
        Server::bind_bundle(CompiledBundle::from_network(net.clone()), exec, config)
    }

    /// [`Server::bind`] over a compiled bundle: the generation stamp and
    /// health metadata ride along, and a [`Reloader`] enabled via
    /// [`Server::enable_reload`] can hot-swap it.
    ///
    /// # Errors
    ///
    /// Propagates the bind/configure `io::Error`.
    pub fn bind_bundle(
        bundle: CompiledBundle,
        exec: &'a rtm_exec::Executor,
        config: &RuntimeConfig,
    ) -> std::io::Result<Server<'a>> {
        let opts = config.serve;
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, opts.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (batch, admission, health) = (config.batch, config.admission, config.resolved_health());
        let decoder = config.resolved_decoder();
        let session = BatchedSession::shared(Arc::clone(&bundle.net), exec, batch)
            .with_admission(admission)
            .with_health(health)
            .with_decoder(decoder);
        let input_dim = bundle.net.input_dim();
        let classes = bundle.net.num_classes();
        let generation = bundle.generation();
        let server = Server {
            listener,
            addr,
            exec,
            batch,
            admission,
            health,
            decoder,
            slots: vec![GenSlot {
                seq: 0,
                bundle,
                session,
            }],
            next_seq: 0,
            retired: ServeStats::default(),
            previous: None,
            reloader: None,
            reload_stats: ReloadStats {
                generation,
                ..ReloadStats::default()
            },
            opts,
            conns: Vec::new(),
            parked: VecDeque::new(),
            next_token: 0,
            steps: 0,
            finished: 0,
            input_dim,
            classes,
        };
        Ok(server)
    }

    /// Arms hot reloading: `path` is fingerprint-polled during the run and
    /// validated bundles published there are atomically swapped in. The
    /// file currently at `path` (if any) is treated as already served.
    pub fn enable_reload(&mut self, path: PathBuf, config: ReloadConfig) {
        self.reloader = Some(Reloader::new(
            path,
            config,
            self.health,
            self.input_dim,
            self.classes,
        ));
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters accumulated so far, across every generation served.
    pub fn stats(&self) -> ServeStats {
        self.slots
            .iter()
            .fold(self.retired, |acc, s| acc.merged(s.session.stats()))
    }

    /// Reload counters (zero everything when reloading was never enabled;
    /// `generation` always reflects the bundle admitting new streams).
    pub fn reload_stats(&self) -> ReloadStats {
        ReloadStats {
            generation: self.active().bundle.generation(),
            ..self.reload_stats
        }
    }

    fn active(&self) -> &GenSlot<'a> {
        self.slots.last().expect("at least one generation slot")
    }

    fn active_mut(&mut self) -> &mut GenSlot<'a> {
        self.slots.last_mut().expect("at least one generation slot")
    }

    fn slot_mut(&mut self, seq: u64) -> Option<&mut GenSlot<'a>> {
        self.slots.iter_mut().find(|s| s.seq == seq)
    }

    /// Promotes `bundle` to the active generation: new streams admit to a
    /// fresh session over it; existing slots keep draining their in-flight
    /// streams on their own weights.
    fn promote(&mut self, bundle: CompiledBundle) {
        let session = BatchedSession::shared(Arc::clone(&bundle.net), self.exec, self.batch)
            .with_admission(self.admission)
            .with_health(self.health)
            .with_decoder(self.decoder);
        self.next_seq += 1;
        self.slots.push(GenSlot {
            seq: self.next_seq,
            bundle,
            session,
        });
        rtm_trace::gauge(
            key::SERVE_GENERATION,
            self.active().bundle.generation() as f64,
        );
    }

    /// Drives the reload state machine one non-blocking tick.
    fn poll_reload(&mut self) {
        let Some(reloader) = &mut self.reloader else {
            return;
        };
        match reloader.poll() {
            None => {}
            Some(ReloadEvent::Started) => {
                self.reload_stats.attempts += 1;
                rtm_trace::count(key::SERVE_RELOAD_ATTEMPT, 1);
            }
            Some(ReloadEvent::Refused(_reason)) => {
                self.reload_stats.refusals += 1;
                rtm_trace::count(key::SERVE_RELOAD_REFUSED, 1);
            }
            Some(ReloadEvent::Loaded(bundle)) => {
                self.previous = Some(self.active().bundle.clone());
                self.promote(bundle);
                self.reload_stats.successes += 1;
                rtm_trace::count(key::SERVE_RELOAD_SUCCESS, 1);
            }
        }
    }

    /// Rolls back to the pre-swap bundle when the active generation's
    /// quarantine rate trips the configured threshold over a large-enough
    /// admitted sample. One-shot per swap: a consumed rollback target is
    /// not re-armed until the next successful swap.
    fn maybe_rollback(&mut self) {
        if self.previous.is_none() {
            return;
        }
        let Some(reloader) = &self.reloader else {
            return;
        };
        let config = reloader.config();
        let stats = self.active().session.stats();
        if stats.admitted < config.rollback_min_streams.max(1) {
            return;
        }
        let rate = stats.quarantined as f64 / stats.admitted as f64;
        if rate <= config.rollback_quarantine_rate {
            return;
        }
        let target = self.previous.take().expect("checked above");
        self.promote(target);
        self.reload_stats.rollbacks += 1;
        rtm_trace::count(key::SERVE_RELOAD_ROLLBACK, 1);
    }

    /// Drops drained non-active generation slots, folding their counters
    /// into the retired total (and releasing the old weights' `Arc`).
    fn reap_slots(&mut self) {
        if self.slots.len() <= 1 {
            return;
        }
        let last = self.slots.len() - 1;
        for idx in (0..last).rev() {
            if self.slots[idx].session.active_lanes() == 0 {
                let mut slot = self.slots.remove(idx);
                slot.session.trace_flush();
                self.retired = self.retired.merged(slot.session.stats());
            }
        }
    }

    /// Runs the readiness loop until [`ServeOptions::max_streams`] streams
    /// have finished and drained (forever when unset).
    ///
    /// # Errors
    ///
    /// Propagates listener `io::Error`s (per-connection socket errors are
    /// handled as disconnects, not propagated).
    pub fn run(&mut self) -> std::io::Result<ServeStats> {
        self.run_until(&AtomicBool::new(false))
    }

    /// [`run`](Server::run), but also returns promptly once `stop` is set
    /// (in-flight streams are abandoned, sockets closed).
    ///
    /// # Errors
    ///
    /// Propagates listener `io::Error`s.
    pub fn run_until(&mut self, stop: &AtomicBool) -> std::io::Result<ServeStats> {
        let _span = rtm_trace::span("serve.run");
        loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let draining = self.opts.max_streams.is_some_and(|n| self.finished >= n);
            let mut progress = false;
            if !draining {
                progress |= self.accept_ready()?;
            }
            self.poll_reload();
            self.maybe_rollback();
            progress |= self.read_ready();
            self.admit_and_shed();
            progress |= self.step_once();
            progress |= self.write_ready();
            self.reap();
            self.reap_slots();
            if rtm_trace::enabled() {
                for slot in &mut self.slots {
                    slot.session.trace_flush();
                }
                rtm_trace::gauge(key::SERVE_QUEUE_DEPTH, self.parked.len() as f64);
                rtm_trace::gauge(key::SERVE_CONNS, self.conns.len() as f64);
            }
            if draining && self.conns.is_empty() {
                break;
            }
            if !progress {
                std::thread::sleep(Duration::from_micros(self.opts.idle_sleep_us));
            }
        }
        for slot in &mut self.slots {
            slot.session.drain();
            slot.session.trace_flush();
        }
        Ok(self.stats())
    }

    /// Accepts until the listener would block; over-capacity connections
    /// are greeted, rejected and queued for close.
    fn accept_ready(&mut self) -> std::io::Result<bool> {
        let mut any = false;
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            any = true;
            stream.set_nonblocking(true)?;
            // Latency over throughput for 4-byte-prefixed frames.
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            let mut conn = Conn {
                stream,
                token,
                tenant: 0,
                phase: Phase::AwaitStart,
                seq: 0,
                decoder: FrameDecoder::new(),
                inbox: VecDeque::new(),
                outbox: Vec::new(),
                out_pos: 0,
                ended: false,
                wants_hypotheses: false,
                last_hyp: None,
                frames_out: 0,
                dead: false,
                _span: rtm_trace::span("serve.conn"),
            };
            conn.queue_msg(&ServerMsg::Hello {
                input_dim: self.input_dim as u32,
                classes: self.classes as u32,
                version: PROTOCOL_VERSION,
            });
            if self.conns.len() >= self.opts.max_conns {
                conn.queue_msg(&ServerMsg::Reject {
                    code: RejectCode::Capacity,
                });
                conn.phase = Phase::Closing;
                self.active_mut().session.mark_shed();
            }
            self.conns.push(conn);
        }
        Ok(any)
    }

    /// Reads every socket until it would block and decodes buffered bytes
    /// into protocol messages. A connection that misbehaves (bad framing,
    /// bad message, wrong frame width, messages out of phase) is killed in
    /// place; its lane, if any, is freed for the next parked stream.
    fn read_ready(&mut self) -> bool {
        let mut any = false;
        let mut buf = [0u8; 8192];
        // `Closing` connections are still read (and their messages
        // discarded): leaving bytes unread would turn the eventual close
        // into a TCP reset that can destroy the in-flight `Reject`/`Done`.
        for i in 0..self.conns.len() {
            if self.conns[i].dead {
                continue;
            }
            let mut eof = false;
            loop {
                match self.conns[i].stream.read(&mut buf) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        rtm_trace::count(key::SERVE_BYTES_IN, n as u64);
                        self.conns[i].decoder.push(&buf[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            let mut violation = false;
            loop {
                match self.conns[i].decoder.next_frame() {
                    Ok(Some(payload)) => match ClientMsg::decode(&payload) {
                        Ok(msg) => {
                            if !self.apply_msg(i, msg) {
                                violation = true;
                                break;
                            }
                        }
                        Err(_) => {
                            violation = true;
                            break;
                        }
                    },
                    Ok(None) => break,
                    Err(_) => {
                        violation = true;
                        break;
                    }
                }
            }
            if violation {
                rtm_trace::count(key::SERVE_PROTOCOL_ERRORS, 1);
                self.kill(i);
            } else if eof {
                // EOF after `End` (or after the server already queued the
                // stream's terminal message) is the client closing
                // politely; anything earlier is a mid-stream disconnect.
                if !self.conns[i].ended && self.conns[i].phase != Phase::Closing {
                    rtm_trace::count(key::SERVE_DISCONNECTS, 1);
                }
                self.kill(i);
            }
        }
        any
    }

    /// Applies one decoded message to connection `i`; `false` means the
    /// message was illegal in the connection's phase (a protocol
    /// violation).
    fn apply_msg(&mut self, i: usize, msg: ClientMsg) -> bool {
        if self.conns[i].phase == Phase::Closing {
            // The stream's fate is already sealed (rejected or done);
            // whatever the client pipelined behind it is moot, not a
            // violation — discard so the terminal message still flushes.
            return true;
        }
        match msg {
            ClientMsg::Start { tenant } => {
                if self.conns[i].phase != Phase::AwaitStart {
                    return false;
                }
                let held = self
                    .conns
                    .iter()
                    .filter(|c| !c.dead && c.started() && c.tenant == tenant)
                    .count();
                if held >= self.opts.tenant_quota {
                    self.conns[i].queue_msg(&ServerMsg::Reject {
                        code: RejectCode::TenantQuota,
                    });
                    self.conns[i].phase = Phase::Closing;
                    self.active_mut().session.mark_shed();
                    self.finished += 1;
                } else {
                    self.conns[i].tenant = tenant;
                    self.conns[i].phase = Phase::Parked;
                    self.parked.push_back(self.conns[i].token);
                }
                true
            }
            ClientMsg::Frame(xs) => {
                let c = &mut self.conns[i];
                if !c.started() || c.ended || xs.len() != self.input_dim {
                    return false;
                }
                c.inbox.push_back(xs);
                true
            }
            ClientMsg::WantHypotheses => {
                let c = &mut self.conns[i];
                if !c.started() || c.ended {
                    return false;
                }
                c.wants_hypotheses = true;
                true
            }
            ClientMsg::End => {
                let c = &mut self.conns[i];
                if !c.started() || c.ended {
                    return false;
                }
                c.ended = true;
                true
            }
        }
    }

    /// Moves parked streams into free lanes of the **active** generation
    /// (continuous batching: a lane freed this step is refilled before the
    /// next; older generations only drain), then sheds whatever backlog
    /// exceeds the admission queue depth.
    fn admit_and_shed(&mut self) {
        while !self.active().session.is_full() {
            let Some(token) = self.parked.pop_front() else {
                break;
            };
            let Some(i) = self.conn_index(token) else {
                continue;
            };
            let seq = self.active().seq;
            self.active_mut().session.admit(token);
            self.conns[i].phase = Phase::Active;
            self.conns[i].seq = seq;
            if self
                .admission
                .deadline_steps
                .is_some_and(|d| self.steps > d)
            {
                self.active_mut().session.mark_deadline_missed();
            }
        }
        while self.parked.len() > self.admission.queue_depth {
            let victim = match self.admission.shed {
                super::ShedPolicy::RejectNew => self.parked.pop_back(),
                super::ShedPolicy::DropOldest => self.parked.pop_front(),
            };
            let Some(i) = victim.and_then(|t| self.conn_index(t)) else {
                continue;
            };
            self.conns[i].queue_msg(&ServerMsg::Reject {
                code: RejectCode::Capacity,
            });
            self.conns[i].phase = Phase::Closing;
            self.active_mut().session.mark_shed();
            self.finished += 1;
        }
    }

    /// Runs one batched step per generation slot over every active stream
    /// with a buffered frame and routes the logits back to their
    /// connections. Streams whose inbox is drained after `End` retire and
    /// get `Done`.
    fn step_once(&mut self) -> bool {
        let mut stepped = false;
        for s in 0..self.slots.len() {
            let seq = self.slots[s].seq;
            let mut ready: Vec<(usize, &[f32])> = Vec::new();
            for c in &self.conns {
                if c.phase == Phase::Active && c.seq == seq && !c.dead {
                    if let Some(frame) = c.inbox.front() {
                        ready.push((c.token, frame.as_slice()));
                    }
                }
            }
            if ready.is_empty() {
                continue;
            }
            stepped = true;
            // Frame widths were validated at receive time, so the only
            // step errors left are executor-internal; those are fatal to
            // the process, not to a connection.
            let out = self.slots[s]
                .session
                .step(&ready)
                .expect("batched step failed");
            self.steps += 1;
            // Every served frame of an opted-in connection gets a
            // [Logits, Hypothesis] pair (unchanged partials are re-sent),
            // so a blocking client can always read both. Streams that
            // never opted in get the exact v1 byte stream.
            let mut changed: std::collections::BTreeMap<usize, rtm_speech::Hypothesis> =
                out.hypotheses.into_iter().collect();
            for (token, row) in out.logits {
                if let Some(i) = self.conn_index(token) {
                    self.conns[i].inbox.pop_front();
                    self.conns[i].frames_out += 1;
                    self.conns[i].queue_msg(&ServerMsg::Logits(row));
                    if self.conns[i].wants_hypotheses {
                        if let Some(hyp) = changed.remove(&token) {
                            self.conns[i].last_hyp = Some(hypothesis_msg(&hyp, false));
                        }
                        let msg = self.conns[i].last_hyp.clone().unwrap_or_else(|| {
                            hypothesis_msg(&rtm_speech::Hypothesis::empty(), false)
                        });
                        self.conns[i].queue_msg(&msg);
                    }
                }
            }
            for token in out.quarantined {
                if let Some(i) = self.conn_index(token) {
                    self.conns[i].queue_msg(&ServerMsg::Reject {
                        code: RejectCode::Quarantined,
                    });
                    self.conns[i].phase = Phase::Closing;
                    self.finished += 1;
                }
            }
        }
        // Retire streams that have answered everything they will be sent.
        for i in 0..self.conns.len() {
            let c = &self.conns[i];
            if c.phase == Phase::Active && c.ended && c.inbox.is_empty() {
                let (token, seq, frames) = (c.token, c.seq, c.frames_out);
                let wants = c.wants_hypotheses;
                let mut final_hyp = None;
                if let Some(slot) = self.slot_mut(seq) {
                    // Finalize (and drop) the lane's decoder state before
                    // the lane itself goes away.
                    final_hyp = slot.session.finish_decode(token);
                    slot.session.retire(token);
                    slot.session.mark_completed();
                }
                if wants {
                    if let Some(hyp) = final_hyp {
                        self.conns[i].queue_msg(&hypothesis_msg(&hyp, true));
                    }
                }
                self.conns[i].queue_msg(&ServerMsg::Done { frames });
                self.conns[i].phase = Phase::Closing;
                self.finished += 1;
            }
        }
        stepped
    }

    /// Flushes every outbox until the socket would block.
    fn write_ready(&mut self) -> bool {
        let mut any = false;
        for c in &mut self.conns {
            if c.dead {
                continue;
            }
            while c.out_pos < c.outbox.len() {
                match c.stream.write(&c.outbox[c.out_pos..]) {
                    Ok(0) => {
                        c.dead = true;
                        break;
                    }
                    Ok(n) => {
                        any = true;
                        rtm_trace::count(key::SERVE_BYTES_OUT, n as u64);
                        c.out_pos += n;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        c.dead = true;
                        break;
                    }
                }
            }
            if c.out_pos == c.outbox.len() && c.out_pos > 0 {
                c.outbox.clear();
                c.out_pos = 0;
            }
        }
        any
    }

    /// Marks connection `i` unusable and releases everything it holds: its
    /// lane (if active, in its own generation's session), its parked slot,
    /// and its finished-stream tick.
    fn kill(&mut self, i: usize) {
        let (token, seq) = (self.conns[i].token, self.conns[i].seq);
        if self.conns[i].phase == Phase::Active {
            if let Some(slot) = self.slot_mut(seq) {
                let _ = slot.session.finish_decode(token);
                slot.session.retire(token);
            }
        }
        if self.conns[i].started() {
            self.finished += 1;
        }
        self.parked.retain(|&t| t != token);
        self.conns[i].dead = true;
    }

    /// Drops dead connections and flushed `Closing` connections.
    fn reap(&mut self) {
        self.conns
            .retain(|c| !(c.dead || c.phase == Phase::Closing && c.out_pos == c.outbox.len()));
    }

    fn conn_index(&self, token: usize) -> Option<usize> {
        self.conns.iter().position(|c| c.token == token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{self, BundleMeta};
    use crate::deploy::RuntimePrecision;
    use crate::serve::client::{RejectedError, StreamClient};
    use crate::serve::protocol::RejectCode;
    use rtm_rnn::model::{GruNetwork, NetworkConfig};
    use std::time::{Duration, Instant};

    fn compiled(seed: u64) -> CompiledNetwork {
        let net = GruNetwork::new(
            &NetworkConfig {
                input_dim: 6,
                hidden_dims: vec![12],
                num_classes: 4,
            },
            seed,
        );
        CompiledNetwork::compile(&net, 4, 2, RuntimePrecision::F16).expect("partition fits")
    }

    /// A network that decodes cleanly and has finite stored weights, but
    /// overflows to `inf` at the head on any real frame — invisible to
    /// load-time validation with the canary disabled, caught only by the
    /// runtime health scan.
    fn poisoned(seed: u64) -> CompiledNetwork {
        let mut bad = compiled(seed);
        let (rows, cols) = (bad.head_w.rows(), bad.head_w.cols());
        bad.head_w = rtm_tensor::Matrix::from_vec(rows, cols, vec![f32::MAX; rows * cols]).unwrap();
        bad.head_b = vec![f32::MAX; bad.head_b.len()];
        bad
    }

    fn frames(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|t| {
                (0..6)
                    .map(|i| (((t * 6 + i) as f32) * 0.43 + 0.2).sin() * 0.6)
                    .collect()
            })
            .collect()
    }

    fn bits(rows: &[Vec<f32>]) -> Vec<Vec<u32>> {
        rows.iter()
            .map(|r| r.iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    /// The streaming-decode wire contract: an opted-in stream gets a
    /// hypothesis with every frame and a final one whose symbols match the
    /// offline decode of the same utterance; a stream that never opts in
    /// receives logits bit-identical to the serial forward — the v1
    /// message sequence, untouched by the new capability.
    #[test]
    fn hypotheses_flow_to_opted_in_streams_only() {
        let net = compiled(3);
        let utterance = frames(12);
        let serial = bits(&net.forward(&utterance));
        let choice = crate::config::DecoderChoice::CtcBeam(2);
        let exec = rtm_exec::Executor::new(1);
        let offline = net.decode_with(&exec, &utterance, choice);

        let stop = AtomicBool::new(false);
        let config = RuntimeConfig::default().with_batch(2).with_decoder(choice);
        std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::channel();
            let (stop, net, config) = (&stop, &net, &config);
            let server_thread = scope.spawn(move || {
                let exec = rtm_exec::Executor::new(config.threads);
                let mut server = Server::bind(net, &exec, config).expect("bind");
                tx.send(server.local_addr()).expect("addr handoff");
                server.run_until(stop).expect("serve")
            });
            let addr = rx.recv().expect("server bound");

            // Opted-in stream: deterministic [Logits, Hypothesis] pairs.
            let mut decoded = StreamClient::connect(addr).expect("connect");
            assert!(decoded.protocol_version >= 2, "server must advertise v2");
            decoded.start(0).expect("start");
            decoded.want_hypotheses().expect("opt in");
            let mut rows = Vec::new();
            let mut partials = Vec::new();
            for f in &utterance {
                let (row, hyp) = decoded.infer_decoded(f).expect("infer");
                assert!(!hyp.is_final, "mid-stream partials are not final");
                rows.push(row);
                partials.push(hyp);
            }
            let (final_hyp, served) = decoded.finish_decoded().expect("finish");
            assert_eq!(served as usize, utterance.len());
            assert!(final_hyp.is_final);
            assert_eq!(bits(&rows), serial, "opt-in never perturbs logits");
            let want: Vec<u32> = offline.symbols.iter().map(|&s| s as u32).collect();
            assert_eq!(final_hyp.symbols, want, "wire decode == offline decode");
            assert!((final_hyp.score - offline.score).abs() < 1e-6);
            // The last partial is a prefix-consistent precursor of the
            // final (same decoder state, pre-finish).
            assert_eq!(partials.len(), utterance.len());

            // Legacy stream on the same server: v1 sequence, identical
            // bits.
            let mut legacy = StreamClient::connect(addr).expect("connect");
            legacy.start(0).expect("start");
            let rows: Vec<Vec<f32>> = utterance
                .iter()
                .map(|f| legacy.infer(f).expect("infer"))
                .collect();
            let served = legacy.finish().expect("finish");
            assert_eq!(served as usize, utterance.len());
            assert_eq!(bits(&rows), serial, "legacy streams stay bit-identical");

            stop.store(true, Ordering::Relaxed);
            server_thread.join().expect("server thread")
        });
    }

    /// The full rollback arc: a bundle that passes every load-time check
    /// (finite weights, matching dimensions, canary disabled) is promoted,
    /// poisons the streams it serves, trips the quarantine-rate guard, and
    /// the server rolls back to the previous generation — all while the
    /// listener keeps answering.
    #[test]
    fn a_toxic_swap_rolls_back_to_the_previous_generation() {
        let dir = std::env::temp_dir().join(format!("rtm-rollback-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.rtm");

        let good = compiled(11);
        let utterance = frames(3);
        let serial = bits(&good.forward(&utterance));
        bundle::write(&path, &good, &BundleMeta::default().with_generation(1)).expect("publish");

        let stop = AtomicBool::new(false);
        let config = RuntimeConfig::default()
            .with_batch(2)
            .with_health(HealthPolicy::Quarantine);
        let (final_stats, reload_stats) = std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::channel();
            let (stop, path) = (&stop, &path);
            let server_thread = scope.spawn(move || {
                let exec = rtm_exec::Executor::new(config.threads);
                let loaded = CompiledBundle::load(path).expect("load gen 1");
                let mut server = Server::bind_bundle(loaded, &exec, &config).expect("bind");
                server.enable_reload(
                    path.clone(),
                    ReloadConfig::default()
                        .with_poll_ms(1)
                        .with_canary_frames(0)
                        .with_rollback_min_streams(1)
                        .with_rollback_quarantine_rate(0.5),
                );
                tx.send(server.local_addr()).expect("addr handoff");
                let stats = server.run_until(stop).expect("serve");
                (stats, server.reload_stats())
            });
            let addr = rx.recv().expect("server bound");

            // Sanity on generation 1: bit-identical to serial.
            let mut client = StreamClient::connect(addr).expect("connect");
            client.start(0).expect("start");
            let first: Vec<Vec<f32>> = utterance
                .iter()
                .map(|f| client.infer(f).expect("infer"))
                .collect();
            client.finish().expect("finish");
            assert_eq!(bits(&first), serial, "gen 1 must match serial");

            // Publish the poison as generation 2. With the canary off it
            // sails through validation and gets promoted.
            bundle::write(
                path,
                &poisoned(11),
                &BundleMeta::default().with_generation(2),
            )
            .expect("publish poison");

            // Probe until a stream is quarantined: the swap has happened
            // and the runtime scan has seen the poison.
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                assert!(Instant::now() < deadline, "swap never observed");
                let mut probe = StreamClient::connect(addr).expect("connect");
                probe.start(0).expect("start");
                match probe.infer(&utterance[0]) {
                    Ok(row) => {
                        // Still on gen 1 (or already rolled back): either
                        // way the row must be gen-1 bits.
                        assert_eq!(bits(&[row])[0], serial[0], "healthy rows must be gen 1");
                        let _ = probe.finish();
                    }
                    Err(e) => {
                        let rejected = e
                            .get_ref()
                            .and_then(|e| e.downcast_ref::<RejectedError>())
                            .expect("typed rejection");
                        assert_eq!(rejected.code, RejectCode::Quarantined);
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }

            // Probe until service recovers: the rollback re-promoted the
            // gen-1 weights, bit for bit.
            loop {
                assert!(Instant::now() < deadline, "rollback never observed");
                let mut probe = StreamClient::connect(addr).expect("connect");
                probe.start(0).expect("start");
                match probe.infer(&utterance[0]) {
                    Ok(row) => {
                        assert_eq!(bits(&[row])[0], serial[0], "rolled-back rows must be gen 1");
                        let _ = probe.finish();
                        break;
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }

            stop.store(true, Ordering::Relaxed);
            server_thread.join().expect("server thread")
        });

        assert_eq!(reload_stats.attempts, 1, "one publish, one attempt");
        assert_eq!(reload_stats.successes, 1, "the poison was promoted");
        assert_eq!(reload_stats.rollbacks, 1, "and then rolled back");
        assert_eq!(reload_stats.refusals, 0);
        assert_eq!(
            reload_stats.generation, 1,
            "new streams are back on generation 1"
        );
        assert!(final_stats.quarantined >= 1, "the poison was observed");
        assert!(final_stats.completed >= 2, "service continued throughout");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
