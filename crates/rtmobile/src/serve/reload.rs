//! Zero-downtime model reloading for `rtm serve` (DESIGN.md §15).
//!
//! A [`Reloader`] watches a bundle path with a throttled fingerprint poll
//! over the file's mtime, length and 16-byte bundle trailer (generation +
//! whole-file CRC) — SIGHUP-free and std-only, so it works identically on
//! every platform the server runs on, and content-sensitive, so equal-size
//! republishes inside one mtime granule are still detected. When the published file changes, a
//! detached background thread reads and fully validates the new bundle
//! (container checksums, typed decode, the server's load-time health
//! policy, a dimension check against the wire protocol's advertised
//! `Hello`, and a canary forward pass), and only a bundle that survives
//! all of it is handed to the server for promotion. The serving thread
//! never blocks on I/O or validation: it polls the channel between
//! scheduling passes and keeps stepping streams on the current generation
//! throughout.
//!
//! The swap itself and the post-swap rollback monitor live in
//! [`super::server`]; this module owns *detection and validation*, the
//! part that can be slow and must never stall a frame.

use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::time::{Duration, Instant, SystemTime};

use crate::bundle::CompiledBundle;
use crate::health::HealthPolicy;

/// Knobs of the hot-reload subsystem (separate from
/// [`RuntimeConfig`](crate::config::RuntimeConfig) because paths and rates
/// don't fit its `Copy + Eq` contract).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReloadConfig {
    /// Fingerprint-poll interval in milliseconds.
    pub poll_ms: u64,
    /// Post-swap guard: when the new generation's quarantine rate
    /// (quarantined / admitted) exceeds this fraction, the server rolls
    /// back to the previous generation.
    pub rollback_quarantine_rate: f64,
    /// Minimum streams admitted on the new generation before the rollback
    /// rate is evaluated (too-small samples would make one bad stream roll
    /// back a healthy model).
    pub rollback_min_streams: usize,
    /// Synthetic frames the canary forward pass runs through a candidate
    /// bundle before promotion; `0` disables the canary.
    pub canary_frames: usize,
}

impl Default for ReloadConfig {
    fn default() -> ReloadConfig {
        ReloadConfig {
            poll_ms: 200,
            rollback_quarantine_rate: 0.5,
            rollback_min_streams: 4,
            canary_frames: 3,
        }
    }
}

impl ReloadConfig {
    /// Sets the fingerprint-poll interval.
    pub fn with_poll_ms(mut self, ms: u64) -> ReloadConfig {
        self.poll_ms = ms;
        self
    }

    /// Sets the post-swap rollback threshold (quarantined / admitted).
    pub fn with_rollback_quarantine_rate(mut self, rate: f64) -> ReloadConfig {
        self.rollback_quarantine_rate = rate;
        self
    }

    /// Sets the minimum admitted-stream sample for the rollback check.
    pub fn with_rollback_min_streams(mut self, n: usize) -> ReloadConfig {
        self.rollback_min_streams = n;
        self
    }

    /// Sets the canary length (`0` disables the canary pass).
    pub fn with_canary_frames(mut self, n: usize) -> ReloadConfig {
        self.canary_frames = n;
        self
    }
}

/// Counters of the reload subsystem, readable after a serve run (the
/// trace-counter mirror is the `serve.reload.*` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReloadStats {
    /// Bundle-change detections that started a background load.
    pub attempts: usize,
    /// Swaps promoted to serving.
    pub successes: usize,
    /// Candidate bundles rejected before promotion (checksum, decode,
    /// dimension, or canary failure).
    pub refusals: usize,
    /// Post-swap reversions to the previous generation.
    pub rollbacks: usize,
    /// Generation of the bundle serving new streams when the run ended.
    pub generation: u64,
}

/// What one [`Reloader::poll`] observed.
#[derive(Debug)]
pub enum ReloadEvent {
    /// The watched file changed; a background load+validate started.
    Started,
    /// A candidate bundle survived validation and is ready to promote.
    Loaded(CompiledBundle),
    /// A candidate bundle was rejected (the reason is human-readable; the
    /// server stays on its current generation).
    Refused(String),
}

/// mtime + length + trailer of the watched file. The 16-byte v5 trailer
/// carries the generation stamp and the whole-file CRC, so two publishes
/// of equal length inside one mtime granule (same architecture, different
/// weights) still fingerprint differently — the stat pair alone cannot
/// promise that.
fn fingerprint(path: &Path) -> Option<(SystemTime, u64, [u8; 16])> {
    let meta = std::fs::metadata(path).ok()?;
    let len = meta.len();
    let mut tail = [0u8; 16];
    if len >= 16 {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut file = std::fs::File::open(path).ok()?;
        file.seek(SeekFrom::End(-16)).ok()?;
        file.read_exact(&mut tail).ok()?;
    }
    Some((meta.modified().ok()?, len, tail))
}

/// Watches a bundle path and validates candidate bundles off-thread; the
/// server drives it via [`Reloader::poll`] between scheduling passes.
#[derive(Debug)]
pub struct Reloader {
    path: PathBuf,
    config: ReloadConfig,
    policy: HealthPolicy,
    input_dim: usize,
    classes: usize,
    /// Fingerprint of the last file version acted on (loaded or refused),
    /// so one bad publish is refused once, not every poll.
    seen: Option<(SystemTime, u64, [u8; 16])>,
    last_poll: Option<Instant>,
    /// Receives the verdict of the in-flight background load, if any.
    pending: Option<Receiver<ReloadEvent>>,
}

impl Reloader {
    /// A reloader watching `path`. The current file (if any) is taken as
    /// already-served: only *subsequent* publishes trigger loads.
    /// `input_dim`/`classes` pin the wire contract a candidate must match;
    /// `policy` is applied as the load-time weight scan.
    pub fn new(
        path: PathBuf,
        config: ReloadConfig,
        policy: HealthPolicy,
        input_dim: usize,
        classes: usize,
    ) -> Reloader {
        let seen = fingerprint(&path);
        Reloader {
            path,
            config,
            policy,
            input_dim,
            classes,
            seen,
            last_poll: None,
            pending: None,
        }
    }

    /// The knobs this reloader runs under.
    pub fn config(&self) -> ReloadConfig {
        self.config
    }

    /// Checks for a finished background load, then (throttled to
    /// [`ReloadConfig::poll_ms`]) for a changed file. Non-blocking either
    /// way — the serving loop calls this every pass.
    pub fn poll(&mut self) -> Option<ReloadEvent> {
        if let Some(rx) = &self.pending {
            return match rx.try_recv() {
                Ok(event) => {
                    self.pending = None;
                    Some(event)
                }
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => {
                    self.pending = None;
                    Some(ReloadEvent::Refused("loader thread died".to_string()))
                }
            };
        }
        if self
            .last_poll
            .is_some_and(|t| t.elapsed() < Duration::from_millis(self.config.poll_ms))
        {
            return None;
        }
        self.last_poll = Some(Instant::now());
        let fp = fingerprint(&self.path)?;
        if self.seen == Some(fp) {
            return None;
        }
        self.seen = Some(fp);
        self.pending = Some(spawn_load(
            self.path.clone(),
            self.policy,
            self.input_dim,
            self.classes,
            self.config.canary_frames,
        ));
        Some(ReloadEvent::Started)
    }
}

/// Reads, decodes and validates the bundle at `path` on a detached thread,
/// reporting the verdict over the returned channel.
fn spawn_load(
    path: PathBuf,
    policy: HealthPolicy,
    input_dim: usize,
    classes: usize,
    canary_frames: usize,
) -> Receiver<ReloadEvent> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let verdict = match validate(&path, policy, input_dim, classes, canary_frames) {
            Ok(bundle) => ReloadEvent::Loaded(bundle),
            Err(reason) => ReloadEvent::Refused(reason),
        };
        // The server may have shut down; a dead receiver is fine.
        let _ = tx.send(verdict);
    });
    rx
}

fn validate(
    path: &Path,
    policy: HealthPolicy,
    input_dim: usize,
    classes: usize,
    canary_frames: usize,
) -> Result<CompiledBundle, String> {
    // Checksums, typed decode, and (under a scanning policy) the weight
    // finiteness scan all happen inside load_with.
    let bundle = CompiledBundle::load_with(path, policy).map_err(|e| e.to_string())?;
    // The wire contract is fixed at bind: Hello advertised these
    // dimensions to every client, so a bundle that changes them cannot be
    // served by this process.
    if bundle.net.input_dim() != input_dim || bundle.net.num_classes() != classes {
        return Err(format!(
            "dimension mismatch: bundle is {}->{}, server serves {}->{}",
            bundle.net.input_dim(),
            bundle.net.num_classes(),
            input_dim,
            classes
        ));
    }
    // Canary: a short synthetic utterance through the full serial path.
    // Catches models that decode cleanly but blow up arithmetically
    // (saturated weights, broken scales) before any client sees them.
    if canary_frames > 0 {
        let frames: Vec<Vec<f32>> = (0..canary_frames)
            .map(|t| {
                (0..input_dim)
                    .map(|i| (((t * input_dim + i) as f32) * 0.7 + 0.1).sin() * 0.5)
                    .collect()
            })
            .collect();
        let logits = bundle.net.forward(&frames);
        if logits.iter().flatten().any(|v| !v.is_finite()) {
            return Err("canary forward pass produced non-finite logits".to_string());
        }
    }
    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{self, BundleMeta};
    use crate::deploy::{CompiledNetwork, RuntimePrecision};
    use rtm_rnn::model::{GruNetwork, NetworkConfig};

    fn compiled(seed: u64) -> CompiledNetwork {
        let net = GruNetwork::new(
            &NetworkConfig {
                input_dim: 6,
                hidden_dims: vec![12],
                num_classes: 4,
            },
            seed,
        );
        CompiledNetwork::compile(&net, 4, 2, RuntimePrecision::F16).expect("partition fits")
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtm-reload-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn drain(reloader: &mut Reloader) -> ReloadEvent {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(event) = reloader.poll() {
                if !matches!(event, ReloadEvent::Started) {
                    return event;
                }
            }
            assert!(Instant::now() < deadline, "reload verdict timed out");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn detects_a_publish_and_loads_it() {
        let dir = temp_dir("detect");
        let path = dir.join("model.rtm");
        bundle::write(
            &path,
            &compiled(1),
            &BundleMeta::default().with_generation(1),
        )
        .expect("publish gen 1");
        let mut reloader = Reloader::new(
            path.clone(),
            ReloadConfig::default().with_poll_ms(0),
            HealthPolicy::Check,
            6,
            4,
        );
        // The bundle present at construction is the served one: no event.
        assert!(reloader.poll().is_none(), "initial file must not trigger");

        bundle::write(
            &path,
            &compiled(2),
            &BundleMeta::default().with_generation(2),
        )
        .expect("publish gen 2");
        match drain(&mut reloader) {
            ReloadEvent::Loaded(b) => assert_eq!(b.generation(), 2),
            other => panic!("expected Loaded, got {other:?}"),
        }
        // Stable file: quiet again.
        assert!(reloader.poll().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_corruption_dimension_drift_and_failed_canaries_exactly_once() {
        let dir = temp_dir("refuse");
        let path = dir.join("model.rtm");
        let mut reloader = Reloader::new(
            path.clone(),
            ReloadConfig::default().with_poll_ms(0),
            HealthPolicy::Check,
            6,
            4,
        );

        // Corrupt publish: one flipped byte past the header.
        let mut bytes = bundle::to_bytes_with(&compiled(3), &BundleMeta::default());
        bytes[40] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write corrupt");
        match drain(&mut reloader) {
            ReloadEvent::Refused(reason) => {
                assert!(reason.contains("checksum"), "reason: {reason}")
            }
            other => panic!("expected Refused, got {other:?}"),
        }
        // The same bad file is not re-attempted every poll.
        assert!(reloader.poll().is_none());
        assert!(reloader.poll().is_none());

        // Wrong dimensions decode fine but break the wire contract.
        let skinny = GruNetwork::new(
            &NetworkConfig {
                input_dim: 3,
                hidden_dims: vec![8],
                num_classes: 4,
            },
            7,
        );
        let skinny = CompiledNetwork::compile(&skinny, 4, 2, RuntimePrecision::F32).unwrap();
        bundle::write(&path, &skinny, &BundleMeta::default()).expect("publish skinny");
        match drain(&mut reloader) {
            ReloadEvent::Refused(reason) => {
                assert!(reason.contains("dimension mismatch"), "reason: {reason}")
            }
            other => panic!("expected Refused, got {other:?}"),
        }

        // Saturated head weights decode and pass the finiteness scan (the
        // stored weights are finite) but overflow at runtime — the canary
        // must catch it.
        let mut bad = compiled(3);
        let (rows, cols) = (bad.head_w.rows(), bad.head_w.cols());
        bad.head_w = rtm_tensor::Matrix::from_vec(rows, cols, vec![f32::MAX; rows * cols]).unwrap();
        bad.head_b = vec![f32::MAX; bad.head_b.len()];
        // Poison precondition: the exact canary utterance `validate` runs
        // must overflow (otherwise this test would assert nothing).
        let canary: Vec<Vec<f32>> = (0..3)
            .map(|t| {
                (0..6)
                    .map(|i| (((t * 6 + i) as f32) * 0.7 + 0.1).sin() * 0.5)
                    .collect()
            })
            .collect();
        assert!(
            bad.forward(&canary)
                .iter()
                .flatten()
                .any(|v| !v.is_finite()),
            "saturated head must overflow on the canary"
        );
        bundle::write(&path, &bad, &BundleMeta::default()).expect("publish saturated");
        match drain(&mut reloader) {
            ReloadEvent::Refused(reason) => {
                assert!(reason.contains("canary"), "reason: {reason}")
            }
            other => panic!("expected Refused, got {other:?}"),
        }

        // A good publish after the bad ones sails through.
        bundle::write(
            &path,
            &compiled(4),
            &BundleMeta::default().with_generation(9),
        )
        .expect("publish good");
        match drain(&mut reloader) {
            ReloadEvent::Loaded(b) => assert_eq!(b.generation(), 9),
            other => panic!("expected Loaded, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
