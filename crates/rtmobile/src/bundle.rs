//! Compiled-model bundles: the checksummed, sectioned `.rtm` v5 container
//! plus crash-safe writes and generation stamping (DESIGN.md §15).
//!
//! RTMobile's whole premise is that compilation (pruning, reorder, tuner
//! selection) is paid once so the runtime is lean — which makes the model
//! *artifact* the contract between the compiler and every serving process.
//! This module hardens that contract: a torn write, a truncated copy, or
//! bit rot is detected by checksum before a single byte reaches a kernel,
//! and the writer can never leave a half-written file at the published
//! path.
//!
//! Layout (little-endian):
//!
//! ```text
//! header : magic "RTMF" 4 B, version u16 (= 5), section_count u32
//! section: tag 4 B, payload_len u64, payload_crc32 u32, payload
//! trailer: magic "RTMZ" 4 B, generation u64,
//!          file_crc32 u32 over every preceding byte
//! ```
//!
//! Sections (unknown tags are skipped, so future sections are
//! forward-compatible):
//!
//! * `WGHT` — the network body of [`crate::model_file`]: per-layer weights
//!   in their final storage format/precision (reorder permutations ride
//!   inside the BSPC blobs), biases, dense head.
//! * `TUNE` — tuner probe measurements.
//! * `HLTH` — health metadata: compiled PER, accuracy-guard verdicts, and
//!   the per-layer format/precision table, cross-checked against the
//!   decoded network so the sections cannot drift apart unnoticed.
//!
//! The decode order is deliberate: the whole-file CRC is verified *first*,
//! so any random corruption yields
//! [`DecodeError::FileChecksum`](rtm_sparse::io::DecodeError::FileChecksum)
//! (or [`BadTrailer`](rtm_sparse::io::DecodeError::BadTrailer) for a torn
//! tail) rather than whatever field-level error the flipped byte happens
//! to land on. Per-section CRCs are defense in depth — they localize the
//! damage for diagnostics ([`probe`]) and catch independent section edits
//! (see [`reseal`]).

use crate::deploy::CompiledNetwork;
use crate::health::HealthPolicy;
use crate::model_file;
use rtm_sparse::io::DecodeError;
use rtm_tensor::wire::{Buf, BufMut};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic bytes opening the bundle trailer.
pub const TRAILER_MAGIC: &[u8; 4] = b"RTMZ";

/// Section tag: network weights/biases/head (required).
pub const SEC_WEIGHTS: [u8; 4] = *b"WGHT";
/// Section tag: tuner probe measurements.
pub const SEC_TUNER: [u8; 4] = *b"TUNE";
/// Section tag: health metadata (compiled PER, guard verdicts, layer
/// table).
pub const SEC_HEALTH: [u8; 4] = *b"HLTH";

const HEADER_LEN: usize = 4 + 2 + 4;
const SECTION_HEADER_LEN: usize = 4 + 8 + 4;
const TRAILER_LEN: usize = 4 + 8 + 4;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — std-only, table-driven.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the zlib/PNG polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Metadata and the in-memory bundle.

/// Health metadata stamped into a bundle's `HLTH` section and trailer.
///
/// `generation` orders bundles at one path: the crash-safe [`write`]
/// publishes atomically, and the serving-side reloader treats a changed
/// file as a new generation. The remaining fields record what the compile
/// pipeline measured, so a serving process can answer "what accuracy did
/// this model ship with, and did a guard intervene?" without the training
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BundleMeta {
    /// Monotonic publish counter (0 = unstamped).
    pub generation: u64,
    /// Phone-error-rate of the compiled model on the held-out set, as
    /// measured by the pipeline (0 when compiled straight from a config
    /// without evaluation).
    pub compiled_per: f32,
    /// Whether the pipeline's precision accuracy-guard rejected the
    /// requested precision and shipped f32 instead.
    pub precision_guard_tripped: bool,
    /// Whether the pipeline's format accuracy-guard rejected the requested
    /// format and shipped BSPC instead.
    pub format_guard_tripped: bool,
}

impl BundleMeta {
    /// Builder: stamp a generation.
    pub fn with_generation(mut self, generation: u64) -> BundleMeta {
        self.generation = generation;
        self
    }
}

/// A compiled network plus its bundle metadata, behind an [`Arc`] so a
/// serving process can hot-swap generations without copying weights and
/// without stopping in-flight streams (DESIGN.md §15).
#[derive(Debug, Clone)]
pub struct CompiledBundle {
    /// The decoded network (shared with every session serving it).
    pub net: Arc<CompiledNetwork>,
    /// Health metadata from the `HLTH` section and trailer.
    pub meta: BundleMeta,
    /// Container version the bytes arrived in (2–5; in-memory bundles are
    /// [`model_file::VERSION`]).
    pub version: u16,
}

impl CompiledBundle {
    /// Wraps an in-memory network as a current-version bundle with default
    /// metadata.
    pub fn from_network(net: CompiledNetwork) -> CompiledBundle {
        CompiledBundle {
            net: Arc::new(net),
            meta: BundleMeta::default(),
            version: model_file::VERSION,
        }
    }

    /// Builder: replace the metadata.
    pub fn with_meta(mut self, meta: BundleMeta) -> CompiledBundle {
        self.meta = meta;
        self
    }

    /// The bundle's generation stamp (0 for unstamped or pre-v5 files).
    pub fn generation(&self) -> u64 {
        self.meta.generation
    }

    /// Unwraps the network (cloning only if other handles are live).
    pub fn into_network(self) -> CompiledNetwork {
        Arc::try_unwrap(self.net).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Reads and decodes a bundle file (any supported version, no weight
    /// scan).
    ///
    /// # Errors
    ///
    /// [`BundleError::Io`] when the file cannot be read,
    /// [`BundleError::Decode`] when the bytes are rejected.
    pub fn load(path: &Path) -> Result<CompiledBundle, BundleError> {
        CompiledBundle::load_with(path, HealthPolicy::Off)
    }

    /// [`CompiledBundle::load`] plus the load-time weight validation of
    /// [`model_file::from_bytes_with`].
    ///
    /// # Errors
    ///
    /// [`BundleError::Io`] when the file cannot be read,
    /// [`BundleError::Decode`] when the bytes are rejected (including
    /// [`DecodeError::NonFinite`] under a scanning policy).
    pub fn load_with(path: &Path, policy: HealthPolicy) -> Result<CompiledBundle, BundleError> {
        let bytes = fs::read(path)?;
        from_bytes_with(&bytes, policy).map_err(BundleError::Decode)
    }
}

/// Why a bundle file could not be loaded: the I/O failed, or the bytes
/// were rejected.
#[derive(Debug)]
pub enum BundleError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The bytes failed structural or integrity validation.
    Decode(DecodeError),
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "bundle i/o: {e}"),
            BundleError::Decode(e) => write!(f, "bundle decode: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> BundleError {
        BundleError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Encode.

fn put_section(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    out.put_slice(&tag);
    out.put_u64_le(payload.len() as u64);
    out.put_u32_le(crc32(payload));
    out.put_slice(payload);
}

fn write_health_body(out: &mut Vec<u8>, net: &CompiledNetwork, meta: &BundleMeta) {
    out.put_f32_le(meta.compiled_per);
    out.put_u8(meta.precision_guard_tripped as u8);
    out.put_u8(meta.format_guard_tripped as u8);
    out.put_u32_le(net.layers.len() as u32);
    for layer in &net.layers {
        out.put_u32_le(layer.hidden as u32);
        out.put_u8(model_file::precision_code(layer.precision));
        out.put_u8(model_file::format_code(layer.format));
    }
}

/// Serializes `net` as a v5 bundle with default metadata (generation 0).
pub fn to_bytes(net: &CompiledNetwork) -> Vec<u8> {
    to_bytes_with(net, &BundleMeta::default())
}

/// Serializes `net` as a v5 bundle carrying `meta` in the `HLTH` section
/// and the generation + whole-file CRC32 in the trailer.
///
/// The encoding is deterministic: the same network and metadata always
/// produce the same bytes.
pub fn to_bytes_with(net: &CompiledNetwork, meta: &BundleMeta) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_slice(model_file::MAGIC);
    out.put_u16_le(model_file::VERSION);
    out.put_u32_le(3);

    let mut payload = Vec::new();
    model_file::write_network_body(&mut payload, net);
    put_section(&mut out, SEC_WEIGHTS, &payload);

    payload.clear();
    model_file::write_tuner_body(&mut payload, net.tuner_costs());
    put_section(&mut out, SEC_TUNER, &payload);

    payload.clear();
    write_health_body(&mut payload, net, meta);
    put_section(&mut out, SEC_HEALTH, &payload);

    out.put_slice(TRAILER_MAGIC);
    out.put_u64_le(meta.generation);
    let crc = crc32(&out);
    out.put_u32_le(crc);
    out
}

// ---------------------------------------------------------------------------
// Decode.

fn need(buf: &[u8], n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn read_health_body(
    mut buf: &[u8],
    meta: &mut BundleMeta,
    net: &CompiledNetwork,
) -> Result<(), DecodeError> {
    need(buf, 10)?;
    meta.compiled_per = buf.get_f32_le();
    meta.precision_guard_tripped = buf.get_u8() != 0;
    meta.format_guard_tripped = buf.get_u8() != 0;
    let layer_count = buf.get_u32_le() as usize;
    if layer_count != net.layers.len() {
        return Err(DecodeError::MetaMismatch);
    }
    for layer in &net.layers {
        need(buf, 6)?;
        let hidden = buf.get_u32_le() as usize;
        let precision = model_file::precision_from_code(buf.get_u8())?;
        let format = model_file::format_from_code(buf.get_u8())?;
        if hidden != layer.hidden || precision != layer.precision || format != layer.format {
            return Err(DecodeError::MetaMismatch);
        }
    }
    Ok(())
}

/// Decodes `.rtm` bytes (v2–v5) into a bundle without a weight scan.
///
/// # Errors
///
/// See [`from_bytes_with`].
pub fn from_bytes(bytes: &[u8]) -> Result<CompiledBundle, DecodeError> {
    from_bytes_with(bytes, HealthPolicy::Off)
}

/// Decodes `.rtm` bytes (v2–v5) into a bundle, scanning the weights for
/// finiteness under a scanning [`HealthPolicy`].
///
/// For v5, the whole-file CRC32 is verified before anything else is
/// parsed, so corruption surfaces as
/// [`DecodeError::FileChecksum`] / [`DecodeError::BadTrailer`] instead of
/// an arbitrary field error. Legacy v2–v4 files carry no integrity data
/// and decode as before.
///
/// # Errors
///
/// Returns a typed [`DecodeError`] on truncation, bad magic/version,
/// checksum mismatch, a missing `WGHT` section, health metadata that
/// disagrees with the weights, invalid embedded blobs, or (under a
/// scanning policy) non-finite weights.
pub fn from_bytes_with(bytes: &[u8], policy: HealthPolicy) -> Result<CompiledBundle, DecodeError> {
    let mut buf = bytes;
    need(buf, 4)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != model_file::MAGIC {
        return Err(DecodeError::BadMagic);
    }
    need(buf, 2)?;
    let version = buf.get_u16_le();

    let bundle = match version {
        v @ 2..=4 => {
            let net = model_file::read_legacy(&mut buf, v)?;
            CompiledBundle {
                net: Arc::new(net),
                meta: BundleMeta::default(),
                version: v,
            }
        }
        5 => decode_v5(bytes)?,
        other => return Err(DecodeError::BadVersion(other)),
    };

    if policy.scans() && !model_file::all_finite(&bundle.net) {
        return Err(DecodeError::NonFinite);
    }
    Ok(bundle)
}

fn decode_v5(bytes: &[u8]) -> Result<CompiledBundle, DecodeError> {
    // Trailer and whole-file checksum first: random corruption anywhere in
    // the file is reported as an integrity failure, not whatever field the
    // flipped bit lands on.
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(DecodeError::Truncated);
    }
    let trailer = &bytes[bytes.len() - TRAILER_LEN..];
    if &trailer[..4] != TRAILER_MAGIC {
        return Err(DecodeError::BadTrailer);
    }
    let generation = u64::from_le_bytes(trailer[4..12].try_into().expect("8 bytes"));
    let stored = u32::from_le_bytes(trailer[12..16].try_into().expect("4 bytes"));
    if crc32(&bytes[..bytes.len() - 4]) != stored {
        return Err(DecodeError::FileChecksum);
    }

    let mut buf = &bytes[HEADER_LEN - 4..bytes.len() - TRAILER_LEN];
    let section_count = buf.get_u32_le() as usize;
    let mut weights: Option<&[u8]> = None;
    let mut tuner: Option<&[u8]> = None;
    let mut health: Option<&[u8]> = None;
    for _ in 0..section_count {
        need(buf, SECTION_HEADER_LEN)?;
        let mut tag = [0u8; 4];
        buf.copy_to_slice(&mut tag);
        let len: usize = buf
            .get_u64_le()
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        let crc = buf.get_u32_le();
        need(buf, len)?;
        let payload = &buf[..len];
        buf.advance(len);
        // Per-section CRC: defense in depth under the file checksum, and
        // the localizer for diagnostics (`probe`).
        if crc32(payload) != crc {
            return Err(DecodeError::SectionChecksum(tag));
        }
        match tag {
            SEC_WEIGHTS => weights = Some(payload),
            SEC_TUNER => tuner = Some(payload),
            SEC_HEALTH => health = Some(payload),
            // Unknown sections are skipped: new tags can ship without
            // breaking old readers.
            _ => {}
        }
    }

    let mut body = weights.ok_or(DecodeError::MissingSection(SEC_WEIGHTS))?;
    let mut net = model_file::read_network_body(&mut body, 5)?;
    if let Some(mut t) = tuner {
        net.tuner_costs = model_file::read_tuner_body(&mut t)?;
    }
    let mut meta = BundleMeta {
        generation,
        ..BundleMeta::default()
    };
    if let Some(h) = health {
        read_health_body(h, &mut meta, &net)?;
    }
    Ok(CompiledBundle {
        net: Arc::new(net),
        meta,
        version: 5,
    })
}

// ---------------------------------------------------------------------------
// Crash-safe writing and generation stamping.

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` crash-safely: a same-directory temp file is
/// written and fsynced, then atomically renamed over the target, and the
/// directory is fsynced best-effort. A crash at any point leaves either
/// the old file or the new one at `path` — never a torn mix — and a torn
/// temp file is cleaned up on a failed rename.
///
/// # Errors
///
/// Any I/O error from the create/write/sync/rename chain.
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let tmp = dir.join(format!(
        ".rtm-bundle-{}-{}.tmp",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let publish = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if publish.is_err() {
        let _ = fs::remove_file(&tmp);
        return publish;
    }
    // Durability of the rename itself: sync the directory when the
    // platform allows opening it (best-effort; the rename is already
    // atomic for readers either way).
    if let Ok(d) = fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Serializes and crash-safely publishes `net` + `meta` at `path`
/// ([`to_bytes_with`] + [`write_bytes_atomic`]).
///
/// # Errors
///
/// Any I/O error from the atomic write chain.
pub fn write(path: &Path, net: &CompiledNetwork, meta: &BundleMeta) -> std::io::Result<()> {
    write_bytes_atomic(path, &to_bytes_with(net, meta))
}

/// Reads the generation stamped in a v5 bundle's trailer without decoding
/// the body (structural parse only — no checksum verification, so a
/// corrupt predecessor still yields a stamp to advance past).
pub fn peek_generation(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN
        || &bytes[..4] != model_file::MAGIC
        || u16::from_le_bytes([bytes[4], bytes[5]]) != 5
    {
        return None;
    }
    let trailer = &bytes[bytes.len() - TRAILER_LEN..];
    if &trailer[..4] != TRAILER_MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(
        trailer[4..12].try_into().expect("8 bytes"),
    ))
}

/// The generation a new publish at `path` should carry: one past the
/// stamp of the file currently there (1 when the path is empty, missing,
/// or pre-v5).
pub fn next_generation(path: &Path) -> u64 {
    fs::read(path)
        .ok()
        .and_then(|bytes| peek_generation(&bytes))
        .map_or(1, |g| g.saturating_add(1))
}

// ---------------------------------------------------------------------------
// Inspection and test plumbing.

/// One section's framing as seen by [`probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionProbe {
    /// The section's 4-byte tag.
    pub tag: [u8; 4],
    /// Payload length in bytes.
    pub len: usize,
    /// Byte offset of the payload within the file.
    pub payload_offset: usize,
    /// Whether the stored per-section CRC32 matches the payload.
    pub crc_ok: bool,
}

/// Integrity summary of an `.rtm` file, for `rtm inspect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleProbe {
    /// Container version (2–5).
    pub version: u16,
    /// Trailer generation stamp (v5 only).
    pub generation: Option<u64>,
    /// Whether the whole-file CRC32 matches (v5 only).
    pub file_crc_ok: Option<bool>,
    /// Per-section framing and checksum status (v5 only; empty for
    /// legacy files, which carry no integrity data).
    pub sections: Vec<SectionProbe>,
}

/// Walks an `.rtm` file's container framing and reports versions,
/// generation, and checksum status *without* enforcing them — corrupt
/// sections are reported, not rejected, so `rtm inspect` can localize
/// damage. Legacy v2–v4 files probe successfully with no integrity data.
///
/// # Errors
///
/// [`DecodeError::BadMagic`] / [`DecodeError::BadVersion`] /
/// [`DecodeError::Truncated`] / [`DecodeError::BadTrailer`] when the file
/// is not a structurally walkable `.rtm` container at all.
pub fn probe(bytes: &[u8]) -> Result<BundleProbe, DecodeError> {
    if bytes.len() < 6 {
        return Err(DecodeError::Truncated);
    }
    if &bytes[..4] != model_file::MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    match version {
        2..=4 => Ok(BundleProbe {
            version,
            generation: None,
            file_crc_ok: None,
            sections: Vec::new(),
        }),
        5 => {
            if bytes.len() < HEADER_LEN + TRAILER_LEN {
                return Err(DecodeError::Truncated);
            }
            let trailer = &bytes[bytes.len() - TRAILER_LEN..];
            if &trailer[..4] != TRAILER_MAGIC {
                return Err(DecodeError::BadTrailer);
            }
            let generation = u64::from_le_bytes(trailer[4..12].try_into().expect("8 bytes"));
            let stored = u32::from_le_bytes(trailer[12..16].try_into().expect("4 bytes"));
            let file_crc_ok = crc32(&bytes[..bytes.len() - 4]) == stored;
            let mut sections = Vec::new();
            let mut pos = HEADER_LEN;
            let end = bytes.len() - TRAILER_LEN;
            while pos + SECTION_HEADER_LEN <= end {
                let tag: [u8; 4] = bytes[pos..pos + 4].try_into().expect("4 bytes");
                let len: usize =
                    u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"))
                        .try_into()
                        .map_err(|_| DecodeError::Truncated)?;
                let crc = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().expect("4"));
                let payload_offset = pos + SECTION_HEADER_LEN;
                if payload_offset + len > end {
                    return Err(DecodeError::Truncated);
                }
                let payload = &bytes[payload_offset..payload_offset + len];
                sections.push(SectionProbe {
                    tag,
                    len,
                    payload_offset,
                    crc_ok: crc32(payload) == crc,
                });
                pos = payload_offset + len;
            }
            Ok(BundleProbe {
                version,
                generation: Some(generation),
                file_crc_ok: Some(file_crc_ok),
                sections,
            })
        }
        other => Err(DecodeError::BadVersion(other)),
    }
}

/// Recomputes every per-section CRC32 and the whole-file CRC32 of a v5
/// bundle in place, returning `false` when the container framing cannot
/// be walked.
///
/// This exists for tests (and only tests of *this* layer's behavior): it
/// simulates an adversarial or tool-assisted edit that fixes up the
/// checksums, so corruption can be driven *past* the integrity layer to
/// prove the field-level decoders still reject it with typed errors.
pub fn reseal(bytes: &mut [u8]) -> bool {
    if bytes.len() < HEADER_LEN + TRAILER_LEN
        || &bytes[..4] != model_file::MAGIC
        || u16::from_le_bytes([bytes[4], bytes[5]]) != 5
    {
        return false;
    }
    let end = bytes.len() - TRAILER_LEN;
    if &bytes[end..end + 4] != TRAILER_MAGIC {
        return false;
    }
    let mut pos = HEADER_LEN;
    while pos + SECTION_HEADER_LEN <= end {
        let len: usize =
            match u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8")).try_into() {
                Ok(n) => n,
                Err(_) => return false,
            };
        let payload_offset = pos + SECTION_HEADER_LEN;
        if payload_offset + len > end {
            return false;
        }
        let crc = crc32(&bytes[payload_offset..payload_offset + len]);
        bytes[pos + 12..pos + 16].copy_from_slice(&crc.to_le_bytes());
        pos = payload_offset + len;
    }
    let n = bytes.len();
    let crc = crc32(&bytes[..n - 4]);
    bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimePrecision;
    use rtm_rnn::model::{GruNetwork, NetworkConfig};

    fn compiled(seed: u64) -> CompiledNetwork {
        let net = GruNetwork::new(
            &NetworkConfig {
                input_dim: 5,
                hidden_dims: vec![8],
                num_classes: 3,
            },
            seed,
        );
        CompiledNetwork::compile(&net, 4, 2, RuntimePrecision::F16).expect("partition fits")
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn metadata_roundtrips_through_the_trailer_and_health_section() {
        let net = compiled(3);
        let meta = BundleMeta {
            generation: 42,
            compiled_per: 0.125,
            precision_guard_tripped: true,
            format_guard_tripped: false,
        };
        let bytes = to_bytes_with(&net, &meta);
        let bundle = from_bytes(&bytes).expect("decodes");
        assert_eq!(bundle.meta, meta);
        assert_eq!(bundle.generation(), 42);
        assert_eq!(bundle.version, 5);
        // Same inputs, same bytes: the writer is deterministic.
        assert_eq!(bytes, to_bytes_with(&net, &meta));
    }

    #[test]
    fn every_single_bitflip_is_rejected() {
        let net = compiled(7);
        let bytes = to_bytes_with(&net, &BundleMeta::default().with_generation(1));
        // Stride through the file flipping one bit at a time; every flip
        // must be rejected (the checksum catches what field validation
        // would miss) and none may panic.
        for pos in (0..bytes.len()).step_by(11) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x10;
            let err = from_bytes(&corrupt).expect_err(&format!("flip at {pos} must fail"));
            match pos {
                0..=3 => assert_eq!(err, DecodeError::BadMagic),
                4..=5 => assert!(matches!(err, DecodeError::BadVersion(_))),
                _ => assert!(
                    matches!(err, DecodeError::FileChecksum | DecodeError::BadTrailer),
                    "flip at {pos}: got {err:?}"
                ),
            }
        }
        assert!(from_bytes(&bytes).is_ok());
    }

    #[test]
    fn section_checksums_catch_corruption_under_a_resealed_file_crc() {
        let net = compiled(9);
        let mut bytes = to_bytes(&net);
        let p = probe(&bytes).expect("probe");
        let hlth = p.sections.iter().find(|s| s.tag == SEC_HEALTH).unwrap();
        // Corrupt the HLTH payload, then fix up only the *file* CRC — the
        // per-section CRC must still catch it.
        bytes[hlth.payload_offset] ^= 0xFF;
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            from_bytes(&bytes).unwrap_err(),
            DecodeError::SectionChecksum(SEC_HEALTH)
        );
    }

    #[test]
    fn health_metadata_must_agree_with_the_weights() {
        let net = compiled(11);
        let mut bytes = to_bytes(&net);
        let p = probe(&bytes).expect("probe");
        let hlth = p.sections.iter().find(|s| s.tag == SEC_HEALTH).unwrap();
        // Flip the first layer's precision byte in the table (offset 10 + 4
        // into the HLTH body) and reseal all checksums — the cross-check
        // against the decoded network must refuse the drift.
        bytes[hlth.payload_offset + 14] ^= 1;
        assert!(reseal(&mut bytes));
        assert_eq!(from_bytes(&bytes).unwrap_err(), DecodeError::MetaMismatch);
    }

    #[test]
    fn a_missing_weights_section_is_typed() {
        let net = compiled(13);
        // Hand-assemble a bundle with only TUNE + HLTH.
        let mut out = Vec::new();
        out.put_slice(model_file::MAGIC);
        out.put_u16_le(5);
        out.put_u32_le(2);
        let mut payload = Vec::new();
        model_file::write_tuner_body(&mut payload, &[]);
        put_section(&mut out, SEC_TUNER, &payload);
        payload.clear();
        write_health_body(&mut payload, &net, &BundleMeta::default());
        put_section(&mut out, SEC_HEALTH, &payload);
        out.put_slice(TRAILER_MAGIC);
        out.put_u64_le(0);
        let crc = crc32(&out);
        out.put_u32_le(crc);
        assert_eq!(
            from_bytes(&out).unwrap_err(),
            DecodeError::MissingSection(SEC_WEIGHTS)
        );
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let net = compiled(15);
        let bytes = to_bytes(&net);
        // Append a future section before the trailer and reseal.
        let trailer_at = bytes.len() - TRAILER_LEN;
        let mut extended = bytes[..trailer_at].to_vec();
        put_section(&mut extended, *b"ZZZZ", b"from the future");
        extended[6..10].copy_from_slice(&4u32.to_le_bytes());
        extended.put_slice(TRAILER_MAGIC);
        extended.put_u64_le(0);
        let crc = crc32(&extended);
        extended.put_u32_le(crc);
        let bundle = from_bytes(&extended).expect("unknown section tolerated");
        assert_eq!(
            net.forward(&[vec![0.1; 5]]),
            bundle.net.forward(&[vec![0.1; 5]])
        );
    }

    #[test]
    fn atomic_write_publishes_and_stamps_generations() {
        let dir = std::env::temp_dir().join(format!("rtm-bundle-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.rtm");
        let net = compiled(17);

        assert_eq!(next_generation(&path), 1, "missing file starts at 1");
        write(&path, &net, &BundleMeta::default().with_generation(1)).expect("write");
        let bundle = CompiledBundle::load(&path).expect("load");
        assert_eq!(bundle.generation(), 1);
        assert_eq!(next_generation(&path), 2);
        write(&path, &net, &BundleMeta::default().with_generation(2)).expect("rewrite");
        assert_eq!(CompiledBundle::load(&path).expect("load").generation(), 2);

        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "model.rtm")
            .collect();
        assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_writes_are_rejected_by_the_trailer() {
        let net = compiled(19);
        let bytes = to_bytes(&net);
        // A torn write publishes a prefix: the trailer is gone or
        // misaligned, and no prefix may decode.
        for n in (6..bytes.len()).step_by(17) {
            let err = from_bytes(&bytes[..n]).expect_err("prefix must fail");
            assert!(
                matches!(err, DecodeError::Truncated | DecodeError::BadTrailer),
                "prefix {n}: got {err:?}"
            );
        }
    }

    #[test]
    fn probe_reports_without_enforcing() {
        let net = compiled(21);
        let mut bytes = to_bytes_with(&net, &BundleMeta::default().with_generation(9));
        let p = probe(&bytes).expect("probe");
        assert_eq!(p.version, 5);
        assert_eq!(p.generation, Some(9));
        assert_eq!(p.file_crc_ok, Some(true));
        let tags: Vec<[u8; 4]> = p.sections.iter().map(|s| s.tag).collect();
        assert_eq!(tags, vec![SEC_WEIGHTS, SEC_TUNER, SEC_HEALTH]);
        assert!(p.sections.iter().all(|s| s.crc_ok));

        // Corrupt one section: probe still walks the file and localizes
        // the damage instead of erroring.
        let wght = p.sections[0];
        bytes[wght.payload_offset + 8] ^= 0xFF;
        let p = probe(&bytes).expect("probe walks corrupt file");
        assert_eq!(p.file_crc_ok, Some(false));
        assert!(!p.sections[0].crc_ok, "WGHT damage localized");
        assert!(p.sections[1].crc_ok && p.sections[2].crc_ok);
    }
}
