#![warn(missing_docs)]

//! # rtmobile
//!
//! The end-to-end RTMobile framework (paper Fig. 3): train → BSP-prune →
//! compile → deploy.
//!
//! * [`deploy`] — the mobile runtime artifact: every pruned GRU layer
//!   compiled to BSPC storage with its reorder permutation, plus a
//!   *functional* executor that runs inference through the sparse kernels
//!   (optionally through f16, the GPU datapath) and must agree with the
//!   dense reference — the correctness proof of the compiled path;
//! * [`pipeline`] — [`pipeline::RtMobile`], the builder that wires the
//!   speech task, dense training, BSP pruning with ADMM retraining, the
//!   compiler analyses and the SoC simulator into one call;
//! * [`report`] — the accuracy/performance report with Table-I/Table-II
//!   style rendering.
//!
//! # Example
//!
//! ```no_run
//! use rtmobile::pipeline::RtMobile;
//!
//! let report = RtMobile::builder()
//!     .hidden(32)
//!     .compression(10.0, 1.0)
//!     .seed(42)
//!     .run();
//! println!("{}", report.render());
//! ```

pub mod deploy;
pub mod health;
pub mod model_file;
pub mod pipeline;
pub mod report;
pub mod serve;

pub use deploy::{BatchedSession, CompiledNetwork, FusedGruLayer, GruRuntimeScratch};
pub use health::HealthPolicy;
pub use pipeline::RtMobile;
pub use report::PipelineReport;
pub use serve::{AdmissionConfig, ServeStats, ShedPolicy, StreamFault};
