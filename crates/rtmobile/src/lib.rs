#![warn(missing_docs)]

//! # rtmobile
//!
//! The end-to-end RTMobile framework (paper Fig. 3): train → BSP-prune →
//! compile → deploy.
//!
//! * [`deploy`] — the mobile runtime artifact: every pruned GRU layer
//!   compiled to BSPC storage with its reorder permutation, plus a
//!   *functional* executor that runs inference through the sparse kernels
//!   (optionally through f16, the GPU datapath) and must agree with the
//!   dense reference — the correctness proof of the compiled path;
//! * [`pipeline`] — [`pipeline::RtMobile`], the builder that wires the
//!   speech task, dense training, BSP pruning with ADMM retraining, the
//!   compiler analyses and the SoC simulator into one call;
//! * [`report`] — the accuracy/performance report with Table-I/Table-II
//!   style rendering, plus the [`report::Report`] trait: the one JSON
//!   emission path every structured result shares;
//! * [`config`] — [`config::RuntimeConfig`], the unified runtime knob
//!   struct (threads, batch, simd, health, trace, admission) that the
//!   builder, the `rtm` CLI and the environment all flow through;
//! * [`env`] — the single parse point for the `RTM_*` environment
//!   variables, with typed errors.
//!
//! # Example
//!
//! ```no_run
//! use rtmobile::pipeline::RtMobile;
//!
//! let report = RtMobile::builder()
//!     .hidden(32)
//!     .compression(10.0, 1.0)
//!     .seed(42)
//!     .run();
//! println!("{}", report.render());
//! ```

pub mod bundle;
pub mod config;
pub mod deploy;
pub mod env;
pub mod health;
pub mod model_file;
pub mod pipeline;
pub mod report;
pub mod serve;

pub use bundle::{BundleError, BundleMeta, CompiledBundle};
pub use config::{DecoderChoice, FormatChoice, PrecisionChoice, RuntimeConfig};
pub use deploy::{
    BatchedSession, CompiledNetwork, FusedGruLayer, GateMatrix, GruRuntimeScratch, RuntimeFormat,
    RuntimePrecision,
};
pub use health::HealthPolicy;
pub use pipeline::RtMobile;
pub use report::{PipelineReport, Report};
pub use rtm_trace::TraceConfig;
pub use serve::{
    AdmissionConfig, ReloadConfig, ReloadStats, ServeOptions, ServeStats, Server, ShedPolicy,
    StreamClient, StreamFault,
};
