//! The `.rtm` model file: a deployable, self-contained serialization of a
//! compiled network.
//!
//! The paper's BSPC is a *storage* format; this module makes the full model
//! artifact concrete: every gate matrix in the binary BSPC encoding of
//! [`rtm_sparse::io`] (with f16 values on the GPU path), plus biases and
//! the dense classifier head. A phone ships exactly these bytes.
//!
//! Since version 5 the container is the **sectioned bundle** of
//! [`crate::bundle`]: the network body below becomes the `WGHT` section
//! payload, tuner costs move to `TUNE`, health metadata lands in `HLTH`,
//! and every section carries a CRC32 with a whole-file checksum in the
//! trailer. This module keeps the *body* codecs (shared with the bundle
//! reader/writer) and the version dispatch for the legacy containers.
//!
//! Network body layout (little-endian):
//!
//! ```text
//! precision u8, format u8 (network defaults), layer_count u32
//! per layer: hidden u32, precision u8, format u8,
//!            6 x gate blobs (w_z u_z w_r u_r w_n u_n) in the layer's
//!            storage format's wire codec at the layer's storage precision
//!            (int8 layers ship native codes + scales),
//!            3 x bias runs (len u32 + f32s)
//! head: rows u32, cols u32, f32 weights, f32 bias
//! tuner costs: count u32, per entry layer u32, precision u8, format u8,
//!              micros f32
//! ```
//!
//! Version 2 added the per-layer precision byte and native int8 blobs (no
//! storage-format bytes: every gate blob is BSPC); version 3 added the
//! per-layer storage-format byte (0 = BSPC, 1 = CSR, 2 = BBS, 3 = CSB)
//! with format-dispatched gate blobs; version 4 appended the tuner-cost
//! section; version 5 wrapped everything in the checksummed bundle
//! container. Versions 2–4 still decode (flat `magic, version, body`
//! layout, no integrity data); anything else is rejected with
//! [`DecodeError::BadVersion`](rtm_sparse::io::DecodeError::BadVersion).

use crate::deploy::{
    CompiledGruLayer, CompiledNetwork, GateMatrix, RuntimeFormat, RuntimePrecision, TunerCost,
};
use rtm_sparse::footprint::Precision;
use rtm_sparse::io::DecodeError;
use rtm_tensor::wire::{Buf, BufMut};
use rtm_tensor::Matrix;

/// Magic bytes opening every `.rtm` model file.
pub const MAGIC: &[u8; 4] = b"RTMF";

/// Current model-file version (the sectioned bundle container).
pub const VERSION: u16 = 5;

/// Oldest model-file version [`from_bytes`] still decodes.
pub const MIN_VERSION: u16 = 2;

pub(crate) fn precision_code(p: RuntimePrecision) -> u8 {
    match p {
        RuntimePrecision::F32 => 0,
        RuntimePrecision::F16 => 1,
        RuntimePrecision::Int8 => 2,
    }
}

pub(crate) fn precision_from_code(code: u8) -> Result<RuntimePrecision, DecodeError> {
    match code {
        0 => Ok(RuntimePrecision::F32),
        1 => Ok(RuntimePrecision::F16),
        2 => Ok(RuntimePrecision::Int8),
        other => Err(DecodeError::BadPrecision(other)),
    }
}

pub(crate) fn format_code(f: RuntimeFormat) -> u8 {
    match f {
        RuntimeFormat::Bspc => 0,
        RuntimeFormat::Csr => 1,
        RuntimeFormat::Bbs => 2,
        RuntimeFormat::Csb => 3,
    }
}

pub(crate) fn format_from_code(code: u8) -> Result<RuntimeFormat, DecodeError> {
    match code {
        0 => Ok(RuntimeFormat::Bspc),
        1 => Ok(RuntimeFormat::Csr),
        2 => Ok(RuntimeFormat::Bbs),
        3 => Ok(RuntimeFormat::Csb),
        other => Err(DecodeError::BadFormat(other)),
    }
}

fn need(buf: &[u8], n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

/// Serializes the network body (weights, biases, head — no container
/// framing, no tuner costs) into `out`.
///
/// Each layer's gate blobs are stored at that layer's runtime precision:
/// f16 halves the value bytes, int8 ships the native per-stripe-block codes
/// and scales — the decoded network's int8 kernels stream the exact same
/// sidecar, so the functional roundtrip is bit-exact for every precision.
pub(crate) fn write_network_body(out: &mut Vec<u8>, net: &CompiledNetwork) {
    out.put_u8(precision_code(net.precision));
    out.put_u8(format_code(net.format));
    out.put_u32_le(net.layers.len() as u32);
    for layer in &net.layers {
        out.put_u32_le(layer.hidden as u32);
        out.put_u8(precision_code(layer.precision));
        out.put_u8(format_code(layer.format));
        let prec: Precision = layer.precision.storage();
        for m in [
            &layer.w_z, &layer.u_z, &layer.w_r, &layer.u_r, &layer.w_n, &layer.u_n,
        ] {
            m.write_to(out, prec);
        }
        for b in [&layer.b_z, &layer.b_r, &layer.b_n] {
            out.put_u32_le(b.len() as u32);
            for &v in b {
                out.put_f32_le(v);
            }
        }
    }
    out.put_u32_le(net.head_w.rows() as u32);
    out.put_u32_le(net.head_w.cols() as u32);
    for &v in net.head_w.as_slice() {
        out.put_f32_le(v);
    }
    out.put_u32_le(net.head_b.len() as u32);
    for &v in &net.head_b {
        out.put_f32_le(v);
    }
}

/// Serializes the tuner-cost records (count + rows, no framing).
pub(crate) fn write_tuner_body(out: &mut Vec<u8>, costs: &[TunerCost]) {
    out.put_u32_le(costs.len() as u32);
    for c in costs {
        out.put_u32_le(c.layer as u32);
        out.put_u8(precision_code(c.precision));
        out.put_u8(format_code(c.format));
        out.put_f32_le(c.micros);
    }
}

/// Decodes the network body (the inverse of [`write_network_body`]) from
/// the front of `buf`, advancing it. `version` selects the per-layer
/// header shape: version 2 predates the storage-format bytes (every blob
/// is BSPC), 3+ carry them.
pub(crate) fn read_network_body(
    buf: &mut &[u8],
    version: u16,
) -> Result<CompiledNetwork, DecodeError> {
    let formats = version >= 3;
    need(buf, if formats { 2 } else { 1 })?;
    let precision = precision_from_code(buf.get_u8())?;
    let format = if formats {
        format_from_code(buf.get_u8())?
    } else {
        RuntimeFormat::Bspc
    };

    need(buf, 4)?;
    let layer_count = buf.get_u32_le() as usize;
    // Each layer needs at least its hidden-width word plus six gate blobs;
    // reject counts the buffer cannot possibly hold before allocating.
    if layer_count > buf.remaining() / 4 {
        return Err(DecodeError::Truncated);
    }
    let mut layers = Vec::new();
    for _ in 0..layer_count {
        need(buf, if formats { 6 } else { 5 })?;
        let hidden = buf.get_u32_le() as usize;
        let layer_precision = precision_from_code(buf.get_u8())?;
        let layer_format = if formats {
            format_from_code(buf.get_u8())?
        } else {
            RuntimeFormat::Bspc
        };
        let mut mats: Vec<GateMatrix> = Vec::with_capacity(6);
        for _ in 0..6 {
            let (m, used) = GateMatrix::read_from(buf, layer_format)?;
            buf.advance(used);
            mats.push(m);
        }
        let mut biases: Vec<Vec<f32>> = Vec::with_capacity(3);
        for _ in 0..3 {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n.saturating_mul(4))?;
            biases.push((0..n).map(|_| buf.get_f32_le()).collect());
        }
        let u_n = mats.pop().expect("six matrices");
        let w_n = mats.pop().expect("six matrices");
        let u_r = mats.pop().expect("six matrices");
        let w_r = mats.pop().expect("six matrices");
        let u_z = mats.pop().expect("six matrices");
        let w_z = mats.pop().expect("six matrices");
        let b_n = biases.pop().expect("three biases");
        let b_r = biases.pop().expect("three biases");
        let b_z = biases.pop().expect("three biases");
        layers.push(CompiledGruLayer {
            w_z,
            u_z,
            b_z,
            w_r,
            u_r,
            b_r,
            w_n,
            u_n,
            b_n,
            hidden,
            precision: layer_precision,
            format: layer_format,
        });
    }

    need(buf, 8)?;
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    let head_len = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(4))
        .ok_or(DecodeError::Truncated)?;
    need(buf, head_len)?;
    let head_data: Vec<f32> = (0..rows * cols).map(|_| buf.get_f32_le()).collect();
    let head_w = Matrix::from_vec(rows, cols, head_data).map_err(|_| DecodeError::Truncated)?;
    need(buf, 4)?;
    let nb = buf.get_u32_le() as usize;
    need(buf, nb.saturating_mul(4))?;
    let head_b: Vec<f32> = (0..nb).map(|_| buf.get_f32_le()).collect();

    Ok(CompiledNetwork {
        layers,
        head_w,
        head_b,
        precision,
        format,
        tuner_costs: Vec::new(),
    })
}

/// Decodes the tuner-cost records (the inverse of [`write_tuner_body`])
/// from the front of `buf`, advancing it.
pub(crate) fn read_tuner_body(buf: &mut &[u8]) -> Result<Vec<TunerCost>, DecodeError> {
    need(buf, 4)?;
    let cost_count = buf.get_u32_le() as usize;
    // 10 bytes per entry; reject counts the buffer cannot hold before
    // allocating.
    if cost_count > buf.remaining() / 10 {
        return Err(DecodeError::Truncated);
    }
    let mut tuner_costs = Vec::with_capacity(cost_count);
    for _ in 0..cost_count {
        need(buf, 10)?;
        let layer = buf.get_u32_le() as usize;
        let precision = precision_from_code(buf.get_u8())?;
        let format = format_from_code(buf.get_u8())?;
        let micros = buf.get_f32_le();
        tuner_costs.push(TunerCost {
            layer,
            format,
            precision,
            micros,
        });
    }
    Ok(tuner_costs)
}

/// Whether every weight, bias and head value of `net` is finite.
pub(crate) fn all_finite(net: &CompiledNetwork) -> bool {
    let finite = |vals: &[f32]| vals.iter().all(|v| v.is_finite());
    net.layers.iter().all(|l| {
        [&l.w_z, &l.u_z, &l.w_r, &l.u_r, &l.w_n, &l.u_n]
            .iter()
            .all(|m| finite(m.values()))
            && [&l.b_z, &l.b_r, &l.b_n].iter().all(|b| finite(b))
    }) && finite(net.head_w.as_slice())
        && finite(&net.head_b)
}

/// Decodes a legacy flat container (versions 2–4): the network body
/// directly after the `magic, version` header, plus the tuner-cost section
/// in version 4. `buf` must already be past the 6-byte header.
pub(crate) fn read_legacy(buf: &mut &[u8], version: u16) -> Result<CompiledNetwork, DecodeError> {
    debug_assert!((2..=4).contains(&version));
    let mut net = read_network_body(buf, version)?;
    if version >= 4 {
        net.tuner_costs = read_tuner_body(buf)?;
    }
    Ok(net)
}

/// Serializes a compiled network to the current `.rtm` byte format — a
/// version-5 [`crate::bundle`] with default (empty) health metadata and
/// generation 0. Use [`crate::bundle::to_bytes_with`] to stamp real
/// metadata.
pub fn to_bytes(net: &CompiledNetwork) -> Vec<u8> {
    crate::bundle::to_bytes(net)
}

/// [`from_bytes`] plus optional load-time weight validation.
///
/// With any scanning [`HealthPolicy`](crate::health::HealthPolicy)
/// (`Check` or `Quarantine`) the decoded weights and biases must all be
/// finite — a corrupted or adversarial model file carrying NaN/Inf weights
/// is rejected at the door instead of poisoning every stream it serves.
/// [`HealthPolicy::Off`](crate::health::HealthPolicy::Off) skips the scan
/// and behaves exactly like [`from_bytes`].
///
/// # Errors
///
/// Returns [`DecodeError::NonFinite`] when validation is on and any weight
/// is NaN or infinite, and every [`from_bytes`] error otherwise.
pub fn from_bytes_with(
    bytes: &[u8],
    policy: crate::health::HealthPolicy,
) -> Result<CompiledNetwork, DecodeError> {
    crate::bundle::from_bytes_with(bytes, policy).map(crate::bundle::CompiledBundle::into_network)
}

/// Deserializes a compiled network from `.rtm` bytes (any supported
/// version: the checksummed version-5 bundle, or the flat version 2–4
/// containers).
///
/// # Errors
///
/// Returns [`DecodeError`] on any structural problem (truncation, bad
/// magic/version, checksum mismatch, invalid embedded blobs).
pub fn from_bytes(bytes: &[u8]) -> Result<CompiledNetwork, DecodeError> {
    crate::bundle::from_bytes(bytes).map(crate::bundle::CompiledBundle::into_network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_rnn::model::{GruNetwork, NetworkConfig};

    fn compiled(precision: RuntimePrecision) -> CompiledNetwork {
        let net = GruNetwork::new(
            &NetworkConfig {
                input_dim: 5,
                hidden_dims: vec![8, 8],
                num_classes: 3,
            },
            31,
        );
        CompiledNetwork::compile(&net, 4, 2, precision).expect("partition fits")
    }

    fn frames() -> Vec<Vec<f32>> {
        (0..6)
            .map(|t| (0..5).map(|i| ((t * 5 + i) as f32 * 0.4).sin()).collect())
            .collect()
    }

    /// Writes the legacy flat container for a given version (the inverse
    /// of [`read_legacy`]) — v2/v3/v4 fixtures for the decode tests.
    fn to_bytes_legacy(net: &CompiledNetwork, version: u16) -> Vec<u8> {
        assert!((2..=4).contains(&version));
        let mut out = Vec::new();
        out.put_slice(MAGIC);
        out.put_u16_le(version);
        out.put_u8(precision_code(net.precision));
        if version >= 3 {
            out.put_u8(format_code(net.format));
        }
        out.put_u32_le(net.layers.len() as u32);
        for layer in &net.layers {
            out.put_u32_le(layer.hidden as u32);
            out.put_u8(precision_code(layer.precision));
            if version >= 3 {
                out.put_u8(format_code(layer.format));
            }
            let prec: Precision = layer.precision.storage();
            for m in [
                &layer.w_z, &layer.u_z, &layer.w_r, &layer.u_r, &layer.w_n, &layer.u_n,
            ] {
                m.write_to(&mut out, prec);
            }
            for b in [&layer.b_z, &layer.b_r, &layer.b_n] {
                out.put_u32_le(b.len() as u32);
                for &v in b {
                    out.put_f32_le(v);
                }
            }
        }
        out.put_u32_le(net.head_w.rows() as u32);
        out.put_u32_le(net.head_w.cols() as u32);
        for &v in net.head_w.as_slice() {
            out.put_f32_le(v);
        }
        out.put_u32_le(net.head_b.len() as u32);
        for &v in &net.head_b {
            out.put_f32_le(v);
        }
        if version >= 4 {
            write_tuner_body(&mut out, net.tuner_costs());
        }
        out
    }

    #[test]
    fn f32_model_roundtrips_bit_exact() {
        let net = compiled(RuntimePrecision::F32);
        let bytes = to_bytes(&net);
        let decoded = from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded.precision(), RuntimePrecision::F32);
        let a = net.forward(&frames());
        let b = decoded.forward(&frames());
        assert_eq!(a, b, "f32 serialization must be lossless");
    }

    #[test]
    fn f16_model_roundtrips_functionally() {
        // The compiled f16 network's weights are already f16-quantized, so
        // storing them as f16 bit patterns is lossless for the values.
        let net = compiled(RuntimePrecision::F16);
        let bytes = to_bytes(&net);
        let decoded = from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded.precision(), RuntimePrecision::F16);
        let a = net.forward(&frames());
        let b = decoded.forward(&frames());
        assert_eq!(a, b, "f16 model already quantized; file roundtrip is exact");
    }

    #[test]
    fn int8_model_roundtrips_bit_exact() {
        // The int8 blobs ship the native codes and scales, and the int8
        // kernels read only that sidecar — so the functional roundtrip is
        // exact, not merely close.
        let net = compiled(RuntimePrecision::Int8);
        let bytes = to_bytes(&net);
        let decoded = from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded.precision(), RuntimePrecision::Int8);
        assert_eq!(decoded.layer_precisions(), net.layer_precisions());
        assert_eq!(net.forward(&frames()), decoded.forward(&frames()));
    }

    #[test]
    fn mixed_precision_layers_roundtrip_bit_exact() {
        let base = GruNetwork::new(
            &NetworkConfig {
                input_dim: 5,
                hidden_dims: vec![8, 8],
                num_classes: 3,
            },
            31,
        );
        let net = CompiledNetwork::compile_with_precisions(
            &base,
            4,
            2,
            &[RuntimePrecision::Int8, RuntimePrecision::F16],
            RuntimePrecision::F32,
        )
        .expect("partition fits");
        let decoded = from_bytes(&to_bytes(&net)).expect("decodes");
        assert_eq!(
            decoded.layer_precisions(),
            vec![RuntimePrecision::Int8, RuntimePrecision::F16]
        );
        assert_eq!(decoded.precision(), RuntimePrecision::F32);
        assert_eq!(net.forward(&frames()), decoded.forward(&frames()));
    }

    #[test]
    fn every_format_roundtrips_functionally_every_precision() {
        let base = GruNetwork::new(
            &NetworkConfig {
                input_dim: 5,
                hidden_dims: vec![8, 8],
                num_classes: 3,
            },
            31,
        );
        for format in [
            RuntimeFormat::Bspc,
            RuntimeFormat::Csr,
            RuntimeFormat::Bbs,
            RuntimeFormat::Csb,
        ] {
            for precision in [
                RuntimePrecision::F32,
                RuntimePrecision::F16,
                RuntimePrecision::Int8,
            ] {
                let net =
                    CompiledNetwork::compile_with_formats(&base, 4, 2, &[], precision, &[], format)
                        .expect("partition fits");
                let decoded = from_bytes(&to_bytes(&net)).expect("decodes");
                assert_eq!(decoded.format(), format);
                assert_eq!(decoded.layer_formats(), net.layer_formats());
                assert_eq!(
                    net.forward(&frames()),
                    decoded.forward(&frames()),
                    "{format:?} {precision:?} file roundtrip must be functionally exact"
                );
            }
        }
    }

    #[test]
    fn mixed_format_layers_roundtrip_bit_exact() {
        let base = GruNetwork::new(
            &NetworkConfig {
                input_dim: 5,
                hidden_dims: vec![8, 8],
                num_classes: 3,
            },
            31,
        );
        let net = CompiledNetwork::compile_with_formats(
            &base,
            4,
            2,
            &[],
            RuntimePrecision::F32,
            &[RuntimeFormat::Bbs, RuntimeFormat::Csb],
            RuntimeFormat::Bspc,
        )
        .expect("partition fits");
        let decoded = from_bytes(&to_bytes(&net)).expect("decodes");
        assert_eq!(
            decoded.layer_formats(),
            vec![RuntimeFormat::Bbs, RuntimeFormat::Csb]
        );
        assert_eq!(decoded.format(), RuntimeFormat::Bspc);
        assert_eq!(net.forward(&frames()), decoded.forward(&frames()));
    }

    #[test]
    fn tuner_costs_roundtrip_and_default_empty() {
        let plain = compiled(RuntimePrecision::F16);
        let decoded = from_bytes(&to_bytes(&plain)).expect("decodes");
        assert!(decoded.tuner_costs().is_empty());

        let costs = vec![
            TunerCost {
                layer: 0,
                format: RuntimeFormat::Bbs,
                precision: RuntimePrecision::Int8,
                micros: 12.5,
            },
            TunerCost {
                layer: 1,
                format: RuntimeFormat::Bspc,
                precision: RuntimePrecision::F16,
                micros: 7.25,
            },
        ];
        let tuned = compiled(RuntimePrecision::F16).with_tuner_costs(costs.clone());
        let bytes = to_bytes(&tuned);
        let decoded = from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded.tuner_costs(), &costs[..]);
        // The probe metadata never changes the numbers the model computes.
        assert_eq!(decoded.forward(&frames()), tuned.forward(&frames()));
        // A corrupt cost count cannot force an allocation the buffer
        // cannot back: poison the TUNE section's count and reseal the
        // checksums so the corruption reaches the body decoder.
        let mut corrupt = bytes.clone();
        let probe = crate::bundle::probe(&bytes).expect("probe");
        let tune = probe
            .sections
            .iter()
            .find(|s| &s.tag == b"TUNE")
            .expect("TUNE section");
        corrupt[tune.payload_offset..tune.payload_offset + 4]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(crate::bundle::reseal(&mut corrupt));
        assert_eq!(from_bytes(&corrupt).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn rejects_unknown_format_byte() {
        let bytes = to_bytes(&compiled(RuntimePrecision::F32));
        let probe = crate::bundle::probe(&bytes).expect("probe");
        let wght = probe
            .sections
            .iter()
            .find(|s| &s.tag == b"WGHT")
            .expect("WGHT section");
        // Without resealing, the corruption is caught by the file checksum
        // before any field decoder sees it.
        let mut corrupt = bytes.clone();
        corrupt[wght.payload_offset + 1] = 9;
        assert_eq!(from_bytes(&corrupt).unwrap_err(), DecodeError::FileChecksum);
        // Resealed (an adversarial edit, not rot), the typed field error
        // surfaces: body offset 1 is the network format byte.
        assert!(crate::bundle::reseal(&mut corrupt));
        assert_eq!(from_bytes(&corrupt).unwrap_err(), DecodeError::BadFormat(9));
    }

    #[test]
    fn lower_precision_files_are_smaller() {
        let f32_bytes = to_bytes(&compiled(RuntimePrecision::F32));
        let f16_bytes = to_bytes(&compiled(RuntimePrecision::F16));
        let int8_bytes = to_bytes(&compiled(RuntimePrecision::Int8));
        assert!(
            int8_bytes.len() < f16_bytes.len() && f16_bytes.len() < f32_bytes.len(),
            "{} vs {} vs {}",
            int8_bytes.len(),
            f16_bytes.len(),
            f32_bytes.len()
        );
    }

    #[test]
    fn rejects_corruption() {
        let mut bytes = to_bytes(&compiled(RuntimePrecision::F32));
        assert!(from_bytes(&bytes[..10]).is_err(), "truncated");
        bytes[0] = b'X';
        assert_eq!(from_bytes(&bytes).unwrap_err(), DecodeError::BadMagic);
        let mut bytes = to_bytes(&compiled(RuntimePrecision::F32));
        bytes[4] = 0xFF;
        assert!(matches!(
            from_bytes(&bytes).unwrap_err(),
            DecodeError::BadVersion(_)
        ));
    }

    #[test]
    fn legacy_versions_still_decode() {
        let costs = vec![TunerCost {
            layer: 0,
            format: RuntimeFormat::Bspc,
            precision: RuntimePrecision::F16,
            micros: 3.5,
        }];
        let net = compiled(RuntimePrecision::F16).with_tuner_costs(costs.clone());
        // v4: full flat container with tuner costs.
        let v4 = to_bytes_legacy(&net, 4);
        let decoded = from_bytes(&v4).expect("v4 decodes");
        assert_eq!(decoded.tuner_costs(), &costs[..]);
        assert_eq!(net.forward(&frames()), decoded.forward(&frames()));
        // v3: same body, no tuner section.
        let v3 = to_bytes_legacy(&net, 3);
        let decoded = from_bytes(&v3).expect("v3 decodes");
        assert!(decoded.tuner_costs().is_empty());
        assert_eq!(net.forward(&frames()), decoded.forward(&frames()));
        // v2: no format bytes — only all-BSPC models ever existed, and the
        // decoder restores exactly that.
        let v2 = to_bytes_legacy(&net, 2);
        let decoded = from_bytes(&v2).expect("v2 decodes");
        assert_eq!(decoded.format(), RuntimeFormat::Bspc);
        assert!(decoded
            .layer_formats()
            .iter()
            .all(|f| *f == RuntimeFormat::Bspc));
        assert_eq!(net.forward(&frames()), decoded.forward(&frames()));
        // Legacy truncations fail cleanly too.
        for n in (0..v4.len()).step_by(13) {
            assert!(from_bytes(&v4[..n]).is_err(), "v4 prefix {n}");
        }
        for n in (0..v2.len()).step_by(13) {
            assert!(from_bytes(&v2[..n]).is_err(), "v2 prefix {n}");
        }
    }

    #[test]
    fn load_time_validation_rejects_non_finite_weights() {
        use crate::health::HealthPolicy;
        let mut net = compiled(RuntimePrecision::F32);
        let good = to_bytes(&net);
        assert!(from_bytes_with(&good, HealthPolicy::Quarantine).is_ok());
        net.head_b[0] = f32::NAN;
        let bad = to_bytes(&net);
        // Off trusts the file; any scanning policy rejects it.
        assert!(from_bytes_with(&bad, HealthPolicy::Off).is_ok());
        assert_eq!(
            from_bytes_with(&bad, HealthPolicy::Check).unwrap_err(),
            DecodeError::NonFinite
        );
        assert_eq!(
            from_bytes_with(&bad, HealthPolicy::Quarantine).unwrap_err(),
            DecodeError::NonFinite
        );
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let bytes = to_bytes(&compiled(RuntimePrecision::F16));
        for n in (0..bytes.len()).step_by(7) {
            assert!(from_bytes(&bytes[..n]).is_err(), "prefix {n}");
        }
        assert!(from_bytes(&bytes).is_ok());
    }
}
