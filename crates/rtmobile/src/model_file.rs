//! The `.rtm` model file: a deployable, self-contained serialization of a
//! compiled network.
//!
//! The paper's BSPC is a *storage* format; this module makes the full model
//! artifact concrete: every gate matrix in the binary BSPC encoding of
//! [`rtm_sparse::io`] (with f16 values on the GPU path), plus biases and
//! the dense classifier head. A phone ships exactly these bytes.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "RTMF" 4 B, version u16, precision u8, format u8 (network
//! defaults), layer_count u32
//! per layer: hidden u32, precision u8, format u8,
//!            6 x gate blobs (w_z u_z w_r u_r w_n u_n) in the layer's
//!            storage format's wire codec at the layer's storage precision
//!            (int8 layers ship native codes + scales),
//!            3 x bias runs (len u32 + f32s)
//! head: rows u32, cols u32, f32 weights, f32 bias
//! tuner costs: count u32, per entry layer u32, format u8, precision u8,
//!              micros f32
//! ```
//!
//! Version 2 added the per-layer precision byte and native int8 blobs;
//! version 3 added the per-layer storage-format byte (0 = BSPC, 1 = CSR,
//! 2 = BBS, 3 = CSB) with format-dispatched gate blobs; version 4 appended
//! the tuner-cost section, so a serving-side load can report what the
//! compile-time kernel probe measured without re-running it. Older files
//! are rejected with
//! [`DecodeError::BadVersion`](rtm_sparse::io::DecodeError::BadVersion).

use crate::deploy::{
    CompiledGruLayer, CompiledNetwork, GateMatrix, RuntimeFormat, RuntimePrecision, TunerCost,
};
use rtm_sparse::footprint::Precision;
use rtm_sparse::io::DecodeError;
use rtm_tensor::wire::{Buf, BufMut};
use rtm_tensor::Matrix;

/// Magic bytes opening every `.rtm` model file.
pub const MAGIC: &[u8; 4] = b"RTMF";

/// Current model-file version.
pub const VERSION: u16 = 4;

fn precision_code(p: RuntimePrecision) -> u8 {
    match p {
        RuntimePrecision::F32 => 0,
        RuntimePrecision::F16 => 1,
        RuntimePrecision::Int8 => 2,
    }
}

fn precision_from_code(code: u8) -> Result<RuntimePrecision, DecodeError> {
    match code {
        0 => Ok(RuntimePrecision::F32),
        1 => Ok(RuntimePrecision::F16),
        2 => Ok(RuntimePrecision::Int8),
        other => Err(DecodeError::BadPrecision(other)),
    }
}

fn format_code(f: RuntimeFormat) -> u8 {
    match f {
        RuntimeFormat::Bspc => 0,
        RuntimeFormat::Csr => 1,
        RuntimeFormat::Bbs => 2,
        RuntimeFormat::Csb => 3,
    }
}

fn format_from_code(code: u8) -> Result<RuntimeFormat, DecodeError> {
    match code {
        0 => Ok(RuntimeFormat::Bspc),
        1 => Ok(RuntimeFormat::Csr),
        2 => Ok(RuntimeFormat::Bbs),
        3 => Ok(RuntimeFormat::Csb),
        other => Err(DecodeError::BadFormat(other)),
    }
}

/// Serializes a compiled network to the `.rtm` byte format.
///
/// Each layer's gate blobs are stored at that layer's runtime precision:
/// f16 halves the value bytes, int8 ships the native per-stripe-block codes
/// and scales — the decoded network's int8 kernels stream the exact same
/// sidecar, so the functional roundtrip is bit-exact for every precision.
pub fn to_bytes(net: &CompiledNetwork) -> Vec<u8> {
    let mut out = Vec::new();
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u8(precision_code(net.precision));
    out.put_u8(format_code(net.format));
    out.put_u32_le(net.layers.len() as u32);
    for layer in &net.layers {
        out.put_u32_le(layer.hidden as u32);
        out.put_u8(precision_code(layer.precision));
        out.put_u8(format_code(layer.format));
        let prec: Precision = layer.precision.storage();
        for m in [
            &layer.w_z, &layer.u_z, &layer.w_r, &layer.u_r, &layer.w_n, &layer.u_n,
        ] {
            m.write_to(&mut out, prec);
        }
        for b in [&layer.b_z, &layer.b_r, &layer.b_n] {
            out.put_u32_le(b.len() as u32);
            for &v in b {
                out.put_f32_le(v);
            }
        }
    }
    out.put_u32_le(net.head_w.rows() as u32);
    out.put_u32_le(net.head_w.cols() as u32);
    for &v in net.head_w.as_slice() {
        out.put_f32_le(v);
    }
    out.put_u32_le(net.head_b.len() as u32);
    for &v in &net.head_b {
        out.put_f32_le(v);
    }
    let costs = net.tuner_costs();
    out.put_u32_le(costs.len() as u32);
    for c in costs {
        out.put_u32_le(c.layer as u32);
        out.put_u8(precision_code(c.precision));
        out.put_u8(format_code(c.format));
        out.put_f32_le(c.micros);
    }
    out
}

/// [`from_bytes`] plus optional load-time weight validation.
///
/// With any scanning [`HealthPolicy`](crate::health::HealthPolicy)
/// (`Check` or `Quarantine`) the decoded weights and biases must all be
/// finite — a corrupted or adversarial model file carrying NaN/Inf weights
/// is rejected at the door instead of poisoning every stream it serves.
/// [`HealthPolicy::Off`](crate::health::HealthPolicy::Off) skips the scan
/// and behaves exactly like [`from_bytes`].
///
/// # Errors
///
/// Returns [`DecodeError::NonFinite`] when validation is on and any weight
/// is NaN or infinite, and every [`from_bytes`] error otherwise.
pub fn from_bytes_with(
    bytes: &[u8],
    policy: crate::health::HealthPolicy,
) -> Result<CompiledNetwork, DecodeError> {
    let net = from_bytes(bytes)?;
    if policy.scans() {
        let finite = |vals: &[f32]| vals.iter().all(|v| v.is_finite());
        let healthy = net.layers.iter().all(|l| {
            [&l.w_z, &l.u_z, &l.w_r, &l.u_r, &l.w_n, &l.u_n]
                .iter()
                .all(|m| finite(m.values()))
                && [&l.b_z, &l.b_r, &l.b_n].iter().all(|b| finite(b))
        }) && finite(net.head_w.as_slice())
            && finite(&net.head_b);
        if !healthy {
            return Err(DecodeError::NonFinite);
        }
    }
    Ok(net)
}

/// Deserializes a compiled network from `.rtm` bytes.
///
/// # Errors
///
/// Returns [`DecodeError`] on any structural problem (truncation, bad
/// magic/version, invalid embedded BSPC blobs).
pub fn from_bytes(bytes: &[u8]) -> Result<CompiledNetwork, DecodeError> {
    let mut buf = bytes;
    let need = |buf: &[u8], n: usize| -> Result<(), DecodeError> {
        if buf.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    };

    need(buf, 4)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    need(buf, 4)?;
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let precision = precision_from_code(buf.get_u8())?;
    let format = format_from_code(buf.get_u8())?;

    need(buf, 4)?;
    let layer_count = buf.get_u32_le() as usize;
    // Each layer needs at least its hidden-width word plus six gate blobs;
    // reject counts the buffer cannot possibly hold before allocating.
    if layer_count > buf.remaining() / 4 {
        return Err(DecodeError::Truncated);
    }
    let mut layers = Vec::new();
    for _ in 0..layer_count {
        need(buf, 6)?;
        let hidden = buf.get_u32_le() as usize;
        let layer_precision = precision_from_code(buf.get_u8())?;
        let layer_format = format_from_code(buf.get_u8())?;
        let mut mats: Vec<GateMatrix> = Vec::with_capacity(6);
        for _ in 0..6 {
            let (m, used) = GateMatrix::read_from(buf, layer_format)?;
            buf.advance(used);
            mats.push(m);
        }
        let mut biases: Vec<Vec<f32>> = Vec::with_capacity(3);
        for _ in 0..3 {
            need(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(buf, n.saturating_mul(4))?;
            biases.push((0..n).map(|_| buf.get_f32_le()).collect());
        }
        let u_n = mats.pop().expect("six matrices");
        let w_n = mats.pop().expect("six matrices");
        let u_r = mats.pop().expect("six matrices");
        let w_r = mats.pop().expect("six matrices");
        let u_z = mats.pop().expect("six matrices");
        let w_z = mats.pop().expect("six matrices");
        let b_n = biases.pop().expect("three biases");
        let b_r = biases.pop().expect("three biases");
        let b_z = biases.pop().expect("three biases");
        layers.push(CompiledGruLayer {
            w_z,
            u_z,
            b_z,
            w_r,
            u_r,
            b_r,
            w_n,
            u_n,
            b_n,
            hidden,
            precision: layer_precision,
            format: layer_format,
        });
    }

    need(buf, 8)?;
    let rows = buf.get_u32_le() as usize;
    let cols = buf.get_u32_le() as usize;
    let head_len = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(4))
        .ok_or(DecodeError::Truncated)?;
    need(buf, head_len)?;
    let head_data: Vec<f32> = (0..rows * cols).map(|_| buf.get_f32_le()).collect();
    let head_w = Matrix::from_vec(rows, cols, head_data).map_err(|_| DecodeError::Truncated)?;
    need(buf, 4)?;
    let nb = buf.get_u32_le() as usize;
    need(buf, nb.saturating_mul(4))?;
    let head_b: Vec<f32> = (0..nb).map(|_| buf.get_f32_le()).collect();

    need(buf, 4)?;
    let cost_count = buf.get_u32_le() as usize;
    // 10 bytes per entry; reject counts the buffer cannot hold before
    // allocating.
    if cost_count > buf.remaining() / 10 {
        return Err(DecodeError::Truncated);
    }
    let mut tuner_costs = Vec::with_capacity(cost_count);
    for _ in 0..cost_count {
        need(buf, 10)?;
        let layer = buf.get_u32_le() as usize;
        let precision = precision_from_code(buf.get_u8())?;
        let format = format_from_code(buf.get_u8())?;
        let micros = buf.get_f32_le();
        tuner_costs.push(TunerCost {
            layer,
            format,
            precision,
            micros,
        });
    }

    Ok(CompiledNetwork {
        layers,
        head_w,
        head_b,
        precision,
        format,
        tuner_costs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_rnn::model::{GruNetwork, NetworkConfig};

    fn compiled(precision: RuntimePrecision) -> CompiledNetwork {
        let net = GruNetwork::new(
            &NetworkConfig {
                input_dim: 5,
                hidden_dims: vec![8, 8],
                num_classes: 3,
            },
            31,
        );
        CompiledNetwork::compile(&net, 4, 2, precision).expect("partition fits")
    }

    fn frames() -> Vec<Vec<f32>> {
        (0..6)
            .map(|t| (0..5).map(|i| ((t * 5 + i) as f32 * 0.4).sin()).collect())
            .collect()
    }

    #[test]
    fn f32_model_roundtrips_bit_exact() {
        let net = compiled(RuntimePrecision::F32);
        let bytes = to_bytes(&net);
        let decoded = from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded.precision(), RuntimePrecision::F32);
        let a = net.forward(&frames());
        let b = decoded.forward(&frames());
        assert_eq!(a, b, "f32 serialization must be lossless");
    }

    #[test]
    fn f16_model_roundtrips_functionally() {
        // The compiled f16 network's weights are already f16-quantized, so
        // storing them as f16 bit patterns is lossless for the values.
        let net = compiled(RuntimePrecision::F16);
        let bytes = to_bytes(&net);
        let decoded = from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded.precision(), RuntimePrecision::F16);
        let a = net.forward(&frames());
        let b = decoded.forward(&frames());
        assert_eq!(a, b, "f16 model already quantized; file roundtrip is exact");
    }

    #[test]
    fn int8_model_roundtrips_bit_exact() {
        // The int8 blobs ship the native codes and scales, and the int8
        // kernels read only that sidecar — so the functional roundtrip is
        // exact, not merely close.
        let net = compiled(RuntimePrecision::Int8);
        let bytes = to_bytes(&net);
        let decoded = from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded.precision(), RuntimePrecision::Int8);
        assert_eq!(decoded.layer_precisions(), net.layer_precisions());
        assert_eq!(net.forward(&frames()), decoded.forward(&frames()));
    }

    #[test]
    fn mixed_precision_layers_roundtrip_bit_exact() {
        let base = GruNetwork::new(
            &NetworkConfig {
                input_dim: 5,
                hidden_dims: vec![8, 8],
                num_classes: 3,
            },
            31,
        );
        let net = CompiledNetwork::compile_with_precisions(
            &base,
            4,
            2,
            &[RuntimePrecision::Int8, RuntimePrecision::F16],
            RuntimePrecision::F32,
        )
        .expect("partition fits");
        let decoded = from_bytes(&to_bytes(&net)).expect("decodes");
        assert_eq!(
            decoded.layer_precisions(),
            vec![RuntimePrecision::Int8, RuntimePrecision::F16]
        );
        assert_eq!(decoded.precision(), RuntimePrecision::F32);
        assert_eq!(net.forward(&frames()), decoded.forward(&frames()));
    }

    #[test]
    fn every_format_roundtrips_functionally_every_precision() {
        let base = GruNetwork::new(
            &NetworkConfig {
                input_dim: 5,
                hidden_dims: vec![8, 8],
                num_classes: 3,
            },
            31,
        );
        for format in [
            RuntimeFormat::Bspc,
            RuntimeFormat::Csr,
            RuntimeFormat::Bbs,
            RuntimeFormat::Csb,
        ] {
            for precision in [
                RuntimePrecision::F32,
                RuntimePrecision::F16,
                RuntimePrecision::Int8,
            ] {
                let net =
                    CompiledNetwork::compile_with_formats(&base, 4, 2, &[], precision, &[], format)
                        .expect("partition fits");
                let decoded = from_bytes(&to_bytes(&net)).expect("decodes");
                assert_eq!(decoded.format(), format);
                assert_eq!(decoded.layer_formats(), net.layer_formats());
                assert_eq!(
                    net.forward(&frames()),
                    decoded.forward(&frames()),
                    "{format:?} {precision:?} file roundtrip must be functionally exact"
                );
            }
        }
    }

    #[test]
    fn mixed_format_layers_roundtrip_bit_exact() {
        let base = GruNetwork::new(
            &NetworkConfig {
                input_dim: 5,
                hidden_dims: vec![8, 8],
                num_classes: 3,
            },
            31,
        );
        let net = CompiledNetwork::compile_with_formats(
            &base,
            4,
            2,
            &[],
            RuntimePrecision::F32,
            &[RuntimeFormat::Bbs, RuntimeFormat::Csb],
            RuntimeFormat::Bspc,
        )
        .expect("partition fits");
        let decoded = from_bytes(&to_bytes(&net)).expect("decodes");
        assert_eq!(
            decoded.layer_formats(),
            vec![RuntimeFormat::Bbs, RuntimeFormat::Csb]
        );
        assert_eq!(decoded.format(), RuntimeFormat::Bspc);
        assert_eq!(net.forward(&frames()), decoded.forward(&frames()));
    }

    #[test]
    fn tuner_costs_roundtrip_and_default_empty() {
        let plain = compiled(RuntimePrecision::F16);
        let decoded = from_bytes(&to_bytes(&plain)).expect("decodes");
        assert!(decoded.tuner_costs().is_empty());

        let costs = vec![
            TunerCost {
                layer: 0,
                format: RuntimeFormat::Bbs,
                precision: RuntimePrecision::Int8,
                micros: 12.5,
            },
            TunerCost {
                layer: 1,
                format: RuntimeFormat::Bspc,
                precision: RuntimePrecision::F16,
                micros: 7.25,
            },
        ];
        let tuned = compiled(RuntimePrecision::F16).with_tuner_costs(costs.clone());
        let bytes = to_bytes(&tuned);
        let decoded = from_bytes(&bytes).expect("decodes");
        assert_eq!(decoded.tuner_costs(), &costs[..]);
        // The probe metadata never changes the numbers the model computes.
        assert_eq!(decoded.forward(&frames()), tuned.forward(&frames()));
        // A corrupt cost count cannot force an allocation the buffer
        // cannot back.
        let n = bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[n - 24..n - 20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(from_bytes(&corrupt).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn rejects_unknown_format_byte() {
        let mut bytes = to_bytes(&compiled(RuntimePrecision::F32));
        // magic(4) + version(2) + precision(1) puts the network format
        // byte at offset 7.
        bytes[7] = 9;
        assert_eq!(from_bytes(&bytes).unwrap_err(), DecodeError::BadFormat(9));
    }

    #[test]
    fn lower_precision_files_are_smaller() {
        let f32_bytes = to_bytes(&compiled(RuntimePrecision::F32));
        let f16_bytes = to_bytes(&compiled(RuntimePrecision::F16));
        let int8_bytes = to_bytes(&compiled(RuntimePrecision::Int8));
        assert!(
            int8_bytes.len() < f16_bytes.len() && f16_bytes.len() < f32_bytes.len(),
            "{} vs {} vs {}",
            int8_bytes.len(),
            f16_bytes.len(),
            f32_bytes.len()
        );
    }

    #[test]
    fn rejects_corruption() {
        let mut bytes = to_bytes(&compiled(RuntimePrecision::F32));
        assert!(from_bytes(&bytes[..10]).is_err(), "truncated");
        bytes[0] = b'X';
        assert_eq!(from_bytes(&bytes).unwrap_err(), DecodeError::BadMagic);
        let mut bytes = to_bytes(&compiled(RuntimePrecision::F32));
        bytes[4] = 0xFF;
        assert!(matches!(
            from_bytes(&bytes).unwrap_err(),
            DecodeError::BadVersion(_)
        ));
    }

    #[test]
    fn load_time_validation_rejects_non_finite_weights() {
        use crate::health::HealthPolicy;
        let mut net = compiled(RuntimePrecision::F32);
        let good = to_bytes(&net);
        assert!(from_bytes_with(&good, HealthPolicy::Quarantine).is_ok());
        net.head_b[0] = f32::NAN;
        let bad = to_bytes(&net);
        // Off trusts the file; any scanning policy rejects it.
        assert!(from_bytes_with(&bad, HealthPolicy::Off).is_ok());
        assert_eq!(
            from_bytes_with(&bad, HealthPolicy::Check).unwrap_err(),
            DecodeError::NonFinite
        );
        assert_eq!(
            from_bytes_with(&bad, HealthPolicy::Quarantine).unwrap_err(),
            DecodeError::NonFinite
        );
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let bytes = to_bytes(&compiled(RuntimePrecision::F16));
        for n in (0..bytes.len()).step_by(7) {
            assert!(from_bytes(&bytes[..n]).is_err(), "prefix {n}");
        }
        assert!(from_bytes(&bytes).is_ok());
    }
}
