//! Typed errors of the execution engine.
//!
//! The serving contract (DESIGN.md §10) is that a fault inside a kernel
//! task is *contained*: it surfaces to the caller as a value, the pool
//! stays serviceable, and the next batch runs clean. [`ExecError`] is that
//! value — either a shape mismatch detected before any work was dispatched,
//! or a panic caught on whichever thread ran the offending task.

use rtm_tensor::ShapeError;
use std::error::Error;
use std::fmt;

/// Error returned by [`Executor`](crate::Executor) and
/// [`WorkerPool`](crate::WorkerPool) entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Operand shapes disagree; nothing was dispatched and no output byte
    /// was written.
    Shape(ShapeError),
    /// A task panicked while the batch ran. The batch fully drained before
    /// this was returned (no task is left running against caller memory),
    /// the pool remains serviceable, and any output buffer the batch was
    /// writing holds unspecified — but initialized — data.
    WorkerPanicked {
        /// Payload of the first panic observed in the batch.
        message: String,
    },
}

impl ExecError {
    /// Shorthand for a [`ShapeError`] wrapped in [`ExecError::Shape`].
    pub(crate) fn shape(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> ExecError {
        ExecError::Shape(ShapeError { op, lhs, rhs })
    }

    /// True when the error came from a contained task panic.
    pub fn is_panic(&self) -> bool {
        matches!(self, ExecError::WorkerPanicked { .. })
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Shape(e) => write!(f, "{e}"),
            ExecError::WorkerPanicked { message } => {
                write!(f, "worker task panicked: {message}")
            }
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Shape(e) => Some(e),
            ExecError::WorkerPanicked { .. } => None,
        }
    }
}

impl From<ShapeError> for ExecError {
    fn from(e: ShapeError) -> ExecError {
        ExecError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let s = ExecError::shape("op", (2, 3), (4, 5));
        assert!(format!("{s}").contains("op"));
        assert!(Error::source(&s).is_some());
        assert!(!s.is_panic());
        let p = ExecError::WorkerPanicked {
            message: "boom".into(),
        };
        assert!(format!("{p}").contains("boom"));
        assert!(Error::source(&p).is_none());
        assert!(p.is_panic());
    }

    #[test]
    fn shape_error_converts() {
        let e: ExecError = ShapeError {
            op: "x",
            lhs: (1, 1),
            rhs: (2, 2),
        }
        .into();
        assert!(matches!(e, ExecError::Shape(_)));
    }
}
