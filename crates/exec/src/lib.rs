#![warn(missing_docs)]

//! # rtm-exec
//!
//! The multi-threaded SpMV execution engine — the runtime the compiler's
//! reorder/RLE machinery in `rtm-compiler` was always optimizing *for*.
//!
//! The paper's claim (§IV-B, Fig. 4) is that BSP sparsity only pays off
//! because matrix reorder hands parallel threads balanced row groups. This
//! crate makes that concrete on CPU:
//!
//! * [`pool`] — a persistent worker pool over `std::thread` + channels
//!   (no registry dependencies), caller-participating, with contained task
//!   panics (a typed [`ExecError::WorkerPanicked`] instead of a re-panic,
//!   dead workers respawned) and a serial fast path at `threads = 1`;
//! * [`partition`] — cost-balanced contiguous chunking of the kept-row
//!   space (balancing nonzeros, not rows), derivable directly from a
//!   `ReorderPlan`'s pattern groups, with the *measured* imbalance factor
//!   the device model consumes;
//! * [`spmv`] — lock-free parallel SpMV for BSPC, CSR and dense behind the
//!   [`Executor`] handle: per-thread disjoint `&mut` output slices, and a
//!   blocked BSPC inner kernel that gathers each stripe's shared column
//!   stream once per chunk (redundant-load elimination).
//!
//! Every parallel path accumulates in the same order as its serial
//! counterpart, so results are bit-identical for all thread counts — the
//! equivalence tests in this crate and `tests/parallel_exec.rs` pin that.
//!
//! # Example
//!
//! ```
//! use rtm_exec::Executor;
//! use rtm_sparse::BspcMatrix;
//! use rtm_tensor::Matrix;
//!
//! let w = Matrix::from_fn(8, 8, |r, c| if c % 2 == r / 4 { 1.0 } else { 0.0 });
//! let m = BspcMatrix::from_dense(&w, 2, 2).unwrap();
//! let x: Vec<f32> = (0..8).map(|i| i as f32).collect();
//!
//! let exec = Executor::new(4);
//! let parallel = exec.spmv_bspc(&m, &x).unwrap();
//! assert_eq!(parallel, m.spmv(&x).unwrap());
//! ```

pub mod error;
pub mod partition;
pub mod pool;
pub mod spmv;

pub use error::ExecError;
pub use partition::{Chunk, Partition};
pub use pool::{Task, WorkerPool};
pub use spmv::{
    bspc_rows_batch_into, bspc_rows_into, csr_rows_batch_into, csr_rows_into,
    dense_rows_batch_into, dense_rows_into, Executor,
};

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_sparse::{BbsMatrix, BspcMatrix, CsbMatrix, CsrMatrix, Precision};
    use rtm_tensor::rng::StdRng;
    use rtm_tensor::Matrix;

    /// Thread counts the equivalence suite sweeps (per the issue: 1, 2, 3
    /// and more-threads-than-cores 8).
    const THREADS: [usize; 4] = [1, 2, 3, 8];

    /// A randomized BSP-pruned matrix: per stripe, a random subset of
    /// columns survives per block; a random subset of rows survives.
    fn bsp_random(
        rows: usize,
        cols: usize,
        stripes: usize,
        blocks: usize,
        keep_cols: f64,
        keep_rows: f64,
        seed: u64,
    ) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let stripe_h = rows.div_ceil(stripes);
        let block_w = cols.div_ceil(blocks);
        let mut col_kept = vec![false; stripes * cols];
        for s in 0..stripes {
            for c in 0..cols {
                let _ = block_w; // block granularity folded into the draw
                if f64::from(rng.gen_f32()) < keep_cols {
                    col_kept[s * cols + c] = true;
                }
            }
        }
        let row_kept: Vec<bool> = (0..rows)
            .map(|_| f64::from(rng.gen_f32()) < keep_rows)
            .collect();
        Matrix::from_fn(rows, cols, |r, c| {
            let s = (r / stripe_h).min(stripes - 1);
            if row_kept[r] && col_kept[s * cols + c] {
                0.1 + ((r * 13 + c * 7) % 89) as f32 / 10.0
            } else {
                0.0
            }
        })
    }

    fn input(cols: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..cols).map(|_| rng.gen_f32() * 2.0 - 1.0).collect()
    }

    #[test]
    fn bspc_parallel_matches_serial_bit_exact() {
        for seed in 0..5u64 {
            let w = bsp_random(64, 48, 4, 4, 0.3, 0.8, seed);
            let m = BspcMatrix::from_dense(&w, 4, 4).unwrap();
            let x = input(48, seed + 100);
            let serial = m.spmv(&x).unwrap();
            for threads in THREADS {
                let exec = Executor::new(threads);
                let par = exec.spmv_bspc(&m, &x).unwrap();
                assert_eq!(par, serial, "seed {seed}, {threads} threads");
                // And the into-variant over a dirty buffer.
                let mut y = vec![f32::NAN; 64];
                exec.spmv_bspc_into(&m, &x, &mut y).unwrap();
                assert_eq!(y, serial);
            }
        }
    }

    #[test]
    fn csr_parallel_matches_serial_bit_exact() {
        for seed in 0..5u64 {
            let w = bsp_random(57, 33, 3, 3, 0.4, 0.7, seed);
            let m = CsrMatrix::from_dense(&w);
            let x = input(33, seed + 7);
            let serial = m.spmv(&x).unwrap();
            for threads in THREADS {
                let exec = Executor::new(threads);
                assert_eq!(
                    exec.spmv_csr(&m, &x).unwrap(),
                    serial,
                    "seed {seed}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn dense_parallel_matches_serial_bit_exact() {
        for seed in 0..3u64 {
            let w = bsp_random(41, 29, 1, 1, 1.0, 1.0, seed);
            let x = input(29, seed);
            // Serial reference through the same dispatched simd kernel the
            // parallel row workers run — results must be bit-identical for
            // every thread count and every SimdPolicy.
            let serial: Vec<f32> = (0..41)
                .map(|r| rtm_tensor::simd::dot(w.row(r), &x))
                .collect();
            for threads in THREADS {
                let exec = Executor::new(threads);
                assert_eq!(exec.gemv_dense(&w, &x).unwrap(), serial, "seed {seed}");
            }
        }
    }

    #[test]
    fn batched_spmm_lanes_match_serial_spmv_bit_exact() {
        // The batched engine's contract: for every format and thread count,
        // lane j of the parallel SpMM equals the *serial* SpMV of lane j's
        // column, bit for bit.
        for seed in 0..3u64 {
            let w = bsp_random(64, 48, 4, 4, 0.3, 0.8, seed);
            let m = BspcMatrix::from_dense(&w, 4, 4).unwrap();
            let c = CsrMatrix::from_dense(&w);
            for b in [1usize, 3, 8] {
                let xs = input(48 * b, seed + 200);
                let serial_bspc = m.spmm(&xs, b).unwrap();
                for threads in THREADS {
                    let exec = Executor::new(threads);
                    let mut ys = vec![f32::NAN; 64 * b];
                    exec.spmm_bspc_into(&m, &xs, b, &mut ys).unwrap();
                    assert_eq!(ys, serial_bspc, "bspc seed {seed} b={b} t={threads}");
                    let mut yc = vec![f32::NAN; 64 * b];
                    exec.spmm_csr_into(&c, &xs, b, &mut yc).unwrap();
                    assert_eq!(yc, c.spmm(&xs, b).unwrap(), "csr seed {seed} b={b}");
                    let mut yd = vec![f32::NAN; 64 * b];
                    exec.gemm_dense_into(&w, &xs, b, &mut yd).unwrap();
                    for j in 0..b {
                        let col: Vec<f32> = (0..48).map(|i| xs[i * b + j]).collect();
                        let want = m.spmv(&col).unwrap();
                        for r in 0..64 {
                            assert_eq!(ys[r * b + j], want[r], "lane {j} row {r}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bbs_parallel_matches_serial_every_precision() {
        for seed in 0..3u64 {
            let w = bsp_random(61, 47, 3, 3, 0.35, 0.8, seed);
            let m = BbsMatrix::from_dense(&w, 4).unwrap();
            let x = input(47, seed + 11);
            for prec in [Precision::F32, Precision::F16, Precision::Int8] {
                let mut serial = vec![0.0f32; 61];
                m.spmv_prec_into(prec, &x, &mut serial).unwrap();
                for threads in THREADS {
                    let exec = Executor::new(threads);
                    let mut y = vec![f32::NAN; 61];
                    exec.spmv_bbs_prec_into(&m, prec, &x, &mut y).unwrap();
                    assert_eq!(y, serial, "seed {seed} {prec:?} t={threads}");
                }
                for b in [1usize, 3, 8] {
                    let xs = input(47 * b, seed + 300);
                    let mut sm = vec![0.0f32; 61 * b];
                    m.spmm_prec_into(prec, &xs, b, &mut sm).unwrap();
                    for threads in THREADS {
                        let exec = Executor::new(threads);
                        let mut ys = vec![f32::NAN; 61 * b];
                        exec.spmm_bbs_prec_into(&m, prec, &xs, b, &mut ys).unwrap();
                        assert_eq!(ys, sm, "seed {seed} {prec:?} b={b} t={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn csb_parallel_matches_serial_every_precision() {
        for seed in 0..3u64 {
            let w = bsp_random(53, 39, 3, 3, 0.35, 0.8, seed);
            let m = CsbMatrix::from_dense(&w, 6, 5).unwrap();
            let x = input(39, seed + 17);
            for prec in [Precision::F32, Precision::F16, Precision::Int8] {
                let mut serial = vec![0.0f32; 53];
                m.spmv_prec_into(prec, &x, &mut serial).unwrap();
                for threads in THREADS {
                    let exec = Executor::new(threads);
                    let mut y = vec![f32::NAN; 53];
                    exec.spmv_csb_prec_into(&m, prec, &x, &mut y).unwrap();
                    assert_eq!(y, serial, "seed {seed} {prec:?} t={threads}");
                }
                for b in [1usize, 3, 8] {
                    let xs = input(39 * b, seed + 400);
                    let mut sm = vec![0.0f32; 53 * b];
                    m.spmm_prec_into(prec, &xs, b, &mut sm).unwrap();
                    for threads in THREADS {
                        let exec = Executor::new(threads);
                        let mut ys = vec![f32::NAN; 53 * b];
                        exec.spmm_csb_prec_into(&m, prec, &xs, b, &mut ys).unwrap();
                        assert_eq!(ys, sm, "seed {seed} {prec:?} b={b} t={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn bbs_csb_empty_and_shape_errors() {
        let w = Matrix::zeros(8, 8);
        let bb = BbsMatrix::from_dense(&w, 2).unwrap();
        let cb = CsbMatrix::from_dense(&w, 2, 2).unwrap();
        let exec = Executor::new(4);
        assert_eq!(exec.spmv_bbs(&bb, &[1.0; 8]).unwrap(), vec![0.0; 8]);
        assert_eq!(exec.spmv_csb(&cb, &[1.0; 8]).unwrap(), vec![0.0; 8]);
        assert!(exec.spmv_bbs(&bb, &[0.0; 7]).is_err());
        assert!(exec.spmv_csb(&cb, &[0.0; 7]).is_err());
        let mut bad = vec![0.0; 9];
        assert!(exec.spmm_bbs_into(&bb, &[0.0; 8], 1, &mut bad).is_err());
        assert!(exec.spmm_csb_into(&cb, &[0.0; 8], 1, &mut bad).is_err());
    }

    #[test]
    fn fully_pruned_rows_stay_zero() {
        // Rows 8..16 entirely pruned; outputs there must be exactly 0.
        let w = Matrix::from_fn(16, 16, |r, c| {
            if r < 8 && c % 4 == 0 {
                1.0 + r as f32
            } else {
                0.0
            }
        });
        let m = BspcMatrix::from_dense(&w, 4, 4).unwrap();
        let x = input(16, 3);
        let serial = m.spmv(&x).unwrap();
        for threads in THREADS {
            let exec = Executor::new(threads);
            let mut y = vec![f32::NAN; 16];
            exec.spmv_bspc_into(&m, &x, &mut y).unwrap();
            assert_eq!(y, serial);
            assert!(y[8..].iter().all(|&v| v == 0.0), "pruned rows zeroed");
        }
    }

    #[test]
    fn single_reorder_group_still_splits() {
        // Every row shares one pattern: a single reorder group. The
        // partition must still cut inside the group (same-cost rows).
        let w = Matrix::from_fn(32, 32, |_, c| if c % 3 == 0 { 2.0 } else { 0.0 });
        let m = BspcMatrix::from_dense(&w, 1, 1).unwrap();
        let x = input(32, 9);
        let serial = m.spmv(&x).unwrap();
        for threads in THREADS {
            let exec = Executor::new(threads);
            assert_eq!(exec.spmv_bspc(&m, &x).unwrap(), serial);
            if threads > 1 {
                let p = exec.partition_bspc(&m);
                assert!(p.len() > 1, "chunking must split inside the group");
                assert!((p.imbalance() - 1.0).abs() < 0.5);
            }
        }
    }

    #[test]
    fn more_threads_than_rows() {
        let w = Matrix::from_fn(3, 12, |_, c| if c < 6 { 1.0 } else { 0.0 });
        let m = BspcMatrix::from_dense(&w, 1, 2).unwrap();
        let c = CsrMatrix::from_dense(&w);
        let x = input(12, 4);
        let serial = m.spmv(&x).unwrap();
        let exec = Executor::new(8);
        assert_eq!(exec.spmv_bspc(&m, &x).unwrap(), serial);
        assert_eq!(exec.spmv_csr(&c, &x).unwrap(), c.spmv(&x).unwrap());
        assert_eq!(exec.gemv_dense(&w, &x).unwrap().len(), 3);
    }

    #[test]
    fn empty_and_all_zero_matrices() {
        // All-zero matrix: BSPC keeps no rows at all.
        let w = Matrix::zeros(8, 8);
        let m = BspcMatrix::from_dense(&w, 2, 2).unwrap();
        let x = vec![1.0f32; 8];
        for threads in THREADS {
            let exec = Executor::new(threads);
            assert_eq!(exec.spmv_bspc(&m, &x).unwrap(), vec![0.0; 8]);
        }
        // Zero-row matrix.
        let empty = Matrix::zeros(0, 4);
        let ec = CsrMatrix::from_dense(&empty);
        let exec = Executor::new(4);
        assert!(exec.spmv_csr(&ec, &[0.0; 4]).unwrap().is_empty());
        assert!(exec.gemv_dense(&empty, &[0.0; 4]).unwrap().is_empty());
    }

    #[test]
    fn shape_errors_reported() {
        let w = bsp_random(8, 8, 2, 2, 0.5, 1.0, 1);
        let m = BspcMatrix::from_dense(&w, 2, 2).unwrap();
        let exec = Executor::new(2);
        assert!(exec.spmv_bspc(&m, &[0.0; 7]).is_err());
        let mut y = vec![0.0; 9];
        assert!(exec.spmv_bspc_into(&m, &[0.0; 8], &mut y).is_err());
    }

    #[test]
    fn executor_reuse_across_many_calls() {
        // The pool is persistent: hammer it with many batches and shapes.
        let exec = Executor::new(3);
        for seed in 0..20u64 {
            let rows = 8 + (seed as usize % 5) * 7;
            let w = bsp_random(rows, 24, 2, 3, 0.4, 0.9, seed);
            let m = BspcMatrix::from_dense(&w, 2, 3).unwrap();
            let x = input(24, seed);
            assert_eq!(exec.spmv_bspc(&m, &x).unwrap(), m.spmv(&x).unwrap());
        }
    }
}
