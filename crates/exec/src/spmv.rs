//! Parallel SpMV/GEMV kernels and the [`Executor`] front-end.
//!
//! Three design rules, all from the paper's mobile runtime (§IV-B):
//!
//! 1. **Reorder-driven chunking.** Work is partitioned by cost (nonzeros),
//!    not by row count, over the kept-row space — for BSPC the stripes
//!    *are* the pattern groups the reorder produces, so contiguous
//!    kept-row chunks are exactly "similar-pattern rows → one chunk per
//!    thread".
//! 2. **No locks on the hot path.** Chunk boundaries in the (ascending)
//!    kept-row space map to disjoint, ascending output ranges, so each
//!    thread receives its own `&mut` slice of `y` via `split_at_mut` and
//!    the batch needs no synchronization beyond completion.
//! 3. **Redundant-load elimination.** Within a chunk, all rows of a stripe
//!    share one column stream; the kernel gathers the needed `x` values
//!    into a dense scratch once per stripe run and every row then reads
//!    unit-stride — the Rust realization of the paper's load redundancy
//!    elimination.
//!
//! The chunk kernels ([`bspc_rows_into`], [`csr_rows_into`],
//! [`dense_rows_into`]) are public so benchmarks can time a chunk's busy
//! work in isolation; each accumulates in the same order as the serial
//! `spmv`, so parallel results are bit-identical to serial ones.

use crate::error::ExecError;
use crate::partition::Partition;
use crate::pool::{Task, WorkerPool};
use rtm_sparse::{BbsMatrix, BspcMatrix, CsbMatrix, CsrMatrix, Precision};
use rtm_tensor::Matrix;

/// Computes `y[r] = A[r] · x` for the kept rows `kept_range` of a BSPC
/// matrix, writing into `y[r - y_base]`. Rows outside the range — and
/// pruned rows inside it — are left untouched, so the caller zero-fills.
///
/// This is the blocked inner kernel: for each run of kept rows sharing a
/// stripe, the stripe's shared column stream is gathered from `x` into a
/// dense scratch once, then every row of the run does a unit-stride dot.
pub fn bspc_rows_into(
    m: &BspcMatrix,
    x: &[f32],
    kept_range: std::ops::Range<usize>,
    y: &mut [f32],
    y_base: usize,
) {
    let stripe_h = m.stripe_height();
    let kept = m.kept_rows();
    let values = m.values();
    let variant = rtm_tensor::simd::active_variant();
    let mut gathered: Vec<f32> = Vec::new();
    let mut k = kept_range.start;
    while k < kept_range.end {
        let s = kept[k] as usize / stripe_h;
        let mut run_end = k + 1;
        while run_end < kept_range.end && kept[run_end] as usize / stripe_h == s {
            run_end += 1;
        }
        let cols = m.stripe_kept_cols(s);
        gathered.clear();
        gathered.extend(cols.iter().map(|&c| x[c as usize]));
        for kk in k..run_end {
            let off = m.row_offset(kk);
            let vals = &values[off..off + cols.len()];
            // Unit-stride simd dot over the gathered stripe inputs. The
            // vector realization groups lanes exactly like the indexed dot
            // of the serial `BspcMatrix::spmv_into`, so parallel results
            // stay bit-identical to serial ones under every SimdPolicy.
            y[kept[kk] as usize - y_base] = rtm_tensor::simd::dot_variant(variant, vals, &gathered);
        }
        k = run_end;
    }
}

/// Computes `y[r] = A[r] · x` for CSR rows `rows`, writing into
/// `y[r - y_base]`. Every row in the range is written (empty rows get 0).
pub fn csr_rows_into(
    m: &CsrMatrix,
    x: &[f32],
    rows: std::ops::Range<usize>,
    y: &mut [f32],
    y_base: usize,
) {
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    let variant = rtm_tensor::simd::active_variant();
    for r in rows {
        let start = row_ptr[r] as usize;
        let end = row_ptr[r + 1] as usize;
        y[r - y_base] = rtm_tensor::simd::indexed_dot_variant(
            variant,
            &values[start..end],
            &col_idx[start..end],
            x,
        );
    }
}

/// Computes `y[r] = A[r] · x` for dense rows `rows`, writing into
/// `y[r - y_base]`.
pub fn dense_rows_into(
    m: &Matrix,
    x: &[f32],
    rows: std::ops::Range<usize>,
    y: &mut [f32],
    y_base: usize,
) {
    let variant = rtm_tensor::simd::active_variant();
    for r in rows {
        y[r - y_base] = rtm_tensor::simd::dot_variant(variant, m.row(r), x);
    }
}

/// Computes `ys[(r - y_base)·b + j] = A[r] · X[:, j]` for the kept rows
/// `kept_range` of a BSPC matrix over `b` interleaved input lanes
/// (`xs[c·b + j]`). Rows outside the range — and pruned rows inside it —
/// are left untouched, so the caller zero-fills.
///
/// Mirrors [`bspc_rows_into`]: per stripe run, the shared column stream is
/// gathered into a lane-major `[len × b]` scratch **once**, then every row
/// of the run does a unit-stride batched dot. The batched dense dot shares
/// the batched indexed dot's lane structure, so each lane is bit-identical
/// to the serial `BspcMatrix::spmm_into` — and hence to the serial SpMV of
/// that lane's column — under every `SimdPolicy`.
pub fn bspc_rows_batch_into(
    m: &BspcMatrix,
    xs: &[f32],
    b: usize,
    kept_range: std::ops::Range<usize>,
    ys: &mut [f32],
    y_base: usize,
) {
    let stripe_h = m.stripe_height();
    let kept = m.kept_rows();
    let values = m.values();
    let variant = rtm_tensor::simd::active_variant();
    let mut gathered: Vec<f32> = Vec::new();
    let mut k = kept_range.start;
    while k < kept_range.end {
        let s = kept[k] as usize / stripe_h;
        let mut run_end = k + 1;
        while run_end < kept_range.end && kept[run_end] as usize / stripe_h == s {
            run_end += 1;
        }
        let cols = m.stripe_kept_cols(s);
        gathered.clear();
        for &c in cols {
            let base = c as usize * b;
            gathered.extend_from_slice(&xs[base..base + b]);
        }
        for (kk, &row) in kept.iter().enumerate().take(run_end).skip(k) {
            let off = m.row_offset(kk);
            let vals = &values[off..off + cols.len()];
            let out_base = (row as usize - y_base) * b;
            rtm_tensor::simd::dot_batch_variant(
                variant,
                vals,
                &gathered,
                b,
                &mut ys[out_base..out_base + b],
            );
        }
        k = run_end;
    }
}

/// Computes `ys[(r - y_base)·b + j] = A[r] · X[:, j]` for CSR rows `rows`
/// over `b` interleaved input lanes. Every row in the range is written
/// (empty rows get 0).
pub fn csr_rows_batch_into(
    m: &CsrMatrix,
    xs: &[f32],
    b: usize,
    rows: std::ops::Range<usize>,
    ys: &mut [f32],
    y_base: usize,
) {
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    let variant = rtm_tensor::simd::active_variant();
    for r in rows {
        let start = row_ptr[r] as usize;
        let end = row_ptr[r + 1] as usize;
        let out_base = (r - y_base) * b;
        rtm_tensor::simd::indexed_dot_batch_variant(
            variant,
            &values[start..end],
            &col_idx[start..end],
            xs,
            b,
            &mut ys[out_base..out_base + b],
        );
    }
}

/// Computes `ys[(r - y_base)·b + j] = A[r] · X[:, j]` for dense rows `rows`
/// over `b` interleaved input lanes.
pub fn dense_rows_batch_into(
    m: &Matrix,
    xs: &[f32],
    b: usize,
    rows: std::ops::Range<usize>,
    ys: &mut [f32],
    y_base: usize,
) {
    let variant = rtm_tensor::simd::active_variant();
    for r in rows {
        let out_base = (r - y_base) * b;
        rtm_tensor::simd::dot_batch_variant(
            variant,
            m.row(r),
            xs,
            b,
            &mut ys[out_base..out_base + b],
        );
    }
}

/// The parallel execution engine: a persistent [`WorkerPool`] plus the
/// format-specific parallel SpMV entry points.
///
/// An `Executor` is created once (threads match the target's core count —
/// the paper's Kryo 485 has 4 big + 4 LITTLE cores) and reused across
/// timesteps; per-call overhead is a handful of channel messages.
#[derive(Debug)]
pub struct Executor {
    pool: WorkerPool,
}

impl Executor {
    /// Creates an engine running batches on `threads` OS threads
    /// (clamped to ≥ 1).
    pub fn new(threads: usize) -> Executor {
        Executor {
            pool: WorkerPool::new(threads),
        }
    }

    /// A 1-thread engine: every call degenerates to the serial kernel on
    /// the calling thread.
    pub fn serial() -> Executor {
        Executor::new(1)
    }

    /// Thread count (including the calling thread).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Runs a batch of independent tasks on the pool (used by the RNN
    /// cells to evaluate independent gate SpMVs concurrently).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::WorkerPanicked`] when any task panics; the
    /// batch drains fully first and the engine stays serviceable.
    pub fn run(&self, tasks: Vec<Task<'_>>) -> Result<(), ExecError> {
        self.pool.run(tasks)
    }

    /// Fault-injection hook forwarding [`WorkerPool::sever_workers`]: tears
    /// the worker threads down so the next call exercises the respawn path.
    pub fn sever_workers(&self) {
        self.pool.sever_workers();
    }

    /// Dead worker slots respawned over the engine's lifetime (see
    /// [`WorkerPool::respawned_workers`]).
    pub fn respawned_workers(&self) -> usize {
        self.pool.respawned_workers()
    }

    /// Cumulative per-slot busy nanoseconds (see
    /// [`WorkerPool::worker_busy_ns`]); all zero unless tracing is enabled.
    pub fn worker_busy_ns(&self) -> Vec<u64> {
        self.pool.worker_busy_ns()
    }

    /// The cost-balanced kept-row partition this engine would use for `m`
    /// (exposed for benchmarks and the device model's measured-imbalance
    /// path).
    pub fn partition_bspc(&self, m: &BspcMatrix) -> Partition {
        let stripe_h = m.stripe_height();
        let costs: Vec<usize> = m
            .kept_rows()
            .iter()
            .map(|&r| m.stripe_kept_cols(r as usize / stripe_h).len())
            .collect();
        Partition::balanced(&costs, self.threads())
    }

    /// The cost-balanced row partition for a CSR matrix.
    pub fn partition_csr(&self, m: &CsrMatrix) -> Partition {
        let costs: Vec<usize> = (0..m.rows()).map(|r| m.row_nnz(r)).collect();
        Partition::balanced(&costs, self.threads())
    }

    /// Fans a BSPC row-range kernel out over the cost-balanced kept-row
    /// partition. `kernel(range, slice, base)` computes output rows
    /// `[base, …)` of the kept slots `range` into `slice` (lane-major when
    /// `lane_width > 1`). Chunk boundaries in the ascending kept-row space
    /// map to disjoint output ranges, handed out via `split_at_mut` — the
    /// lock-free scheme every precision shares.
    fn run_bspc_chunks<F>(
        &self,
        m: &BspcMatrix,
        y: &mut [f32],
        lane_width: usize,
        kernel: F,
    ) -> Result<(), ExecError>
    where
        F: Fn(std::ops::Range<usize>, &mut [f32], usize) + Send + Sync,
    {
        let kept = m.kept_rows();
        if self.threads() == 1 {
            kernel(0..kept.len(), y, 0);
            return Ok(());
        }
        let partition = self.partition_bspc(m);
        if partition.len() <= 1 {
            kernel(0..kept.len(), y, 0);
            return Ok(());
        }
        // Chunk i owns output rows [boundary_i, boundary_{i+1}), where a
        // boundary is the first kept row of the chunk (chunk 0 extends to
        // row 0; the last chunk extends to m.rows()). Kept rows ascend, so
        // the ranges are disjoint and ordered.
        let chunks = partition.chunks();
        let kernel = &kernel;
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(chunks.len());
        let mut tail: &mut [f32] = y;
        let mut base = 0usize;
        for (i, chunk) in chunks.iter().enumerate() {
            let end = if i + 1 < chunks.len() {
                kept[chunks[i + 1].start] as usize
            } else {
                m.rows()
            };
            let (slice, rest) = tail.split_at_mut((end - base) * lane_width);
            let range = chunk.start..chunk.end;
            let slice_base = base;
            tasks.push(Box::new(move || kernel(range, slice, slice_base)));
            tail = rest;
            base = end;
        }
        self.pool.run(tasks)
    }

    /// Fans a CSR row-range kernel out over the cost-balanced row
    /// partition (see [`run_bspc_chunks`](Executor::run_bspc_chunks) for
    /// the conventions; CSR chunks own their row range directly).
    fn run_csr_chunks<F>(
        &self,
        m: &CsrMatrix,
        y: &mut [f32],
        lane_width: usize,
        kernel: F,
    ) -> Result<(), ExecError>
    where
        F: Fn(std::ops::Range<usize>, &mut [f32], usize) + Send + Sync,
    {
        if self.threads() == 1 {
            kernel(0..m.rows(), y, 0);
            return Ok(());
        }
        let partition = self.partition_csr(m);
        if partition.len() <= 1 {
            kernel(0..m.rows(), y, 0);
            return Ok(());
        }
        let chunks = partition.chunks();
        let kernel = &kernel;
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(chunks.len());
        let mut tail: &mut [f32] = y;
        for chunk in chunks {
            let (slice, rest) = tail.split_at_mut((chunk.end - chunk.start) * lane_width);
            let range = chunk.start..chunk.end;
            let base = chunk.start;
            tasks.push(Box::new(move || kernel(range, slice, base)));
            tail = rest;
        }
        self.pool.run(tasks)
    }

    /// Parallel BSPC SpMV, allocating the output.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()`.
    pub fn spmv_bspc(&self, m: &BspcMatrix, x: &[f32]) -> Result<Vec<f32>, ExecError> {
        let mut y = vec![0.0f32; m.rows()];
        self.spmv_bspc_into(m, x, &mut y)?;
        Ok(y)
    }

    /// Parallel BSPC SpMV into a caller-provided buffer. Bit-identical to
    /// [`BspcMatrix::spmv_into`] for every thread count (same per-row
    /// accumulation order).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()` or
    /// `y.len() != m.rows()`.
    pub fn spmv_bspc_into(
        &self,
        m: &BspcMatrix,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<(), ExecError> {
        if x.len() != m.cols() || y.len() != m.rows() {
            return Err(ExecError::shape(
                "parallel_bspc_spmv",
                (m.rows(), m.cols()),
                (x.len(), y.len()),
            ));
        }
        y.fill(0.0);
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_BSPC, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_BSPC, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.kept_rows().len() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.stored_len() as u64),
        ]);
        if m.kept_rows().is_empty() {
            return Ok(());
        }
        self.run_bspc_chunks(m, y, 1, |range, slice, base| {
            bspc_rows_into(m, x, range, slice, base)
        })
    }

    /// Precision-dispatched parallel BSPC SpMV. [`Precision::F32`] is
    /// exactly [`spmv_bspc_into`](Executor::spmv_bspc_into); f16 and int8
    /// fan the corresponding `rtm_sparse` row-range kernels out over the
    /// same cost-balanced partition. Int8 quantizes the activation vector
    /// **once** at this entry — every chunk shares the codes — so results
    /// are bit-identical to the serial
    /// [`BspcMatrix::spmv_prec_into`] for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()` or
    /// `y.len() != m.rows()`.
    pub fn spmv_bspc_prec_into(
        &self,
        m: &BspcMatrix,
        prec: Precision,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<(), ExecError> {
        if prec == Precision::F32 {
            return self.spmv_bspc_into(m, x, y);
        }
        if x.len() != m.cols() || y.len() != m.rows() {
            return Err(ExecError::shape(
                "parallel_bspc_spmv",
                (m.rows(), m.cols()),
                (x.len(), y.len()),
            ));
        }
        y.fill(0.0);
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_BSPC, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_BSPC, prec.tag()),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.kept_rows().len() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.stored_len() as u64),
        ]);
        if m.kept_rows().is_empty() {
            return Ok(());
        }
        match prec {
            Precision::F16 => self.run_bspc_chunks(m, y, 1, |range, slice, base| {
                m.spmv_rows_f16_into(x, range, slice, base)
            }),
            Precision::Int8 => {
                let mut xq = Vec::with_capacity(x.len());
                let sx = rtm_tensor::simd_i8::quantize_activations(x, &mut xq);
                self.run_bspc_chunks(m, y, 1, |range, slice, base| {
                    m.spmv_rows_i8_into(&xq, sx, range, slice, base)
                })
            }
            Precision::F32 => unreachable!("handled above"),
        }
    }

    /// Parallel CSR SpMV, allocating the output.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()`.
    pub fn spmv_csr(&self, m: &CsrMatrix, x: &[f32]) -> Result<Vec<f32>, ExecError> {
        let mut y = vec![0.0f32; m.rows()];
        self.spmv_csr_into(m, x, &mut y)?;
        Ok(y)
    }

    /// Parallel CSR SpMV into a caller-provided buffer. Bit-identical to
    /// [`CsrMatrix::spmv_into`] for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()` or
    /// `y.len() != m.rows()`.
    pub fn spmv_csr_into(&self, m: &CsrMatrix, x: &[f32], y: &mut [f32]) -> Result<(), ExecError> {
        if x.len() != m.cols() || y.len() != m.rows() {
            return Err(ExecError::shape(
                "parallel_csr_spmv",
                (m.rows(), m.cols()),
                (x.len(), y.len()),
            ));
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_CSR, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_CSR, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.rows() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.nnz() as u64),
        ]);
        if m.rows() == 0 {
            return Ok(());
        }
        self.run_csr_chunks(m, y, 1, |range, slice, base| {
            csr_rows_into(m, x, range, slice, base)
        })
    }

    /// Precision-dispatched parallel CSR SpMV (see
    /// [`spmv_bspc_prec_into`](Executor::spmv_bspc_prec_into) for the
    /// contract: bit-identical to the serial
    /// [`CsrMatrix::spmv_prec_into`] at every thread count).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()` or
    /// `y.len() != m.rows()`.
    pub fn spmv_csr_prec_into(
        &self,
        m: &CsrMatrix,
        prec: Precision,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<(), ExecError> {
        if prec == Precision::F32 {
            return self.spmv_csr_into(m, x, y);
        }
        if x.len() != m.cols() || y.len() != m.rows() {
            return Err(ExecError::shape(
                "parallel_csr_spmv",
                (m.rows(), m.cols()),
                (x.len(), y.len()),
            ));
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_CSR, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_CSR, prec.tag()),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.rows() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.nnz() as u64),
        ]);
        if m.rows() == 0 {
            return Ok(());
        }
        match prec {
            Precision::F16 => self.run_csr_chunks(m, y, 1, |range, slice, base| {
                m.spmv_rows_f16_into(x, range, slice, base)
            }),
            Precision::Int8 => {
                let mut xq = Vec::with_capacity(x.len());
                let sx = rtm_tensor::simd_i8::quantize_activations(x, &mut xq);
                self.run_csr_chunks(m, y, 1, |range, slice, base| {
                    m.spmv_rows_i8_into(&xq, sx, range, slice, base)
                })
            }
            Precision::F32 => unreachable!("handled above"),
        }
    }

    /// Parallel dense GEMV, allocating the output.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()`.
    pub fn gemv_dense(&self, m: &Matrix, x: &[f32]) -> Result<Vec<f32>, ExecError> {
        let mut y = vec![0.0f32; m.rows()];
        self.gemv_dense_into(m, x, &mut y)?;
        Ok(y)
    }

    /// Parallel dense GEMV into a caller-provided buffer. Rows cost the
    /// same, so the partition is an even row split.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()` or
    /// `y.len() != m.rows()`.
    pub fn gemv_dense_into(&self, m: &Matrix, x: &[f32], y: &mut [f32]) -> Result<(), ExecError> {
        if x.len() != m.cols() || y.len() != m.rows() {
            return Err(ExecError::shape(
                "parallel_gemv",
                (m.rows(), m.cols()),
                (x.len(), y.len()),
            ));
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::GEMV_DENSE, 1),
            (rtm_trace::key::KERNEL_ROWS, m.rows() as u64),
            (rtm_trace::key::KERNEL_NNZ, (m.rows() * m.cols()) as u64),
        ]);
        if m.rows() == 0 {
            return Ok(());
        }
        if self.threads() == 1 {
            dense_rows_into(m, x, 0..m.rows(), y, 0);
            return Ok(());
        }
        let costs = vec![m.cols().max(1); m.rows()];
        let partition = Partition::balanced(&costs, self.threads());
        if partition.len() <= 1 {
            dense_rows_into(m, x, 0..m.rows(), y, 0);
            return Ok(());
        }
        let chunks = partition.chunks();
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(chunks.len());
        let mut tail: &mut [f32] = y;
        for chunk in chunks {
            let (slice, rest) = tail.split_at_mut(chunk.end - chunk.start);
            let range = chunk.start..chunk.end;
            let base = chunk.start;
            tasks.push(Box::new(move || {
                dense_rows_into(m, x, range, slice, base);
            }));
            tail = rest;
        }
        self.pool.run(tasks)
    }

    /// Parallel BSPC SpMM over `b` interleaved input lanes, into a
    /// caller-provided `[rows × b]` lane-major buffer. Partitioning is the
    /// same reorder-group/nnz balance as [`spmv_bspc_into`] — a row's cost
    /// scales by `b` uniformly, so the SpMV partition stays optimal — and
    /// each chunk simply receives all `b` lanes of its rows.
    ///
    /// Bit-identical to [`BspcMatrix::spmm_into`] for every thread count,
    /// and therefore lane-for-lane bit-identical to `b` serial SpMV runs.
    ///
    /// [`spmv_bspc_into`]: Executor::spmv_bspc_into
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `xs.len() != m.cols() * b` or
    /// `ys.len() != m.rows() * b`.
    pub fn spmm_bspc_into(
        &self,
        m: &BspcMatrix,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ExecError> {
        if xs.len() != m.cols() * b || ys.len() != m.rows() * b {
            return Err(ExecError::shape(
                "parallel_bspc_spmm",
                (m.rows(), m.cols()),
                (xs.len(), b),
            ));
        }
        ys.fill(0.0);
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_BSPC, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_BSPC, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.kept_rows().len() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.stored_len() as u64),
        ]);
        if m.kept_rows().is_empty() || b == 0 {
            return Ok(());
        }
        // Same disjoint output ranges as the SpMV path, scaled to flat
        // lane-major offsets: output row boundary r maps to element r·b.
        self.run_bspc_chunks(m, ys, b, |range, slice, base| {
            bspc_rows_batch_into(m, xs, b, range, slice, base)
        })
    }

    /// Precision-dispatched parallel BSPC SpMM. Int8 quantizes each of the
    /// `b` lanes once at this entry (per-lane scales), so every lane is
    /// bit-identical to the serial [`BspcMatrix::spmm_prec_into`] — and, by
    /// the sparse-level contract, to that precision's serial SpMV of the
    /// lane's column — at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `xs.len() != m.cols() * b` or
    /// `ys.len() != m.rows() * b`.
    pub fn spmm_bspc_prec_into(
        &self,
        m: &BspcMatrix,
        prec: Precision,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ExecError> {
        if prec == Precision::F32 {
            return self.spmm_bspc_into(m, xs, b, ys);
        }
        if xs.len() != m.cols() * b || ys.len() != m.rows() * b {
            return Err(ExecError::shape(
                "parallel_bspc_spmm",
                (m.rows(), m.cols()),
                (xs.len(), b),
            ));
        }
        ys.fill(0.0);
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_BSPC, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_BSPC, prec.tag()),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.kept_rows().len() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.stored_len() as u64),
        ]);
        if m.kept_rows().is_empty() {
            return Ok(());
        }
        match prec {
            Precision::F16 => self.run_bspc_chunks(m, ys, b, |range, slice, base| {
                m.spmm_rows_f16_into(xs, b, range, slice, base)
            }),
            Precision::Int8 => {
                let mut xq = Vec::with_capacity(xs.len());
                let mut sxs = Vec::with_capacity(b);
                rtm_tensor::simd_i8::quantize_activations_lanes(xs, b, &mut xq, &mut sxs);
                self.run_bspc_chunks(m, ys, b, |range, slice, base| {
                    m.spmm_rows_i8_into(&xq, &sxs, b, range, slice, base)
                })
            }
            Precision::F32 => unreachable!("handled above"),
        }
    }

    /// Parallel CSR SpMM over `b` interleaved input lanes. Bit-identical to
    /// [`CsrMatrix::spmm_into`] for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `xs.len() != m.cols() * b` or
    /// `ys.len() != m.rows() * b`.
    pub fn spmm_csr_into(
        &self,
        m: &CsrMatrix,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ExecError> {
        if xs.len() != m.cols() * b || ys.len() != m.rows() * b {
            return Err(ExecError::shape(
                "parallel_csr_spmm",
                (m.rows(), m.cols()),
                (xs.len(), b),
            ));
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_CSR, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_CSR, "f32"),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.rows() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.nnz() as u64),
        ]);
        if m.rows() == 0 || b == 0 {
            return Ok(());
        }
        self.run_csr_chunks(m, ys, b, |range, slice, base| {
            csr_rows_batch_into(m, xs, b, range, slice, base)
        })
    }

    /// Precision-dispatched parallel CSR SpMM (same contract as
    /// [`spmm_bspc_prec_into`](Executor::spmm_bspc_prec_into)).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `xs.len() != m.cols() * b` or
    /// `ys.len() != m.rows() * b`.
    pub fn spmm_csr_prec_into(
        &self,
        m: &CsrMatrix,
        prec: Precision,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ExecError> {
        if prec == Precision::F32 {
            return self.spmm_csr_into(m, xs, b, ys);
        }
        if xs.len() != m.cols() * b || ys.len() != m.rows() * b {
            return Err(ExecError::shape(
                "parallel_csr_spmm",
                (m.rows(), m.cols()),
                (xs.len(), b),
            ));
        }
        ys.fill(0.0);
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_CSR, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_CSR, prec.tag()),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.rows() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.nnz() as u64),
        ]);
        if m.rows() == 0 {
            return Ok(());
        }
        match prec {
            Precision::F16 => self.run_csr_chunks(m, ys, b, |range, slice, base| {
                m.spmm_rows_f16_into(xs, b, range, slice, base)
            }),
            Precision::Int8 => {
                let mut xq = Vec::with_capacity(xs.len());
                let mut sxs = Vec::with_capacity(b);
                rtm_tensor::simd_i8::quantize_activations_lanes(xs, b, &mut xq, &mut sxs);
                self.run_csr_chunks(m, ys, b, |range, slice, base| {
                    m.spmm_rows_i8_into(&xq, &sxs, b, range, slice, base)
                })
            }
            Precision::F32 => unreachable!("handled above"),
        }
    }

    /// The row partition for a bank-balanced matrix. Every BBS row stores
    /// the same slot count, so costs are uniform by construction and the
    /// balance degenerates to an even row split.
    pub fn partition_bbs(&self, m: &BbsMatrix) -> Partition {
        let costs = vec![m.row_stride().max(1); m.rows()];
        Partition::balanced(&costs, self.threads())
    }

    /// The cost-balanced block-row partition for a CSB matrix (cost of a
    /// block row = its stored values).
    pub fn partition_csb(&self, m: &CsbMatrix) -> Partition {
        let costs: Vec<usize> = (0..m.num_block_rows())
            .map(|br| m.block_row_cost(br))
            .collect();
        Partition::balanced(&costs, self.threads())
    }

    /// Fans a BBS row-range kernel out over the uniform row partition
    /// (see [`run_csr_chunks`](Executor::run_csr_chunks) — BBS chunks own
    /// their row range directly, the same disjoint `split_at_mut` scheme).
    fn run_bbs_chunks<F>(
        &self,
        m: &BbsMatrix,
        y: &mut [f32],
        lane_width: usize,
        kernel: F,
    ) -> Result<(), ExecError>
    where
        F: Fn(std::ops::Range<usize>, &mut [f32], usize) + Send + Sync,
    {
        if self.threads() == 1 {
            kernel(0..m.rows(), y, 0);
            return Ok(());
        }
        let partition = self.partition_bbs(m);
        if partition.len() <= 1 {
            kernel(0..m.rows(), y, 0);
            return Ok(());
        }
        let chunks = partition.chunks();
        let kernel = &kernel;
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(chunks.len());
        let mut tail: &mut [f32] = y;
        for chunk in chunks {
            let (slice, rest) = tail.split_at_mut((chunk.end - chunk.start) * lane_width);
            let range = chunk.start..chunk.end;
            let base = chunk.start;
            tasks.push(Box::new(move || kernel(range, slice, base)));
            tail = rest;
        }
        self.pool.run(tasks)
    }

    /// Fans a CSB block-row-range kernel out over the cost-balanced
    /// block-row partition. A chunk of block rows `[s, e)` owns output
    /// rows `[s · block_h, min(e · block_h, rows))` — block rows tile the
    /// output contiguously, so the ranges are disjoint and ordered and the
    /// usual `split_at_mut` hand-out applies.
    fn run_csb_chunks<F>(
        &self,
        m: &CsbMatrix,
        y: &mut [f32],
        lane_width: usize,
        kernel: F,
    ) -> Result<(), ExecError>
    where
        F: Fn(std::ops::Range<usize>, &mut [f32], usize) + Send + Sync,
    {
        let nbr = m.num_block_rows();
        if self.threads() == 1 {
            kernel(0..nbr, y, 0);
            return Ok(());
        }
        let partition = self.partition_csb(m);
        if partition.len() <= 1 {
            kernel(0..nbr, y, 0);
            return Ok(());
        }
        let chunks = partition.chunks();
        let kernel = &kernel;
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(chunks.len());
        let mut tail: &mut [f32] = y;
        let mut base = 0usize;
        for chunk in chunks {
            let row_end = (chunk.end * m.block_h()).min(m.rows());
            let (slice, rest) = tail.split_at_mut((row_end - base) * lane_width);
            let range = chunk.start..chunk.end;
            let slice_base = base;
            tasks.push(Box::new(move || kernel(range, slice, slice_base)));
            tail = rest;
            base = row_end;
        }
        self.pool.run(tasks)
    }

    /// Parallel BBS SpMV, allocating the output.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()`.
    pub fn spmv_bbs(&self, m: &BbsMatrix, x: &[f32]) -> Result<Vec<f32>, ExecError> {
        let mut y = vec![0.0f32; m.rows()];
        self.spmv_bbs_into(m, x, &mut y)?;
        Ok(y)
    }

    /// Parallel BBS SpMV into a caller-provided buffer. Bit-identical to
    /// [`BbsMatrix::spmv_into`] for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()` or
    /// `y.len() != m.rows()`.
    pub fn spmv_bbs_into(&self, m: &BbsMatrix, x: &[f32], y: &mut [f32]) -> Result<(), ExecError> {
        self.spmv_bbs_prec_into(m, Precision::F32, x, y)
    }

    /// Precision-dispatched parallel BBS SpMV (contract as
    /// [`spmv_bspc_prec_into`](Executor::spmv_bspc_prec_into): int8
    /// quantizes once at this entry, results are bit-identical to the
    /// serial [`BbsMatrix::spmv_prec_into`] at every thread count).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()` or
    /// `y.len() != m.rows()`.
    pub fn spmv_bbs_prec_into(
        &self,
        m: &BbsMatrix,
        prec: Precision,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<(), ExecError> {
        if x.len() != m.cols() || y.len() != m.rows() {
            return Err(ExecError::shape(
                "parallel_bbs_spmv",
                (m.rows(), m.cols()),
                (x.len(), y.len()),
            ));
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_BBS, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_BBS, prec.tag()),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.rows() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.stored_len() as u64),
        ]);
        if m.rows() == 0 {
            return Ok(());
        }
        match prec {
            Precision::F32 => self.run_bbs_chunks(m, y, 1, |range, slice, base| {
                m.spmv_rows_into(x, range, slice, base)
            }),
            Precision::F16 => self.run_bbs_chunks(m, y, 1, |range, slice, base| {
                m.spmv_rows_f16_into(x, range, slice, base)
            }),
            Precision::Int8 => {
                let mut xq = Vec::with_capacity(x.len());
                let sx = rtm_tensor::simd_i8::quantize_activations(x, &mut xq);
                self.run_bbs_chunks(m, y, 1, |range, slice, base| {
                    m.spmv_rows_i8_into(&xq, sx, range, slice, base)
                })
            }
        }
    }

    /// Parallel BBS SpMM over `b` interleaved input lanes. Bit-identical
    /// to [`BbsMatrix::spmm_into`] for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `xs.len() != m.cols() * b` or
    /// `ys.len() != m.rows() * b`.
    pub fn spmm_bbs_into(
        &self,
        m: &BbsMatrix,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ExecError> {
        self.spmm_bbs_prec_into(m, Precision::F32, xs, b, ys)
    }

    /// Precision-dispatched parallel BBS SpMM (contract as
    /// [`spmm_bspc_prec_into`](Executor::spmm_bspc_prec_into)).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `xs.len() != m.cols() * b` or
    /// `ys.len() != m.rows() * b`.
    pub fn spmm_bbs_prec_into(
        &self,
        m: &BbsMatrix,
        prec: Precision,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ExecError> {
        if xs.len() != m.cols() * b || ys.len() != m.rows() * b {
            return Err(ExecError::shape(
                "parallel_bbs_spmm",
                (m.rows(), m.cols()),
                (xs.len(), b),
            ));
        }
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_BBS, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_BBS, prec.tag()),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.rows() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.stored_len() as u64),
        ]);
        if m.rows() == 0 {
            return Ok(());
        }
        match prec {
            Precision::F32 => self.run_bbs_chunks(m, ys, b, |range, slice, base| {
                m.spmm_rows_into(xs, b, range, slice, base)
            }),
            Precision::F16 => self.run_bbs_chunks(m, ys, b, |range, slice, base| {
                m.spmm_rows_f16_into(xs, b, range, slice, base)
            }),
            Precision::Int8 => {
                let mut xq = Vec::with_capacity(xs.len());
                let mut sxs = Vec::with_capacity(b);
                rtm_tensor::simd_i8::quantize_activations_lanes(xs, b, &mut xq, &mut sxs);
                self.run_bbs_chunks(m, ys, b, |range, slice, base| {
                    m.spmm_rows_i8_into(&xq, &sxs, b, range, slice, base)
                })
            }
        }
    }

    /// Parallel CSB SpMV, allocating the output.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()`.
    pub fn spmv_csb(&self, m: &CsbMatrix, x: &[f32]) -> Result<Vec<f32>, ExecError> {
        let mut y = vec![0.0f32; m.rows()];
        self.spmv_csb_into(m, x, &mut y)?;
        Ok(y)
    }

    /// Parallel CSB SpMV into a caller-provided buffer. Bit-identical to
    /// [`CsbMatrix::spmv_into`] for every thread count: chunks own whole
    /// block rows, and within a block row blocks accumulate in the same
    /// storage order as the serial kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()` or
    /// `y.len() != m.rows()`.
    pub fn spmv_csb_into(&self, m: &CsbMatrix, x: &[f32], y: &mut [f32]) -> Result<(), ExecError> {
        self.spmv_csb_prec_into(m, Precision::F32, x, y)
    }

    /// Precision-dispatched parallel CSB SpMV (contract as
    /// [`spmv_bspc_prec_into`](Executor::spmv_bspc_prec_into)).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `x.len() != m.cols()` or
    /// `y.len() != m.rows()`.
    pub fn spmv_csb_prec_into(
        &self,
        m: &CsbMatrix,
        prec: Precision,
        x: &[f32],
        y: &mut [f32],
    ) -> Result<(), ExecError> {
        if x.len() != m.cols() || y.len() != m.rows() {
            return Err(ExecError::shape(
                "parallel_csb_spmv",
                (m.rows(), m.cols()),
                (x.len(), y.len()),
            ));
        }
        y.fill(0.0);
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMV_CSB, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMV_CSB, prec.tag()),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.rows() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.stored_len() as u64),
        ]);
        if m.rows() == 0 {
            return Ok(());
        }
        match prec {
            Precision::F32 => self.run_csb_chunks(m, y, 1, |range, slice, base| {
                m.spmv_block_rows_into(x, range, slice, base)
            }),
            Precision::F16 => self.run_csb_chunks(m, y, 1, |range, slice, base| {
                m.spmv_block_rows_f16_into(x, range, slice, base)
            }),
            Precision::Int8 => {
                let mut xq = Vec::with_capacity(x.len());
                let sx = rtm_tensor::simd_i8::quantize_activations(x, &mut xq);
                self.run_csb_chunks(m, y, 1, |range, slice, base| {
                    m.spmv_block_rows_i8_into(&xq, sx, range, slice, base)
                })
            }
        }
    }

    /// Parallel CSB SpMM over `b` interleaved input lanes. Bit-identical
    /// to [`CsbMatrix::spmm_into`] for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `xs.len() != m.cols() * b` or
    /// `ys.len() != m.rows() * b`.
    pub fn spmm_csb_into(
        &self,
        m: &CsbMatrix,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ExecError> {
        self.spmm_csb_prec_into(m, Precision::F32, xs, b, ys)
    }

    /// Precision-dispatched parallel CSB SpMM (contract as
    /// [`spmm_bspc_prec_into`](Executor::spmm_bspc_prec_into)).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `xs.len() != m.cols() * b` or
    /// `ys.len() != m.rows() * b`.
    pub fn spmm_csb_prec_into(
        &self,
        m: &CsbMatrix,
        prec: Precision,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ExecError> {
        if xs.len() != m.cols() * b || ys.len() != m.rows() * b {
            return Err(ExecError::shape(
                "parallel_csb_spmm",
                (m.rows(), m.cols()),
                (xs.len(), b),
            ));
        }
        ys.fill(0.0);
        if b == 0 {
            return Ok(());
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::SPMM_CSB, 1),
            (
                rtm_trace::key::with_precision(rtm_trace::key::SPMM_CSB, prec.tag()),
                1,
            ),
            (rtm_trace::key::KERNEL_ROWS, m.rows() as u64),
            (rtm_trace::key::KERNEL_NNZ, m.stored_len() as u64),
        ]);
        if m.rows() == 0 {
            return Ok(());
        }
        match prec {
            Precision::F32 => self.run_csb_chunks(m, ys, b, |range, slice, base| {
                m.spmm_block_rows_into(xs, b, range, slice, base)
            }),
            Precision::F16 => self.run_csb_chunks(m, ys, b, |range, slice, base| {
                m.spmm_block_rows_f16_into(xs, b, range, slice, base)
            }),
            Precision::Int8 => {
                let mut xq = Vec::with_capacity(xs.len());
                let mut sxs = Vec::with_capacity(b);
                rtm_tensor::simd_i8::quantize_activations_lanes(xs, b, &mut xq, &mut sxs);
                self.run_csb_chunks(m, ys, b, |range, slice, base| {
                    m.spmm_block_rows_i8_into(&xq, &sxs, b, range, slice, base)
                })
            }
        }
    }

    /// Parallel dense GEMM over `b` interleaved input lanes (the batched
    /// counterpart of [`gemv_dense_into`](Executor::gemv_dense_into)).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Shape`] when `xs.len() != m.cols() * b` or
    /// `ys.len() != m.rows() * b`.
    pub fn gemm_dense_into(
        &self,
        m: &Matrix,
        xs: &[f32],
        b: usize,
        ys: &mut [f32],
    ) -> Result<(), ExecError> {
        if xs.len() != m.cols() * b || ys.len() != m.rows() * b {
            return Err(ExecError::shape(
                "parallel_gemm",
                (m.rows(), m.cols()),
                (xs.len(), b),
            ));
        }
        rtm_trace::count_many(&[
            (rtm_trace::key::GEMM_DENSE, 1),
            (rtm_trace::key::KERNEL_ROWS, m.rows() as u64),
            (rtm_trace::key::KERNEL_NNZ, (m.rows() * m.cols()) as u64),
        ]);
        if m.rows() == 0 || b == 0 {
            return Ok(());
        }
        if self.threads() == 1 {
            dense_rows_batch_into(m, xs, b, 0..m.rows(), ys, 0);
            return Ok(());
        }
        let costs = vec![m.cols().max(1); m.rows()];
        let partition = Partition::balanced(&costs, self.threads());
        if partition.len() <= 1 {
            dense_rows_batch_into(m, xs, b, 0..m.rows(), ys, 0);
            return Ok(());
        }
        let chunks = partition.chunks();
        let mut tasks: Vec<Task<'_>> = Vec::with_capacity(chunks.len());
        let mut tail: &mut [f32] = ys;
        for chunk in chunks {
            let (slice, rest) = tail.split_at_mut((chunk.end - chunk.start) * b);
            let range = chunk.start..chunk.end;
            let base = chunk.start;
            tasks.push(Box::new(move || {
                dense_rows_batch_into(m, xs, b, range, slice, base);
            }));
            tail = rest;
        }
        self.pool.run(tasks)
    }
}
