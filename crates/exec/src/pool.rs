//! Persistent worker pool over `std::thread` + channels.
//!
//! The registry is unreachable in this build environment, so the pool is
//! built on `std` only: one long-lived thread per worker slot, each fed
//! through its own `mpsc` channel, with a shared completion channel back to
//! the caller. A batch submitted through [`WorkerPool::run`] is executed
//! with the *caller participating* — slot 0 runs inline on the calling
//! thread — so `threads = 1` degenerates to a plain serial loop with zero
//! dispatch traffic, and `threads = n` occupies exactly `n` OS threads.
//!
//! Tasks borrow the caller's stack (matrix, input, output slices). The pool
//! erases those lifetimes to ship the closures across the channel, which is
//! sound because `run` does not return until every dispatched task has
//! reported completion — the borrows strictly outlive their use.
//!
//! # Fault containment
//!
//! A panic inside any task — dispatched *or* inline — is caught where it
//! runs, the batch fully drains, and `run` returns
//! [`ExecError::WorkerPanicked`] carrying the first panic payload instead
//! of re-raising. No task is ever left running against freed stack memory,
//! no pool state is poisoned, and the very next batch executes normally.
//! Should a worker thread itself ever die (simulated by the fault-injection
//! hook [`WorkerPool::sever_workers`]), the next `run` detects the dead
//! slot and respawns it before dispatching, so the pool is guaranteed
//! serviceable after any fault.

use crate::error::ExecError;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit of work submitted to the pool: a closure that may borrow from the
/// caller's stack for the duration of the batch.
pub type Task<'a> = Box<dyn FnOnce() + Send + 'a>;

type StaticTask = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of `threads - 1` worker threads plus the caller.
///
/// Dropping the pool shuts the workers down cleanly (their channels close,
/// their loops end, and the threads are joined).
#[derive(Debug)]
pub struct WorkerPool {
    threads: usize,
    /// Worker slots 1..threads (slot 0 is the caller). Interior mutability
    /// lets `run(&self)` respawn dead workers; the pool is already `!Sync`
    /// (the completion `Receiver` is single-consumer), so a `RefCell` adds
    /// no new restriction.
    workers: RefCell<Vec<Worker>>,
    done_rx: Receiver<Option<String>>,
    done_tx: Sender<Option<String>>,
    respawned: Cell<usize>,
    /// Cumulative task-execution nanoseconds per thread slot (slot 0 is the
    /// caller), accumulated only while tracing is enabled. Shared with the
    /// worker threads; the completion channel's happens-before makes the
    /// caller's post-batch reads see every worker's update.
    busy_ns: Arc<Vec<AtomicU64>>,
}

#[derive(Debug)]
struct Worker {
    tx: Option<Sender<StaticTask>>,
    handle: Option<JoinHandle<()>>,
}

impl Worker {
    fn spawn(slot: usize, done: Sender<Option<String>>, busy_ns: Arc<Vec<AtomicU64>>) -> Worker {
        let (tx, rx) = channel::<StaticTask>();
        let handle = std::thread::Builder::new()
            .name(format!("rtm-exec-{slot}"))
            .spawn(move || {
                while let Ok(task) = rx.recv() {
                    let t0 = rtm_trace::enabled().then(Instant::now);
                    let outcome = catch_unwind(AssertUnwindSafe(task))
                        .err()
                        .map(|e| panic_message(e.as_ref()));
                    if let Some(t0) = t0 {
                        busy_ns[slot].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                    if done.send(outcome).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn worker thread");
        Worker {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// A worker is dead when its thread has exited (or was shut down): its
    /// channel would reject sends, so the slot must be respawned first.
    fn is_dead(&self) -> bool {
        match (&self.tx, &self.handle) {
            (Some(_), Some(h)) => h.is_finished(),
            _ => true,
        }
    }

    fn shutdown(&mut self) {
        self.tx.take(); // closing the channel ends the worker loop
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl WorkerPool {
    /// Creates a pool that executes batches on `threads` OS threads
    /// (`threads - 1` workers plus the caller). `threads` is clamped to at
    /// least 1.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let (done_tx, done_rx) = channel::<Option<String>>();
        let busy_ns: Arc<Vec<AtomicU64>> =
            Arc::new((0..threads).map(|_| AtomicU64::new(0)).collect());
        let workers = (1..threads)
            .map(|slot| Worker::spawn(slot, done_tx.clone(), Arc::clone(&busy_ns)))
            .collect();
        WorkerPool {
            threads,
            workers: RefCell::new(workers),
            done_rx,
            done_tx,
            respawned: Cell::new(0),
            busy_ns,
        }
    }

    /// Number of OS threads a batch runs on (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many dead worker slots have been respawned over the pool's
    /// lifetime (0 in healthy operation; task panics alone never kill a
    /// worker thread).
    pub fn respawned_workers(&self) -> usize {
        self.respawned.get()
    }

    /// Cumulative per-slot busy time in nanoseconds (slot 0 is the calling
    /// thread), accumulated only while tracing is enabled. The live
    /// counterpart of the cost model's balance prediction: the ratio
    /// max/mean over the active slots is the `exec.pool.imbalance` gauge.
    pub fn worker_busy_ns(&self) -> Vec<u64> {
        self.busy_ns
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Records one drained batch into the trace registry: task/batch
    /// counters plus the live busy-time imbalance gauge over every slot
    /// that has executed work so far.
    fn record_batch_metrics(&self, tasks: usize) {
        let reg = rtm_trace::global();
        reg.counter_add_many(&[
            (rtm_trace::key::EXEC_TASKS, tasks as u64),
            (rtm_trace::key::EXEC_BATCHES, 1),
        ]);
        let active: Vec<u64> = self
            .worker_busy_ns()
            .into_iter()
            .filter(|&b| b > 0)
            .collect();
        if let Some(&max) = active.iter().max() {
            let mean = active.iter().sum::<u64>() as f64 / active.len() as f64;
            if mean > 0.0 {
                reg.gauge_set(rtm_trace::key::EXEC_IMBALANCE, max as f64 / mean);
            }
        }
    }

    /// Fault-injection hook: tears down every worker thread (closing its
    /// channel and joining it) while leaving the pool's configuration
    /// intact. The next [`WorkerPool::run`] detects the dead slots and
    /// respawns them before dispatching — this is how the fault suite
    /// proves the pool heals after worker loss.
    pub fn sever_workers(&self) {
        for w in self.workers.borrow_mut().iter_mut() {
            w.shutdown();
        }
    }

    /// Executes every task in `tasks`, returning once all have finished.
    ///
    /// Tasks are dealt round-robin across the thread slots; the calling
    /// thread executes slot 0's share while the workers run theirs. Tasks
    /// must touch disjoint data (the SpMV kernels guarantee this by
    /// construction — disjoint output slices).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::WorkerPanicked`] with the first panic payload
    /// observed among the tasks, after the whole batch has drained. The
    /// pool remains fully serviceable afterwards.
    pub fn run(&self, tasks: Vec<Task<'_>>) -> Result<(), ExecError> {
        if tasks.is_empty() {
            return Ok(());
        }
        let n_tasks = tasks.len();
        let trace = rtm_trace::enabled();
        let mut first_panic: Option<String> = None;
        if self.threads == 1 || tasks.len() == 1 {
            let t0 = trace.then(Instant::now);
            for task in tasks {
                run_contained(task, &mut first_panic);
            }
            if let Some(t0) = t0 {
                self.busy_ns[0].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                self.record_batch_metrics(n_tasks);
            }
            return fold_outcome(first_panic);
        }

        let mut workers = self.workers.borrow_mut();
        // Containment guarantee: a worker slot whose thread has died (e.g.
        // torn down by `sever_workers`) is respawned before any dispatch,
        // so sends below cannot fail.
        for (i, w) in workers.iter_mut().enumerate() {
            if w.is_dead() {
                w.shutdown();
                *w = Worker::spawn(i + 1, self.done_tx.clone(), Arc::clone(&self.busy_ns));
                self.respawned.set(self.respawned.get() + 1);
            }
        }

        let slots = self.threads;
        let mut inline: Vec<Task<'_>> = Vec::new();
        let mut dispatched = 0usize;
        for (i, task) in tasks.into_iter().enumerate() {
            let slot = i % slots;
            if slot == 0 {
                inline.push(task);
            } else {
                // SAFETY: the erased borrows live until `guard` below has
                // drained every dispatched task — enforced even on the
                // unwind path by `DrainGuard::drop` — so the closure never
                // outlives what it borrows.
                let task: StaticTask = unsafe { std::mem::transmute::<Task<'_>, StaticTask>(task) };
                let worker = &workers[slot - 1];
                worker
                    .tx
                    .as_ref()
                    .expect("live worker")
                    .send(task)
                    .expect("worker channel open");
                dispatched += 1;
            }
        }

        let mut guard = DrainGuard {
            rx: &self.done_rx,
            remaining: dispatched,
            first_panic: None,
        };
        let t0 = trace.then(Instant::now);
        for task in inline {
            run_contained(task, &mut guard.first_panic);
        }
        if let Some(t0) = t0 {
            self.busy_ns[0].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        guard.drain();
        first_panic = guard.first_panic.take();
        if trace {
            self.record_batch_metrics(n_tasks);
        }
        fold_outcome(first_panic)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in self.workers.borrow_mut().iter_mut() {
            w.shutdown();
        }
    }
}

/// Runs one task under `catch_unwind`, recording the first panic payload.
fn run_contained(task: Task<'_>, first_panic: &mut Option<String>) {
    if let Err(e) = catch_unwind(AssertUnwindSafe(task)) {
        if first_panic.is_none() {
            *first_panic = Some(panic_message(e.as_ref()));
        }
    }
}

fn fold_outcome(first_panic: Option<String>) -> Result<(), ExecError> {
    match first_panic {
        Some(message) => Err(ExecError::WorkerPanicked { message }),
        None => Ok(()),
    }
}

/// Blocks until every dispatched task has reported in — including on the
/// unwind path, so a panicking inline task cannot strand workers that still
/// borrow the caller's stack.
struct DrainGuard<'p> {
    rx: &'p Receiver<Option<String>>,
    remaining: usize,
    first_panic: Option<String>,
}

impl DrainGuard<'_> {
    fn drain(&mut self) {
        while self.remaining > 0 {
            match self.rx.recv() {
                Ok(outcome) => {
                    if self.first_panic.is_none() {
                        self.first_panic = outcome;
                    }
                }
                Err(_) => break, // workers gone; nothing left to wait for
            }
            self.remaining -= 1;
        }
    }
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        self.drain();
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn runs_every_task_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..37)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 37);
    }

    #[test]
    fn tasks_write_disjoint_borrowed_slices() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0u32; 9];
        {
            let mut tasks: Vec<Task<'_>> = Vec::new();
            for (i, chunk) in data.chunks_mut(3).enumerate() {
                tasks.push(Box::new(move || {
                    for v in chunk.iter_mut() {
                        *v = i as u32 + 1;
                    }
                }));
            }
            pool.run(tasks).unwrap();
        }
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn single_thread_pool_runs_in_submission_order() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let collected = Mutex::new(Vec::new());
        let mut tasks: Vec<Task<'_>> = Vec::new();
        for i in 0..5 {
            let c = &collected;
            tasks.push(Box::new(move || c.lock().unwrap().push(i)));
        }
        pool.run(tasks).unwrap();
        assert_eq!(*collected.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_survives_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..10 {
            let sum = AtomicUsize::new(0);
            let tasks: Vec<Task<'_>> = (0..4)
                .map(|i| {
                    let sum = &sum;
                    Box::new(move || {
                        sum.fetch_add(round * 10 + i, Ordering::SeqCst);
                    }) as Task<'_>
                })
                .collect();
            pool.run(tasks).unwrap();
            assert_eq!(sum.load(Ordering::SeqCst), round * 40 + 6);
        }
    }

    #[test]
    fn worker_panic_becomes_typed_error_after_drain() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..4)
            .map(|i| {
                let finished = &finished;
                Box::new(move || {
                    if i == 1 {
                        panic!("boom {i}");
                    }
                    finished.fetch_add(1, Ordering::SeqCst);
                }) as Task<'_>
            })
            .collect();
        let err = pool.run(tasks).unwrap_err();
        match &err {
            ExecError::WorkerPanicked { message } => assert!(message.contains("boom")),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // Every non-panicking task still ran (batch fully drained).
        assert_eq!(finished.load(Ordering::SeqCst), 3);
        // The pool remains usable after a panicked batch, with no respawn
        // needed: a caught task panic never kills the worker thread.
        let ok = AtomicUsize::new(0);
        let ok_ref = &ok;
        pool.run(vec![
            Box::new(move || {
                ok_ref.fetch_add(1, Ordering::SeqCst);
            }) as Task<'_>,
            Box::new(move || {
                ok_ref.fetch_add(1, Ordering::SeqCst);
            }) as Task<'_>,
        ])
        .unwrap();
        assert_eq!(ok.load(Ordering::SeqCst), 2);
        assert_eq!(pool.respawned_workers(), 0);
    }

    #[test]
    fn inline_task_panic_is_contained_too() {
        // Slot 0 runs on the caller; its panic must be caught, not unwind
        // through `run`.
        let pool = WorkerPool::new(2);
        let done = AtomicUsize::new(0);
        let done_ref = &done;
        let err = pool
            .run(vec![
                Box::new(move || panic!("inline boom")) as Task<'_>, // slot 0
                Box::new(move || {
                    done_ref.fetch_add(1, Ordering::SeqCst);
                }) as Task<'_>, // slot 1
            ])
            .unwrap_err();
        assert!(matches!(err, ExecError::WorkerPanicked { .. }));
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn severed_workers_are_respawned() {
        let pool = WorkerPool::new(4);
        pool.sever_workers();
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..12)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 12);
        assert_eq!(pool.respawned_workers(), 3);
        // Severing repeatedly keeps working.
        pool.sever_workers();
        pool.run(vec![Box::new(|| {}) as Task<'_>, Box::new(|| {})])
            .unwrap();
        assert_eq!(pool.respawned_workers(), 6);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(3);
        pool.run(Vec::new()).unwrap();
    }
}
