//! Cost-balanced work partitioning driven by the compiler's reorder groups.
//!
//! The paper's matrix reorder (§IV-B-a) exists so that parallel workers
//! receive *balanced row groups*: rows with the same nonzero pattern cost
//! the same, so contiguous chunks of the reordered (or BSP-striped) row
//! space can be cut at positions that equalize **nonzeros per thread, not
//! rows per thread**. [`Partition::balanced`] performs that cut over an
//! explicit per-slot cost vector; [`Partition::from_reorder`] derives the
//! cost vector straight from a [`ReorderPlan`]'s pattern groups.
//!
//! Chunks are contiguous and non-overlapping, so each maps to a disjoint
//! output range — the property the executor uses to hand every thread its
//! own `&mut` output slice with no locks on the hot path.

use rtm_compiler::reorder::ReorderPlan;

/// One thread's contiguous share of the work: slots `start..end` with their
/// summed cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// First work slot (kept-row index for BSPC, row index for CSR/dense).
    pub start: usize,
    /// One past the last work slot.
    pub end: usize,
    /// Total cost (nonzeros) of the slots in this chunk.
    pub cost: usize,
}

impl Chunk {
    /// Number of work slots in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the chunk holds no slots.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A complete cost-balanced split of a work range into per-thread chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    chunks: Vec<Chunk>,
    total_cost: usize,
}

impl Partition {
    /// Splits `costs.len()` slots into at most `threads` contiguous chunks,
    /// cutting where the cumulative cost crosses each thread's even share.
    /// Every produced chunk is non-empty; fewer than `threads` chunks come
    /// back when there are fewer slots than threads (or when one slot
    /// dominates the cost). An all-zero cost vector falls back to an even
    /// split by slot count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn balanced(costs: &[usize], threads: usize) -> Partition {
        assert!(threads > 0, "thread count must be positive");
        let n = costs.len();
        let total: usize = costs.iter().sum();
        let mut chunks = Vec::with_capacity(threads.min(n));
        if n == 0 {
            return Partition {
                chunks,
                total_cost: 0,
            };
        }
        if total == 0 {
            let mut start = 0usize;
            for t in 0..threads {
                let end = (n * (t + 1)) / threads;
                if end > start {
                    chunks.push(Chunk {
                        start,
                        end,
                        cost: 0,
                    });
                    start = end;
                }
            }
            return Partition {
                chunks,
                total_cost: 0,
            };
        }

        let mut start = 0usize;
        let mut prefix = 0usize;
        for t in 0..threads {
            if start >= n {
                break;
            }
            // Cumulative cost this chunk should reach (even shares).
            let target = ((total as u128 * (t as u128 + 1)) / threads as u128) as usize;
            let mut end = start;
            let mut cost = 0usize;
            while end < n {
                let c = costs[end];
                if end > start {
                    let cur = prefix + cost;
                    if cur >= target {
                        break;
                    }
                    // Cut at whichever side of the target is closer.
                    let next = cur + c;
                    if next > target && (next - target) > (target - cur) {
                        break;
                    }
                }
                cost += c;
                end += 1;
            }
            if t == threads - 1 {
                while end < n {
                    cost += costs[end];
                    end += 1;
                }
            }
            prefix += cost;
            chunks.push(Chunk { start, end, cost });
            start = end;
        }
        Partition {
            chunks,
            total_cost: total,
        }
    }

    /// Builds the partition straight from the compiler's reorder output:
    /// each pattern group contributes `len` slots of `row_nnz` cost, in
    /// execution order, and the cut points balance nonzeros across
    /// `threads`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn from_reorder(plan: &ReorderPlan, threads: usize) -> Partition {
        let costs: Vec<usize> = plan
            .groups
            .iter()
            .flat_map(|g| std::iter::repeat_n(g.row_nnz, g.len))
            .collect();
        Partition::balanced(&costs, threads)
    }

    /// The chunks, in slot order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Number of chunks (≤ requested threads).
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the partition holds no work at all.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Summed cost across all chunks.
    pub fn total_cost(&self) -> usize {
        self.total_cost
    }

    /// Cost of the most loaded chunk (the parallel critical path).
    pub fn max_cost(&self) -> usize {
        self.chunks.iter().map(|c| c.cost).max().unwrap_or(0)
    }

    /// Measured load-imbalance factor: `max chunk cost / mean chunk cost`,
    /// 1.0 when perfectly balanced or when there is no work. This is the
    /// *achieved* imbalance of the actual chunking, as opposed to the
    /// analytic estimates in `rtm_compiler::reorder`.
    pub fn imbalance(&self) -> f64 {
        if self.chunks.is_empty() || self.total_cost == 0 {
            return 1.0;
        }
        let mean = self.total_cost as f64 / self.chunks.len() as f64;
        self.max_cost() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_tensor::Matrix;

    #[test]
    fn uniform_costs_split_evenly() {
        let costs = vec![8usize; 16];
        let p = Partition::balanced(&costs, 4);
        assert_eq!(p.len(), 4);
        for c in p.chunks() {
            assert_eq!(c.len(), 4);
            assert_eq!(c.cost, 32);
        }
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
        assert_eq!(p.total_cost(), 128);
    }

    #[test]
    fn chunks_are_contiguous_and_cover_everything() {
        let costs: Vec<usize> = (0..37).map(|i| (i * 7) % 13 + 1).collect();
        for threads in [1, 2, 3, 5, 8, 64] {
            let p = Partition::balanced(&costs, threads);
            let mut next = 0usize;
            let mut total = 0usize;
            for c in p.chunks() {
                assert_eq!(c.start, next, "contiguous at {threads} threads");
                assert!(!c.is_empty());
                assert_eq!(c.cost, costs[c.start..c.end].iter().sum::<usize>());
                next = c.end;
                total += c.cost;
            }
            assert_eq!(next, costs.len(), "full coverage at {threads} threads");
            assert_eq!(total, p.total_cost());
        }
    }

    #[test]
    fn balances_nonzeros_not_rows() {
        // 4 heavy slots then 12 light ones: an even-by-rows split would put
        // all the heavy work in the first chunk.
        let mut costs = vec![90usize; 4];
        costs.extend(vec![10usize; 12]);
        let p = Partition::balanced(&costs, 4);
        // The contiguous optimum here is max 180 vs mean 120 (the four
        // heavy slots are adjacent); the cut must achieve it.
        assert!(
            p.imbalance() <= 1.5 + 1e-12,
            "cost-balanced imbalance {}",
            p.imbalance()
        );
        // Even-by-rows would be (4*90) / mean(120) = 3.0.
        let by_rows: Vec<usize> = costs.chunks(4).map(|c| c.iter().sum()).collect();
        let worst = *by_rows.iter().max().unwrap() as f64 * 4.0 / 480.0;
        assert!(worst > 2.9, "sanity: naive split is badly imbalanced");
    }

    #[test]
    fn more_threads_than_slots() {
        let p = Partition::balanced(&[3, 3], 8);
        assert_eq!(p.len(), 2, "at most one chunk per slot");
        assert_eq!(
            p.chunks()[0],
            Chunk {
                start: 0,
                end: 1,
                cost: 3
            }
        );
        assert_eq!(
            p.chunks()[1],
            Chunk {
                start: 1,
                end: 2,
                cost: 3
            }
        );
    }

    #[test]
    fn empty_and_zero_cost_inputs() {
        let p = Partition::balanced(&[], 4);
        assert!(p.is_empty());
        assert_eq!(p.imbalance(), 1.0);

        let z = Partition::balanced(&[0, 0, 0, 0, 0, 0], 3);
        assert_eq!(z.len(), 3, "zero-cost work still splits by slot count");
        assert_eq!(z.total_cost(), 0);
        assert_eq!(z.imbalance(), 1.0);
        let covered: usize = z.chunks().iter().map(Chunk::len).sum();
        assert_eq!(covered, 6);
    }

    #[test]
    fn from_reorder_balances_grouped_rows() {
        // Alternating heavy/light rows; reorder groups them by pattern.
        let w = Matrix::from_fn(32, 64, |r, c| {
            let heavy = r % 2 == 0;
            if (heavy && c < 48) || (!heavy && c < 4) {
                1.0
            } else {
                0.0
            }
        });
        let plan = ReorderPlan::compute(&w, 4);
        let p = Partition::from_reorder(&plan, 4);
        assert_eq!(
            p.total_cost(),
            16 * 48 + 16 * 4,
            "costs come from group nnz"
        );
        assert!(
            p.imbalance() < 1.3,
            "reorder-driven chunks stay balanced: {}",
            p.imbalance()
        );
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        Partition::balanced(&[1, 2, 3], 0);
    }
}
