//! The paper's GRU inference workload, built structurally.
//!
//! §V-A: "The GRU model contains 2 GRU layers and about 9.6M overall number
//! of parameters." With fbank-style 40-dimensional input frames and hidden
//! width 1024, the parameter count is
//! `3·(1024·40 + 1024²) + 3·(1024² + 1024²) = 9.56M` — matching the paper's
//! "about 9.6M".
//!
//! For the performance experiments (Table II, Figure 4) no training is
//! needed: the matrices just have to carry the right *structure*. Each
//! fused gate matrix is generated with an exact BSP pattern at a requested
//! `(column rate, row rate)`, deterministic in the seed, so the compiler
//! and simulator see exactly what a BSP-pruned model would give them.
//!
//! Kernels are modelled fused: one `3H × I` input matrix (all three gates
//! stacked) and one `3H × H` recurrent matrix per layer — the standard
//! mobile implementation — so a 2-layer model launches 4 kernels per
//! timestep group.

use rtm_tensor::init::rng_from_seed;
use rtm_tensor::Matrix;

/// The GRU inference workload: fused weight matrices plus frame geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct GruWorkload {
    /// Fused weight matrices in execution order
    /// (`layer0.Wx`, `layer0.Uh`, `layer1.Wx`, `layer1.Uh`, …).
    pub matrices: Vec<Matrix>,
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden width per layer.
    pub hidden_dim: usize,
    /// Number of GRU layers.
    pub layers: usize,
    /// Timesteps evaluated per reported "frame" (weights are streamed once
    /// per frame and reused across these steps — weight-stationary
    /// batching).
    pub timesteps_per_frame: usize,
}

impl GruWorkload {
    /// Number of timesteps per frame that makes the dense workload match
    /// the paper's 0.58 GOP per frame.
    pub const PAPER_TIMESTEPS: usize = 30;

    /// Builds the paper's dense model (input 40, hidden 1024, 2 layers).
    pub fn paper_dense(seed: u64) -> GruWorkload {
        GruWorkload::with_bsp_pattern(40, 1024, 2, 1.0, 1.0, 8, 8, seed)
    }

    /// Builds the model with every fused matrix carrying an exact BSP
    /// pattern at `(col_rate, row_rate)` over a `stripes × blocks`
    /// partition. `col_rate = row_rate = 1.0` yields the dense model.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or partition is zero, or a rate is below 1.
    #[allow(clippy::too_many_arguments)]
    pub fn with_bsp_pattern(
        input_dim: usize,
        hidden_dim: usize,
        layers: usize,
        col_rate: f64,
        row_rate: f64,
        stripes: usize,
        blocks: usize,
        seed: u64,
    ) -> GruWorkload {
        assert!(
            input_dim > 0 && hidden_dim > 0 && layers > 0,
            "dims must be positive"
        );
        assert!(stripes > 0 && blocks > 0, "partition must be positive");
        assert!(col_rate >= 1.0 && row_rate >= 1.0, "rates must be >= 1");
        let mut rng = rng_from_seed(seed);
        let mut matrices = Vec::with_capacity(layers * 2);
        let mut in_dim = input_dim;
        for _ in 0..layers {
            matrices.push(bsp_structured(
                3 * hidden_dim,
                in_dim,
                col_rate,
                row_rate,
                stripes,
                blocks,
                &mut rng,
            ));
            matrices.push(bsp_structured(
                3 * hidden_dim,
                hidden_dim,
                col_rate,
                row_rate,
                stripes,
                blocks,
                &mut rng,
            ));
            in_dim = hidden_dim;
        }
        GruWorkload {
            matrices,
            input_dim,
            hidden_dim,
            layers,
            timesteps_per_frame: GruWorkload::PAPER_TIMESTEPS,
        }
    }

    /// Total surviving (nonzero) parameters across all matrices.
    pub fn nonzero_params(&self) -> usize {
        self.matrices.iter().map(Matrix::count_nonzero).sum()
    }

    /// Total dense parameter count.
    pub fn total_params(&self) -> usize {
        self.matrices.iter().map(Matrix::len).sum()
    }

    /// Achieved compression rate.
    pub fn compression_rate(&self) -> f64 {
        let nz = self.nonzero_params();
        if nz == 0 {
            f64::INFINITY
        } else {
            self.total_params() as f64 / nz as f64
        }
    }

    /// Giga-operations per frame (2 ops per surviving weight per timestep).
    pub fn gop_per_frame(&self) -> f64 {
        2.0 * self.nonzero_params() as f64 * self.timesteps_per_frame as f64 / 1e9
    }
}

/// Generates a `rows × cols` matrix with an exact BSP structure:
/// `1/col_rate` of the columns survive per (stripe × block) — a different
/// selection per stripe — and `1/row_rate` of the rows survive, evenly
/// spaced. Surviving entries are nonzero uniform values.
#[allow(clippy::too_many_arguments)]
fn bsp_structured(
    rows: usize,
    cols: usize,
    col_rate: f64,
    row_rate: f64,
    stripes: usize,
    blocks: usize,
    rng: &mut rtm_tensor::rng::StdRng,
) -> Matrix {
    let stripes = stripes.min(rows);
    let blocks = blocks.min(cols);
    let stripe_h = rows.div_ceil(stripes);
    let block_w = cols.div_ceil(blocks);

    // Surviving rows: evenly spaced at the row rate.
    let keep_rows = ((rows as f64 / row_rate).round() as usize).clamp(1, rows);
    let mut row_kept = vec![false; rows];
    for k in 0..keep_rows {
        let r = k * rows / keep_rows;
        row_kept[r] = true;
    }

    // Surviving columns per stripe-block: a seeded random choice of
    // ceil(width / col_rate) columns.
    let mut col_kept = vec![false; stripes * cols];
    for s in 0..stripes {
        for b in 0..blocks {
            let c0 = b * block_w;
            let c1 = ((b + 1) * block_w).min(cols);
            if c0 >= c1 {
                continue;
            }
            let width = c1 - c0;
            let keep = ((width as f64 / col_rate).round() as usize).clamp(1, width);
            let mut chosen: Vec<usize> = (c0..c1).collect();
            // Partial Fisher-Yates for the first `keep` picks.
            for i in 0..keep {
                let j = rng.gen_range(i..chosen.len());
                chosen.swap(i, j);
            }
            for &c in &chosen[..keep] {
                col_kept[s * cols + c] = true;
            }
        }
    }

    Matrix::from_fn(rows, cols, |r, c| {
        let s = (r / stripe_h).min(stripes - 1);
        if row_kept[r] && col_kept[s * cols + c] {
            // Nonzero magnitude bounded away from zero.
            0.05 + (((r * 31 + c * 17) % 97) as f32) / 100.0
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_parameter_count() {
        let w = GruWorkload::paper_dense(1);
        // 3*(1024*40 + 1024^2) + 3*(1024^2 + 1024^2) = 9.56M
        let want = 3 * (1024 * 40 + 1024 * 1024) + 3 * (2 * 1024 * 1024);
        assert_eq!(w.total_params(), want);
        assert!(
            (w.total_params() as f64 - 9.6e6).abs() / 9.6e6 < 0.01,
            "within 1% of 9.6M"
        );
        assert_eq!(w.matrices.len(), 4, "2 layers x 2 fused kernels");
        assert_eq!(w.compression_rate(), 1.0);
    }

    #[test]
    fn paper_gop_matches_table2() {
        let w = GruWorkload::paper_dense(1);
        // Table II row 1: 0.58 GOP at 1x.
        assert!(
            (w.gop_per_frame() - 0.58).abs() < 0.01,
            "GOP {}",
            w.gop_per_frame()
        );
    }

    #[test]
    fn compression_rate_tracks_target() {
        for &(cr, rr) in &[(10.0, 1.0), (16.0, 2.0), (20.0, 8.0)] {
            let w = GruWorkload::with_bsp_pattern(40, 256, 2, cr, rr, 8, 8, 7);
            let achieved = w.compression_rate();
            let nominal = cr * rr;
            assert!(
                achieved > nominal * 0.4 && achieved < nominal * 1.3,
                "target {nominal} achieved {achieved}"
            );
        }
    }

    #[test]
    fn structure_is_bsp() {
        let w = GruWorkload::with_bsp_pattern(16, 32, 1, 4.0, 2.0, 4, 4, 3);
        for m in &w.matrices {
            let stripe_h = m.rows().div_ceil(4);
            // Rows are all-zero or follow their stripe pattern exactly.
            for s in 0..4 {
                let r0 = s * stripe_h;
                let r1 = ((s + 1) * stripe_h).min(m.rows());
                let kept_rows: Vec<usize> = (r0..r1)
                    .filter(|&r| m.row(r).iter().any(|&v| v != 0.0))
                    .collect();
                if kept_rows.len() < 2 {
                    continue;
                }
                let pattern: Vec<bool> = m.row(kept_rows[0]).iter().map(|&v| v != 0.0).collect();
                for &r in &kept_rows[1..] {
                    let p: Vec<bool> = m.row(r).iter().map(|&v| v != 0.0).collect();
                    assert_eq!(p, pattern, "stripe {s} rows share a pattern");
                }
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = GruWorkload::with_bsp_pattern(8, 64, 1, 4.0, 2.0, 4, 4, 42);
        let b = GruWorkload::with_bsp_pattern(8, 64, 1, 4.0, 2.0, 4, 4, 42);
        assert_eq!(a, b);
        let c = GruWorkload::with_bsp_pattern(8, 64, 1, 4.0, 2.0, 4, 4, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn gop_scales_with_compression() {
        let dense = GruWorkload::with_bsp_pattern(40, 256, 2, 1.0, 1.0, 8, 8, 1);
        let pruned = GruWorkload::with_bsp_pattern(40, 256, 2, 10.0, 1.0, 8, 8, 1);
        let ratio = dense.gop_per_frame() / pruned.gop_per_frame();
        assert!(ratio > 7.0 && ratio < 13.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "rates must be >= 1")]
    fn bad_rate_rejected() {
        GruWorkload::with_bsp_pattern(8, 8, 1, 0.5, 1.0, 2, 2, 0);
    }
}
