//! Sensitivity analysis of the cost model — how robust are the reproduced
//! Table II / Figure 4 *shapes* to the calibration constants?
//!
//! A simulation-based reproduction owes the reader this check: the device
//! parameters (sustained bandwidth, launch overhead, gather efficiency,
//! decode rate) were set once from datasheet-level reasoning, so every
//! qualitative conclusion should survive perturbing them. For each knob and
//! each scale factor, [`analyze`] re-runs the compression sweep and tests
//! the paper's three core shape claims:
//!
//! 1. inference time falls monotonically with compression rate;
//! 2. energy efficiency rises monotonically with compression rate;
//! 3. the speedup saturates at extreme rates (245× → 301× gains < 25%).

use crate::device::GpuModel;
use crate::ese::EseReference;
use crate::frame::InferenceSim;
use crate::workload::GruWorkload;
use rtm_compiler::plan::{ExecutionPlan, StorageFormat};

/// A perturbable GPU-model knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Knob {
    /// Sustained fraction of peak DRAM bandwidth.
    StreamEfficiency,
    /// Fixed kernel launch overhead.
    LaunchOverhead,
    /// Scattered-gather bandwidth fraction.
    GatherEfficiency,
    /// Index decode rate.
    DecodeRate,
}

impl Knob {
    /// All knobs.
    pub fn all() -> [Knob; 4] {
        [
            Knob::StreamEfficiency,
            Knob::LaunchOverhead,
            Knob::GatherEfficiency,
            Knob::DecodeRate,
        ]
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Knob::StreamEfficiency => "stream_efficiency",
            Knob::LaunchOverhead => "launch_overhead",
            Knob::GatherEfficiency => "gather_efficiency",
            Knob::DecodeRate => "decode_rate",
        }
    }

    /// Returns the baseline GPU model with this knob scaled by `factor`.
    pub fn scaled(self, factor: f64) -> GpuModel {
        let mut gpu = GpuModel::adreno640();
        match self {
            Knob::StreamEfficiency => gpu.stream_efficiency *= factor,
            Knob::LaunchOverhead => gpu.launch_overhead_us *= factor,
            Knob::GatherEfficiency => {
                gpu.gather_efficiency = (gpu.gather_efficiency * factor).min(1.0)
            }
            Knob::DecodeRate => gpu.index_decode_per_us *= factor,
        }
        gpu
    }
}

/// One perturbation's verdicts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// The knob perturbed.
    pub knob: Knob,
    /// Scale factor applied.
    pub factor: f64,
    /// Shape claim 1: time monotone decreasing in compression.
    pub time_monotone: bool,
    /// Shape claim 2: efficiency monotone increasing.
    pub efficiency_monotone: bool,
    /// Shape claim 3: speedup saturates at the tail.
    pub saturates: bool,
}

impl Verdict {
    /// All three shape claims hold.
    pub fn all_hold(&self) -> bool {
        self.time_monotone && self.efficiency_monotone && self.saturates
    }
}

/// The compression sweep used by the analysis (a subset of Table II's).
const SWEEP: [(f64, f64); 5] = [
    (1.0, 1.0),
    (10.0, 1.0),
    (16.0, 2.0),
    (20.0, 8.0),
    (15.3, 16.0), // ~245x
];

/// The extreme pair for the saturation check.
const TAIL: [(f64, f64); 2] = [(15.3, 16.0), (15.0, 20.0)];

/// Runs the sweep under a perturbed GPU model and evaluates the shape
/// claims.
pub fn check(knob: Knob, factor: f64, seed: u64) -> Verdict {
    let mut sim = InferenceSim::new();
    sim.gpu = knob.scaled(factor);

    let run = |col: f64, row: f64| {
        let w = GruWorkload::with_bsp_pattern(40, 1024, 2, col, row, 8, 8, seed);
        let plan = if col == 1.0 && row == 1.0 {
            ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations()
        } else {
            ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8)
        };
        sim.run_frame(&w, &plan)
    };

    let reports: Vec<_> = SWEEP.iter().map(|&(c, r)| run(c, r)).collect();
    let time_monotone = reports.windows(2).all(|w| w[1].time_us < w[0].time_us);
    let efficiency_monotone = reports
        .windows(2)
        .all(|w| w[1].efficiency_vs_ese > w[0].efficiency_vs_ese);
    let a = run(TAIL[0].0, TAIL[0].1).time_us;
    let b = run(TAIL[1].0, TAIL[1].1).time_us;
    let saturates = a / b < 1.25;
    let _ = EseReference::paper();

    Verdict {
        knob,
        factor,
        time_monotone,
        efficiency_monotone,
        saturates,
    }
}

/// Full grid: every knob × the factor grid. Returns all verdicts.
pub fn analyze(factors: &[f64], seed: u64) -> Vec<Verdict> {
    let mut out = Vec::with_capacity(Knob::all().len() * factors.len());
    for knob in Knob::all() {
        for &f in factors {
            out.push(check(knob, f, seed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_model_satisfies_all_claims() {
        for knob in Knob::all() {
            let v = check(knob, 1.0, 3);
            assert!(v.all_hold(), "baseline must hold for {:?}: {:?}", knob, v);
        }
    }

    #[test]
    fn shapes_survive_2x_perturbations() {
        // The reproduction's core claim: the qualitative Table II shapes are
        // not artifacts of the specific constants. Halving or doubling any
        // single knob must preserve all three claims.
        for v in analyze(&[0.5, 2.0], 3) {
            assert!(
                v.time_monotone && v.efficiency_monotone,
                "monotonicity must survive {:?} x{}: {:?}",
                v.knob,
                v.factor,
                v
            );
            // Saturation is overhead-driven: it may legitimately weaken when
            // the launch overhead is halved, but must hold otherwise.
            if !(v.knob == Knob::LaunchOverhead && v.factor < 1.0) {
                assert!(
                    v.saturates,
                    "saturation must survive {:?} x{}",
                    v.knob, v.factor
                );
            }
        }
    }

    #[test]
    fn extreme_overhead_breaks_saturation_the_right_way() {
        // With 8x higher launch overhead the floor rises: saturation holds
        // even more strongly (the tail gain shrinks).
        let v = check(Knob::LaunchOverhead, 8.0, 3);
        assert!(v.saturates);
        // With near-zero overhead the data term dominates and the tail keeps
        // improving — saturation weakening is the *expected* physics.
        let v = check(Knob::LaunchOverhead, 0.05, 3);
        assert!(v.time_monotone);
    }

    #[test]
    fn knob_labels_and_scaling() {
        assert_eq!(Knob::StreamEfficiency.label(), "stream_efficiency");
        let g = Knob::LaunchOverhead.scaled(2.0);
        assert!((g.launch_overhead_us - 24.0).abs() < 1e-9);
        let g = Knob::GatherEfficiency.scaled(100.0);
        assert!(g.gather_efficiency <= 1.0, "clamped to a fraction");
        let base = GpuModel::adreno640();
        let g = Knob::DecodeRate.scaled(0.5);
        assert!((g.index_decode_per_us - base.index_decode_per_us * 0.5).abs() < 1e-9);
    }

    #[test]
    fn analyze_covers_the_grid() {
        let verdicts = analyze(&[0.5, 1.0, 2.0], 1);
        assert_eq!(verdicts.len(), 12);
        assert!(verdicts
            .iter()
            .filter(|v| v.factor == 1.0)
            .all(Verdict::all_hold));
    }
}
