//! Device cost models: Adreno-640-class mobile GPU and Kryo-485-class
//! mobile CPU.
//!
//! Both models price a [`KernelProfile`] with a roofline-style formula:
//!
//! ```text
//! time = launch_overhead
//!      + max(compute_time × divergence/imbalance,
//!            streamed_bytes / bandwidth + gathered_bytes / (bandwidth × coalescing)
//!            + index_decodes / decode_rate)
//! ```
//!
//! The parameter values are datasheet-level figures for the Snapdragon 855
//! (fp16 GPU throughput, LPDDR4X bandwidth) with the coalescing and
//! overhead constants chosen once so the *shape* of Table II emerges; they
//! are not fitted per row. All constants are public so the ablation benches
//! can perturb them.

use rtm_compiler::plan::{ExecutionPlan, InputPlacement, StorageFormat};
use rtm_compiler::profile::KernelProfile;

/// Cost breakdown of one kernel launch, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// Arithmetic time (after divergence/imbalance inflation).
    pub compute_us: f64,
    /// Memory time (streams + gathers + index decode).
    pub memory_us: f64,
    /// Fixed dispatch/launch overhead.
    pub overhead_us: f64,
    /// Bytes moved (for energy accounting).
    pub bytes: usize,
    /// FLOPs executed.
    pub flops: usize,
}

impl KernelCost {
    /// Total latency: overhead plus the roofline max of compute and memory.
    pub fn total_us(&self) -> f64 {
        self.overhead_us + self.compute_us.max(self.memory_us)
    }

    /// Whether the kernel is memory-bound.
    pub fn memory_bound(&self) -> bool {
        self.memory_us >= self.compute_us
    }

    /// Accumulates another kernel's cost (sequential execution).
    pub fn accumulate(&mut self, other: &KernelCost) {
        self.compute_us += other.compute_us;
        self.memory_us += other.memory_us;
        self.overhead_us += other.overhead_us;
        self.bytes += other.bytes;
        self.flops += other.flops;
    }

    /// Sequential total across kernels: Σ per-kernel totals.
    pub fn sequential_total_us(costs: &[KernelCost]) -> f64 {
        costs.iter().map(KernelCost::total_us).sum()
    }
}

/// An Adreno-640-class embedded GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Peak fp16 throughput in GFLOP/s.
    pub peak_gflops_f16: f64,
    /// Peak fp32 throughput in GFLOP/s.
    pub peak_gflops_f32: f64,
    /// DRAM bandwidth in GB/s (shared LPDDR4X).
    pub dram_bw_gbs: f64,
    /// Fraction of peak DRAM bandwidth a unit-stride GEMV stream actually
    /// sustains on the device (mobile memory controllers deliver well under
    /// datasheet peak to a single kernel).
    pub stream_efficiency: f64,
    /// Fraction of the *sustained* bandwidth achieved by scattered
    /// (uncoalesced) gathers, e.g. CSR's per-nonzero input indexing.
    pub gather_efficiency: f64,
    /// Index words decoded per microsecond (dependent-load pipeline rate).
    pub index_decode_per_us: f64,
    /// Fixed kernel launch/dispatch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Average active power draw in watts (calibrated from Table II; the
    /// paper's GPU energy-efficiency column is consistent with ≈1.07 W).
    pub power_w: f64,
}

impl GpuModel {
    /// The Adreno 640 instance used throughout the experiments.
    pub fn adreno640() -> GpuModel {
        GpuModel {
            peak_gflops_f16: 900.0,
            peak_gflops_f32: 450.0,
            dram_bw_gbs: 34.0,
            stream_efficiency: 0.18,
            gather_efficiency: 0.25,
            index_decode_per_us: 50_000.0,
            launch_overhead_us: 12.0,
            power_w: 1.07,
        }
    }

    /// Prices one kernel.
    pub fn kernel_cost(&self, profile: &KernelProfile, plan: &ExecutionPlan) -> KernelCost {
        let prec = plan.precision.bytes();
        let peak = match plan.precision {
            rtm_sparse::footprint::Precision::F16 => self.peak_gflops_f16,
            rtm_sparse::footprint::Precision::F32 => self.peak_gflops_f32,
            // Int8 what-if: the GPU's int8 dot rate matches its fp16 rate.
            rtm_sparse::footprint::Precision::Int8 => self.peak_gflops_f16,
        };
        // GFLOP/s == FLOP/ns; FLOPs / (GFLOP/s * 1000) = microseconds.
        let compute_us = profile.flops as f64 / (peak * 1000.0) * profile.divergence_factor;

        // Streamed traffic: weights + indices + outputs move at full
        // bandwidth (unit-stride); input gathers depend on the format.
        let streamed = profile.value_bytes + profile.index_bytes + profile.output_stores * prec;
        let gathered = profile.input_loads * prec;
        let coalescing = match (plan.format, plan.input_placement) {
            // Unstructured CSR gathers are scattered.
            (StorageFormat::Csr, _) => self.gather_efficiency,
            // Shared-memory staging (or dense streaming) is coalesced.
            (_, InputPlacement::Shared) => 1.0,
            (_, InputPlacement::Global) => 0.5,
        };
        // GB/s == bytes/ns; bytes / (GB/s * 1000) = microseconds.
        // Divergent warps serialize their scattered accesses, so the
        // gather and decode terms inflate with the divergence factor —
        // this is the memory-side cost matrix reorder removes (§IV-B-a).
        let bw = self.dram_bw_gbs * self.stream_efficiency;
        let memory_us = streamed as f64 / (bw * 1000.0)
            + gathered as f64 / (bw * 1000.0 * coalescing) * profile.divergence_factor
            + profile.index_decodes as f64 / self.index_decode_per_us * profile.divergence_factor;

        KernelCost {
            compute_us,
            memory_us,
            overhead_us: self.launch_overhead_us,
            bytes: streamed + gathered,
            flops: profile.flops,
        }
    }

    /// Energy in microjoules for a given latency.
    pub fn energy_uj(&self, time_us: f64) -> f64 {
        self.power_w * time_us
    }
}

/// A Kryo-485-class mobile CPU cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Aggregate NEON fp32 throughput in GFLOP/s across the big cores.
    pub peak_gflops_f32: f64,
    /// DRAM bandwidth in GB/s (shared with the GPU).
    pub dram_bw_gbs: f64,
    /// Sustained fraction of peak bandwidth for unit-stride streams.
    pub stream_efficiency: f64,
    /// Scattered-gather fraction of the sustained bandwidth.
    pub gather_efficiency: f64,
    /// Index words decoded per microsecond.
    pub index_decode_per_us: f64,
    /// Per-kernel thread-pool dispatch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Average active power draw in watts (Table II's CPU column is
    /// consistent with ≈1.9 W).
    pub power_w: f64,
}

impl CpuModel {
    /// The Kryo 485 instance used throughout the experiments.
    pub fn kryo485() -> CpuModel {
        CpuModel {
            peak_gflops_f32: 110.0,
            dram_bw_gbs: 15.0,
            stream_efficiency: 0.36,
            gather_efficiency: 0.35,
            index_decode_per_us: 20_000.0,
            launch_overhead_us: 8.0,
            power_w: 1.9,
        }
    }

    /// Prices one kernel.
    pub fn kernel_cost(&self, profile: &KernelProfile, plan: &ExecutionPlan) -> KernelCost {
        let prec = plan.precision.bytes();
        // Int8 what-if: SDOT-class instructions double the fp32 MAC rate.
        let peak = match plan.precision {
            rtm_sparse::footprint::Precision::Int8 => self.peak_gflops_f32 * 2.0,
            _ => self.peak_gflops_f32,
        };
        let compute_us = profile.flops as f64 / (peak * 1000.0) * profile.imbalance_factor;
        let streamed = profile.value_bytes + profile.index_bytes + profile.output_stores * prec;
        let gathered = profile.input_loads * prec;
        let coalescing = match plan.format {
            StorageFormat::Csr => self.gather_efficiency,
            _ => 1.0,
        };
        // The slowest thread gates the kernel: the imbalance factor
        // inflates both value streaming and gathers (§IV-B-a's "severe load
        // imbalance issue").
        let bw = self.dram_bw_gbs * self.stream_efficiency;
        let memory_us = (streamed as f64 / (bw * 1000.0)
            + gathered as f64 / (bw * 1000.0 * coalescing)
            + profile.index_decodes as f64 / self.index_decode_per_us)
            * profile.imbalance_factor;

        KernelCost {
            compute_us,
            memory_us,
            overhead_us: self.launch_overhead_us,
            bytes: streamed + gathered,
            flops: profile.flops,
        }
    }

    /// Prices one kernel with a *measured* thread-imbalance factor — the
    /// [`rtm_exec::Partition::imbalance`] of the chunking the execution
    /// engine actually builds (see [`measured_imbalance`]) — in place of
    /// the profile's analytic estimate.
    ///
    /// # Panics
    ///
    /// Panics if `measured_imbalance < 1.0` (the slowest thread can never
    /// beat the mean).
    pub fn kernel_cost_measured(
        &self,
        profile: &KernelProfile,
        plan: &ExecutionPlan,
        measured_imbalance: f64,
    ) -> KernelCost {
        assert!(
            measured_imbalance >= 1.0 - 1e-9,
            "imbalance factor must be >= 1"
        );
        let mut measured = profile.clone();
        measured.imbalance_factor = measured_imbalance.max(1.0);
        self.kernel_cost(&measured, plan)
    }

    /// Energy in microjoules for a given latency.
    pub fn energy_uj(&self, time_us: f64) -> f64 {
        self.power_w * time_us
    }
}

/// The execution engine's measured per-thread load imbalance for `w` on
/// `threads` threads: slowest chunk's nonzero count over the mean, using
/// the same cost-balanced contiguous partitioning `rtm-exec` runs with
/// (rather than the analytic row-length-spread estimate in
/// [`KernelProfile`]).
pub fn measured_imbalance(w: &rtm_tensor::Matrix, threads: usize) -> f64 {
    let costs: Vec<usize> = (0..w.rows())
        .map(|r| w.row(r).iter().filter(|&&v| v != 0.0).count())
        .collect();
    let imbalance = rtm_exec::Partition::balanced(&costs, threads).imbalance();
    // Recorded next to the pool's live busy-time gauge
    // (`exec.pool.imbalance`) so a traced run can cross-check the cost
    // model's prediction against what the engine actually measured.
    rtm_trace::gauge(rtm_trace::key::SIM_IMBALANCE, imbalance);
    imbalance
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_compiler::plan::StorageFormat;
    use rtm_tensor::Matrix;

    fn dense_profile(n: usize) -> (KernelProfile, ExecutionPlan) {
        let w = Matrix::filled(n, n, 0.5);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations();
        (KernelProfile::analyze(&w, &plan), plan)
    }

    #[test]
    fn kernel_cost_arithmetic() {
        let mut a = KernelCost {
            compute_us: 2.0,
            memory_us: 5.0,
            overhead_us: 1.0,
            bytes: 100,
            flops: 200,
        };
        assert_eq!(a.total_us(), 6.0);
        assert!(a.memory_bound());
        let b = KernelCost {
            compute_us: 10.0,
            memory_us: 1.0,
            overhead_us: 1.0,
            bytes: 50,
            flops: 500,
        };
        assert!(!b.memory_bound());
        a.accumulate(&b);
        assert_eq!(a.flops, 700);
        assert_eq!(a.bytes, 150);
        assert_eq!(
            KernelCost::sequential_total_us(&[a, b]),
            a.total_us() + b.total_us()
        );
    }

    #[test]
    fn gpu_dense_large_matrix_is_memory_bound() {
        let (profile, plan) = dense_profile(1024);
        let cost = GpuModel::adreno640().kernel_cost(&profile, &plan);
        // Dense fp16 GEMV: ~0.25 flops/byte, far below the ~26 flops/byte
        // roofline ridge of the 900 GFLOPS / 34 GB/s device.
        assert!(cost.memory_bound());
        assert!(cost.total_us() > cost.overhead_us);
    }

    #[test]
    fn overhead_dominates_tiny_kernels() {
        let (profile, plan) = dense_profile(16);
        let cost = GpuModel::adreno640().kernel_cost(&profile, &plan);
        assert!(cost.overhead_us > cost.compute_us.max(cost.memory_us));
    }

    #[test]
    fn csr_gathers_cost_more_than_bspc() {
        // Same BSP-structured matrix, CSR vs BSPC plans.
        let w = Matrix::from_fn(
            512,
            512,
            |r, c| {
                if c % 16 == (r / 64) % 16 {
                    0.5
                } else {
                    0.0
                }
            },
        );
        let gpu = GpuModel::adreno640();
        let csr_plan = ExecutionPlan::gpu_default(StorageFormat::Csr);
        let bspc_plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 16);
        let csr = gpu.kernel_cost(&KernelProfile::analyze(&w, &csr_plan), &csr_plan);
        let bspc = gpu.kernel_cost(&KernelProfile::analyze(&w, &bspc_plan), &bspc_plan);
        assert!(
            bspc.memory_us < csr.memory_us,
            "bspc {} vs csr {}",
            bspc.memory_us,
            csr.memory_us
        );
        assert!(bspc.total_us() < csr.total_us());
    }

    #[test]
    fn cpu_slower_than_gpu_on_dense() {
        let w = Matrix::filled(1024, 1024, 0.5);
        let gplan = ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations();
        let mut cplan = ExecutionPlan::cpu_default(StorageFormat::Dense).without_optimizations();
        cplan.precision = rtm_sparse::footprint::Precision::F32;
        let g = GpuModel::adreno640().kernel_cost(&KernelProfile::analyze(&w, &gplan), &gplan);
        let c = CpuModel::kryo485().kernel_cost(&KernelProfile::analyze(&w, &cplan), &cplan);
        assert!(
            c.total_us() > g.total_us(),
            "cpu {} vs gpu {}",
            c.total_us(),
            g.total_us()
        );
    }

    #[test]
    fn energy_scales_with_time() {
        let gpu = GpuModel::adreno640();
        assert!((gpu.energy_uj(100.0) - 107.0).abs() < 1e-9);
        let cpu = CpuModel::kryo485();
        assert!((cpu.energy_uj(100.0) - 190.0).abs() < 1e-9);
    }

    #[test]
    fn divergence_inflates_compute() {
        let w = Matrix::from_fn(256, 256, |r, c| {
            // Alternating heavy/light rows -> divergence without reorder.
            let heavy = r % 2 == 0;
            if (heavy && c < 128) || (!heavy && c < 2) {
                0.5
            } else {
                0.0
            }
        });
        let with = ExecutionPlan::gpu_default(StorageFormat::Csr);
        let mut without = with;
        without.use_reorder = false;
        let gpu = GpuModel::adreno640();
        let a = gpu.kernel_cost(&KernelProfile::analyze(&w, &with), &with);
        let b = gpu.kernel_cost(&KernelProfile::analyze(&w, &without), &without);
        assert!(a.compute_us < b.compute_us, "reorder cuts compute time");
    }

    #[test]
    fn measured_imbalance_of_uniform_matrix_is_near_one() {
        let w = Matrix::filled(64, 64, 0.5);
        for threads in [1usize, 2, 4, 8] {
            let imb = measured_imbalance(&w, threads);
            assert!((1.0..1.2).contains(&imb), "{threads} threads: {imb}");
        }
    }

    #[test]
    fn measured_imbalance_detects_skew() {
        // One giant row among empty ones: with 4 threads the chunk holding
        // it carries ~4x the mean cost.
        let w = Matrix::from_fn(16, 64, |r, c| if r == 0 && c < 60 { 1.0 } else { 0.0 });
        let imb = measured_imbalance(&w, 4);
        assert!(imb > 2.0, "skewed partition must report imbalance: {imb}");
        assert!((measured_imbalance(&w, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_cost_measured_replaces_analytic_factor() {
        let w = Matrix::from_fn(64, 64, |r, c| if (r + c) % 3 == 0 { 0.5 } else { 0.0 });
        let plan = ExecutionPlan::cpu_default(StorageFormat::Bspc);
        let profile = KernelProfile::analyze(&w, &plan);
        let cpu = CpuModel::kryo485();
        let balanced = cpu.kernel_cost_measured(&profile, &plan, 1.0);
        let skewed = cpu.kernel_cost_measured(&profile, &plan, 2.0);
        assert!((skewed.compute_us / balanced.compute_us - 2.0).abs() < 1e-9);
        assert!(skewed.memory_us > balanced.memory_us);
        // Feeding the engine's own measured factor reproduces kernel_cost.
        let engine = cpu.kernel_cost_measured(&profile, &plan, measured_imbalance(&w, 4));
        assert!(engine.total_us() > 0.0);
    }

    #[test]
    #[should_panic(expected = "imbalance factor must be >= 1")]
    fn kernel_cost_measured_rejects_sub_unit_factor() {
        let (profile, plan) = dense_profile(8);
        CpuModel::kryo485().kernel_cost_measured(&profile, &plan, 0.5);
    }
}
