//! Real-time-factor analysis — grounding the paper's title claim.
//!
//! "RTMobile is the first work that can achieve real-time RNN inference on
//! mobile platforms" (§I). Speech front ends emit acoustic frames at a
//! fixed cadence (10 ms hop in every Kaldi-style pipeline); inference is
//! *real-time* when the per-frame latency stays under that budget, and
//! "beyond real-time" by the ratio between them.
//!
//! [`RealTimeReport::analyze`] combines a [`FrameReport`] with the frame
//! cadence: the real-time factor (RTF = processing time / audio time), the
//! headroom multiple, and the largest number of concurrent streams one
//! device could sustain.

use crate::frame::FrameReport;
use crate::workload::GruWorkload;

/// Standard feature-frame hop of speech front ends, in microseconds
/// (10 ms).
pub const FRAME_HOP_US: f64 = 10_000.0;

/// Real-time viability of a simulated inference configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealTimeReport {
    /// Audio duration covered per inference frame, in microseconds.
    pub audio_us_per_frame: f64,
    /// Inference latency per frame, in microseconds.
    pub compute_us_per_frame: f64,
    /// Real-time factor: compute time / audio time (< 1.0 is real-time).
    pub rtf: f64,
    /// How many times faster than real time ("beyond real-time" multiple).
    pub headroom: f64,
    /// Concurrent streams sustainable on the device (⌊headroom⌋).
    pub concurrent_streams: usize,
}

impl RealTimeReport {
    /// Analyzes a simulated frame cost against the workload's audio
    /// coverage (`timesteps_per_frame × hop`).
    pub fn analyze(workload: &GruWorkload, frame: &FrameReport) -> RealTimeReport {
        RealTimeReport::with_hop(workload, frame, FRAME_HOP_US)
    }

    /// Variant with an explicit frame hop in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `hop_us` is not positive.
    pub fn with_hop(workload: &GruWorkload, frame: &FrameReport, hop_us: f64) -> RealTimeReport {
        assert!(hop_us > 0.0, "hop must be positive");
        let audio = workload.timesteps_per_frame.max(1) as f64 * hop_us;
        let compute = frame.time_us;
        let rtf = compute / audio;
        let headroom = if compute > 0.0 {
            audio / compute
        } else {
            f64::INFINITY
        };
        RealTimeReport {
            audio_us_per_frame: audio,
            compute_us_per_frame: compute,
            rtf,
            headroom,
            concurrent_streams: headroom.floor().max(0.0) as usize,
        }
    }

    /// Whether the configuration keeps up with live audio.
    pub fn is_real_time(&self) -> bool {
        self.rtf < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::InferenceSim;
    use rtm_compiler::plan::{ExecutionPlan, StorageFormat};

    fn report_at(col: f64, row: f64, dense: bool) -> (GruWorkload, FrameReport) {
        let w = GruWorkload::with_bsp_pattern(40, 1024, 2, col, row, 8, 8, 5);
        let plan = if dense {
            ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations()
        } else {
            ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8)
        };
        let frame = InferenceSim::new().run_frame(&w, &plan);
        (w, frame)
    }

    #[test]
    fn dense_gpu_is_already_real_time_but_barely() {
        // 30 timesteps x 10ms = 300ms of audio per frame; dense GPU takes
        // ~3.2ms — real-time with ~90x headroom even dense. The paper's
        // "first real-time" claim is about *sustained end-to-end* budgets;
        // the RTF frame shows where the margin comes from.
        let (w, frame) = report_at(1.0, 1.0, true);
        let rt = RealTimeReport::analyze(&w, &frame);
        assert!(rt.is_real_time());
        assert!(rt.rtf > 0.005 && rt.rtf < 0.1, "rtf {}", rt.rtf);
    }

    #[test]
    fn compression_multiplies_headroom() {
        let (wd, fd) = report_at(1.0, 1.0, true);
        let (wp, fp) = report_at(15.3, 16.0, false); // ~245x
        let dense = RealTimeReport::analyze(&wd, &fd);
        let pruned = RealTimeReport::analyze(&wp, &fp);
        assert!(pruned.headroom > dense.headroom * 20.0);
        assert!(
            pruned.concurrent_streams > 1000,
            "streams {}",
            pruned.concurrent_streams
        );
    }

    #[test]
    fn custom_hop() {
        let (w, frame) = report_at(10.0, 1.0, false);
        let fast = RealTimeReport::with_hop(&w, &frame, 1000.0); // 1ms hop
        let slow = RealTimeReport::with_hop(&w, &frame, 20_000.0);
        assert!(fast.rtf > slow.rtf);
        assert_eq!(fast.compute_us_per_frame, slow.compute_us_per_frame);
    }

    #[test]
    #[should_panic(expected = "hop must be positive")]
    fn zero_hop_rejected() {
        let (w, frame) = report_at(10.0, 1.0, false);
        RealTimeReport::with_hop(&w, &frame, 0.0);
    }
}
