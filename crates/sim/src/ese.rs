//! The ESE FPGA reference point (paper Table II caption and §V-B).
//!
//! The paper normalizes every energy-efficiency number by "the ESE FPGA
//! implementation" and anchors two constants in the text: ESE's inference
//! time of **82.7 µs per frame** and its platform power of **41 W**. Both
//! are reproduced verbatim here; the reproduction makes no attempt to model
//! the FPGA internals because the paper treats it purely as a fixed
//! reference.

/// The ESE accelerator as a fixed latency/power reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EseReference {
    /// Inference latency per frame in microseconds.
    pub time_per_frame_us: f64,
    /// Platform power in watts.
    pub power_w: f64,
}

impl EseReference {
    /// The constants the paper states: 82.7 µs/frame at 41 W.
    pub fn paper() -> EseReference {
        EseReference {
            time_per_frame_us: 82.7,
            power_w: 41.0,
        }
    }

    /// Energy per frame in microjoules.
    pub fn energy_per_frame_uj(&self) -> f64 {
        self.power_w * self.time_per_frame_us
    }

    /// Frames inferred per microjoule (the paper's efficiency metric,
    /// `frames / (power × time)`).
    pub fn frames_per_uj(&self) -> f64 {
        1.0 / self.energy_per_frame_uj()
    }

    /// Normalizes another device's energy efficiency by ESE's: a device
    /// spending `energy_uj` per frame is `normalized_efficiency` times as
    /// efficient as ESE.
    ///
    /// # Panics
    ///
    /// Panics if `energy_uj` is not positive.
    pub fn normalized_efficiency(&self, energy_uj: f64) -> f64 {
        assert!(energy_uj > 0.0, "energy must be positive");
        self.energy_per_frame_uj() / energy_uj
    }
}

impl Default for EseReference {
    fn default() -> EseReference {
        EseReference::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let ese = EseReference::paper();
        assert_eq!(ese.time_per_frame_us, 82.7);
        assert_eq!(ese.power_w, 41.0);
        // 41 W * 82.7 us = 3390.7 uJ per frame.
        assert!((ese.energy_per_frame_uj() - 3390.7).abs() < 1e-9);
        assert_eq!(EseReference::default(), ese);
    }

    #[test]
    fn normalization_sanity() {
        let ese = EseReference::paper();
        // A device using exactly ESE's energy has efficiency 1.0.
        assert!((ese.normalized_efficiency(3390.7) - 1.0).abs() < 1e-12);
        // Using 1/40th the energy: 40x efficient — the headline claim.
        assert!((ese.normalized_efficiency(3390.7 / 40.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn paper_calibration_cross_check() {
        // Table II row 245x: GPU 81.64 us at efficiency 38.54x implies a GPU
        // power near 1.07 W — the constant device.rs uses.
        let ese = EseReference::paper();
        let implied_power = ese.energy_per_frame_uj() / (81.64 * 38.54);
        assert!(
            (implied_power - 1.07).abs() < 0.03,
            "implied GPU power {implied_power}"
        );
        // And the baseline row (3590.12 us, 0.88x) implies the same power.
        let implied_baseline = ese.energy_per_frame_uj() / (3590.12 * 0.88);
        assert!((implied_baseline - implied_power).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "energy must be positive")]
    fn zero_energy_rejected() {
        EseReference::paper().normalized_efficiency(0.0);
    }
}
