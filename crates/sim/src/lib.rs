#![warn(missing_docs)]

//! # rtm-sim
//!
//! An analytical mobile-SoC simulator standing in for the paper's Samsung
//! Galaxy S10 testbed (Snapdragon 855: Kryo 485 CPU + Adreno 640 GPU).
//!
//! The reproduction band for this paper flags the hardware gate ("mobile GPU
//! compute ecosystem thin"); per DESIGN.md §2 the substitution is an explicit
//! cost model rather than real silicon. The model prices the exact operation
//! and byte counts the compiler derives ([`rtm_compiler::KernelProfile`]):
//!
//! * **compute time** — FLOPs over peak throughput, inflated by the warp
//!   divergence factor (GPU) or thread imbalance factor (CPU);
//! * **memory time** — streamed bytes over DRAM bandwidth, with scattered
//!   gathers (CSR) charged at a reduced coalescing efficiency and an index
//!   decode cost on the critical path;
//! * **launch overhead** — a fixed cost per kernel; this is what makes the
//!   Figure 4 speedup saturate near 250× compression, because at extreme
//!   rates each kernel's data fits in microseconds and the dispatch cost
//!   dominates;
//! * **energy** — `device power × time`, with the device powers calibrated
//!   from Table II itself: the paper's GPU column is consistent with a
//!   constant ≈1.07 W and the CPU column with ≈1.9 W (see `ese`).
//!
//! [`ese`] models the comparison point: the ESE FPGA accelerator at a fixed
//! 82.7 µs/frame and 41 W, exactly the constants the paper normalizes by.
//!
//! # Example
//!
//! ```
//! use rtm_compiler::plan::{ExecutionPlan, StorageFormat};
//! use rtm_compiler::profile::KernelProfile;
//! use rtm_sim::device::GpuModel;
//! use rtm_tensor::Matrix;
//!
//! let w = Matrix::filled(256, 256, 0.5);
//! let plan = ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations();
//! let profile = KernelProfile::analyze(&w, &plan);
//! let cost = GpuModel::adreno640().kernel_cost(&profile, &plan);
//! assert!(cost.total_us() > 0.0);
//! ```

pub mod device;
pub mod ese;
pub mod faults;
pub mod frame;
pub mod realtime;
pub mod sensitivity;
pub mod streaming;
pub mod workload;

pub use device::{measured_imbalance, CpuModel, GpuModel, KernelCost};
pub use ese::EseReference;
pub use frame::{FrameReport, FrameTrace, InferenceSim};
pub use realtime::RealTimeReport;
pub use streaming::{MultiStreamReport, StreamingReport, StreamingSim};
pub use workload::GruWorkload;
