//! Deterministic fault-injection harness for the robustness test suite.
//!
//! The serving contract (DESIGN.md §10) promises containment under four
//! fault classes: kernel panics, numerically poisoned frames, slow workers,
//! and corrupted model bytes. [`FaultInjector`] manufactures each of them
//! *reproducibly* — it is a thin, seeded layer over the vendored
//! [`rtm_tensor::rng::StdRng`], so a failing fault-suite run can be replayed
//! from its seed with zero registry dependencies. The harness produces
//! faults; it never observes recovery — that is what
//! `tests/fault_injection.rs` asserts against the runtime crates.

use rtm_tensor::rng::StdRng;

/// The fault classes the serving runtime must contain (DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A kernel task panics mid-batch (contained by the worker pool).
    KernelPanic,
    /// An input frame carries NaN/Inf/saturated samples (quarantined by the
    /// health policy).
    NanFrame,
    /// A worker is artificially slowed, stressing deadline accounting.
    SlowWorker,
    /// Model bytes are truncated or bit-flipped (rejected by the decoder).
    TruncatedModel,
}

/// The three poison values a [`FaultInjector::poison_frame`] can plant,
/// matching the detector classes of the health scan.
const POISONS: [f32; 3] = [f32::NAN, f32::INFINITY, 1.0e6];

/// Seeded source of injected faults.
///
/// Every method is deterministic in the seed and the call sequence, so any
/// fault-suite failure reproduces exactly from `FaultInjector::new(seed)`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: StdRng,
    seed: u64,
    injected: usize,
}

impl FaultInjector {
    /// A harness whose entire fault schedule is a pure function of `seed`.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
            seed,
            injected: 0,
        }
    }

    /// The seed this harness was built from (for failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many faults this harness has injected so far.
    pub fn injected(&self) -> usize {
        self.injected
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    pub fn fire(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0) as f32;
        self.rng.gen_f32() < p
    }

    /// Uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick: empty range");
        self.rng.gen_range(0..n)
    }

    /// Poisons one sample of `frame` with a NaN, Inf, or saturated value
    /// (rotating through the three detector classes), returning the index
    /// and the value planted.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is empty.
    pub fn poison_frame(&mut self, frame: &mut [f32]) -> (usize, f32) {
        assert!(!frame.is_empty(), "poison_frame: empty frame");
        let at = self.pick(frame.len());
        let poison = POISONS[self.injected % POISONS.len()];
        frame[at] = poison;
        self.injected += 1;
        (at, poison)
    }

    /// Poisons lane `lane` of a lane-major batch (`width` lanes per row):
    /// one sample belonging to that lane gets a NaN. Returns the flat index
    /// poisoned.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= width` or the batch holds no full row.
    pub fn poison_lane(&mut self, batch: &mut [f32], width: usize, lane: usize) -> usize {
        assert!(lane < width, "poison_lane: lane {lane} out of {width}");
        let rows = batch.len() / width;
        assert!(rows > 0, "poison_lane: batch holds no full row");
        let row = self.pick(rows);
        let at = row * width + lane;
        batch[at] = f32::NAN;
        self.injected += 1;
        at
    }

    /// Flips one random bit of `bytes`, returning `(byte index, bit)`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty.
    pub fn flip_bit(&mut self, bytes: &mut [u8]) -> (usize, u8) {
        assert!(!bytes.is_empty(), "flip_bit: empty buffer");
        let at = self.pick(bytes.len());
        let bit = (self.rng.next_u32() % 8) as u8;
        bytes[at] ^= 1 << bit;
        self.injected += 1;
        (at, bit)
    }

    /// Picks a truncation point strictly inside `len` (so the result is a
    /// genuinely short buffer, never the full one).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn truncate_at(&mut self, len: usize) -> usize {
        assert!(len > 0, "truncate_at: empty buffer");
        let at = self.pick(len);
        self.injected += 1;
        at
    }

    /// Burns roughly `us` microseconds of wall clock on the calling thread
    /// (a busy loop, so a "slow worker" stays on-CPU like a real stalled
    /// kernel rather than yielding). Used to stress deadline accounting.
    pub fn busy_wait_us(&mut self, us: u64) {
        self.injected += 1;
        let start = std::time::Instant::now();
        while start.elapsed() < std::time::Duration::from_micros(us) {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultInjector::new(7);
        let mut b = FaultInjector::new(7);
        let mut fa = vec![1.0f32; 64];
        let mut fb = vec![1.0f32; 64];
        for _ in 0..10 {
            assert_eq!(a.fire(0.3), b.fire(0.3));
            let (ia, pa) = a.poison_frame(&mut fa);
            let (ib, pb) = b.poison_frame(&mut fb);
            // Compare bit patterns: the planted poison may be NaN.
            assert_eq!((ia, pa.to_bits()), (ib, pb.to_bits()));
        }
        assert_eq!(
            fa.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            fb.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(a.injected(), 10);
        assert_eq!(a.seed(), 7);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(1);
        let mut b = FaultInjector::new(2);
        let same = (0..64).filter(|_| a.pick(1000) == b.pick(1000)).count();
        assert!(same < 16, "seeds should decorrelate ({same}/64 collisions)");
    }

    #[test]
    fn poison_rotates_through_detector_classes() {
        let mut inj = FaultInjector::new(3);
        let mut frame = vec![0.0f32; 8];
        let (_, p0) = inj.poison_frame(&mut frame);
        let (_, p1) = inj.poison_frame(&mut frame);
        let (_, p2) = inj.poison_frame(&mut frame);
        assert!(p0.is_nan());
        assert!(p1.is_infinite());
        assert!(p2.is_finite() && p2.abs() > 1.0e5);
    }

    #[test]
    fn poison_lane_stays_in_lane() {
        let mut inj = FaultInjector::new(11);
        let width = 8;
        for lane in 0..width {
            let mut batch = vec![0.0f32; 4 * width];
            let at = inj.poison_lane(&mut batch, width, lane);
            assert_eq!(at % width, lane);
            assert!(batch[at].is_nan());
            // No other lane was touched.
            for (i, &v) in batch.iter().enumerate() {
                if i % width != lane {
                    assert_eq!(v.to_bits(), 0.0f32.to_bits(), "lane bleed at {i}");
                }
            }
        }
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let mut inj = FaultInjector::new(5);
        for _ in 0..50 {
            let orig = vec![0xA5u8; 32];
            let mut mutated = orig.clone();
            let (at, bit) = inj.flip_bit(&mut mutated);
            assert_eq!(mutated[at] ^ orig[at], 1 << bit);
            let diff: u32 = orig
                .iter()
                .zip(&mutated)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn truncate_is_strictly_short() {
        let mut inj = FaultInjector::new(9);
        for _ in 0..100 {
            let at = inj.truncate_at(64);
            assert!(at < 64);
        }
    }

    #[test]
    fn fire_respects_extremes() {
        let mut inj = FaultInjector::new(1);
        assert!(!(0..100).any(|_| inj.fire(0.0)));
        assert!((0..100).all(|_| inj.fire(1.0)));
    }
}
