//! Streaming (queueing) simulation of live speech inference.
//!
//! The frame-level simulator prices one inference in isolation;
//! [`StreamingSim`] models the *online* setting the paper's application
//! implies: acoustic frames arrive on a fixed cadence, inference runs
//! serially on one device, and any frame whose processing has not finished
//! when the next arrives queues up. The report carries the end-to-end
//! latency distribution — the number a voice-assistant engineer actually
//! ships against — and whether the queue is stable (RTF < 1) or grows
//! without bound.

use crate::frame::{FrameReport, InferenceSim};
use crate::realtime::FRAME_HOP_US;
use crate::workload::GruWorkload;
use rtm_compiler::plan::ExecutionPlan;

/// End-to-end latency statistics of a streamed utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingReport {
    /// Arrival period of inference frames, in microseconds.
    pub period_us: f64,
    /// Service (compute) time per frame, in microseconds.
    pub service_us: f64,
    /// Whether the queue is stable (service < period).
    pub stable: bool,
    /// Per-frame end-to-end latency (wait + service), microseconds.
    pub latencies_us: Vec<f64>,
    /// Maximum observed latency.
    pub max_latency_us: f64,
    /// Mean observed latency.
    pub mean_latency_us: f64,
}

impl StreamingReport {
    /// Real-time factor of the stream: service time over arrival period
    /// (compute time per unit of audio time). Below 1.0 the queue is
    /// stable; the reciprocal is the number of such streams one device
    /// could sustain in real time.
    pub fn rtf(&self) -> f64 {
        self.service_us / self.period_us
    }
}

/// A multi-stream streaming run: `streams` concurrent utterances served by
/// one device through batched (SpMM) inference rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStreamReport {
    /// Number of concurrent streams in the batch.
    pub streams: usize,
    /// The queueing behaviour of the batched rounds: one "service" is one
    /// batched frame carrying every stream forward together.
    pub batched: StreamingReport,
    /// What serving the same `streams` frames one at a time would cost per
    /// round (microseconds) — `streams ×` the single-stream frame time.
    pub serial_service_us: f64,
    /// Batched service time divided by the stream count: the effective
    /// per-stream cost of one frame.
    pub per_stream_service_us: f64,
    /// `serial_service_us / batched.service_us` — how much weight/index
    /// amortization buys per round.
    pub batch_speedup: f64,
    /// Real-time factor of the batched rounds
    /// ([`StreamingReport::rtf`] of `batched`): one batched service over
    /// one arrival period. Matches `batched.stable` (< 1.0 iff stable).
    pub rtf: f64,
}

/// What an overloaded server does with work it cannot serve in time.
///
/// Mirrors the runtime's `AdmissionConfig` in `rtmobile`: the sim prices the
/// policy analytically so a deployment can pick a shed policy before ever
/// running the real scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Arrivals beyond capacity are rejected at the door; admitted streams
    /// keep their full history (freshest work is sacrificed).
    #[default]
    RejectNew,
    /// The oldest queued streams are dropped to make room; the server always
    /// works on the freshest arrivals (stalest work is sacrificed).
    DropOldest,
}

impl ShedPolicy {
    /// Parses a shed policy name (`reject-new` / `drop-oldest`).
    pub fn parse(s: &str) -> Option<ShedPolicy> {
        match s {
            "reject-new" | "reject" => Some(ShedPolicy::RejectNew),
            "drop-oldest" | "drop" => Some(ShedPolicy::DropOldest),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedPolicy::RejectNew => write!(f, "reject-new"),
            ShedPolicy::DropOldest => write!(f, "drop-oldest"),
        }
    }
}

/// An overload run: `offered` streams per round arrive at a server whose
/// batch capacity is `capacity`, with the excess shed under a [`ShedPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShedReport {
    /// Streams offered per round.
    pub offered: usize,
    /// Maximum lanes the server batches per round.
    pub capacity: usize,
    /// Streams actually served per round (`min(offered, capacity)`).
    pub served: usize,
    /// Streams shed per round (`offered - served`).
    pub shed_per_round: usize,
    /// The policy deciding *which* streams are shed.
    pub policy: ShedPolicy,
    /// Queueing behaviour of the capped (post-shed) batch.
    pub batched: StreamingReport,
    /// What one un-shed round (all `offered` lanes batched together) would
    /// cost, microseconds — the service time shedding avoided.
    pub unshed_service_us: f64,
    /// Whether the un-shed batch would have kept up with the arrival period
    /// (when false, shedding is what keeps the queue stable).
    pub unshed_stable: bool,
}

/// Streams `num_frames` inference frames through one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingSim {
    /// The frame-cost engine.
    pub inner: InferenceSim,
    /// Arrival period of one inference frame in microseconds (the audio
    /// covered per frame: `timesteps × hop`).
    pub hop_us: f64,
}

impl Default for StreamingSim {
    fn default() -> StreamingSim {
        StreamingSim::new()
    }
}

impl StreamingSim {
    /// Streaming simulator at the standard 10 ms feature hop.
    pub fn new() -> StreamingSim {
        StreamingSim {
            inner: InferenceSim::new(),
            hop_us: FRAME_HOP_US,
        }
    }

    /// Simulates `num_frames` arrivals under `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `num_frames == 0` or the plan is invalid.
    pub fn run(
        &self,
        workload: &GruWorkload,
        plan: &ExecutionPlan,
        num_frames: usize,
    ) -> StreamingReport {
        assert!(num_frames > 0, "need at least one frame");
        let frame: FrameReport = self.inner.run_frame(workload, plan);
        self.queue(workload, frame.time_us, num_frames)
    }

    /// Simulates `streams` concurrent utterances whose frames arrive on the
    /// same cadence and are served in batched rounds: each round is one
    /// weight-stationary SpMM pass carrying every stream one frame forward
    /// (priced by [`InferenceSim::run_frame_batched`]). The batch is stable
    /// when the *batched* round time beats the arrival period — which, with
    /// weight and index traffic amortized across lanes, holds at stream
    /// counts where one-at-a-time service (`streams × frame`) would already
    /// have fallen behind.
    ///
    /// # Panics
    ///
    /// Panics if `num_frames == 0`, `streams == 0` or the plan is invalid.
    pub fn run_streams(
        &self,
        workload: &GruWorkload,
        plan: &ExecutionPlan,
        num_frames: usize,
        streams: usize,
    ) -> MultiStreamReport {
        let single = self.inner.run_frame(workload, plan).time_us;
        let batched_service = self
            .inner
            .run_frame_batched(workload, plan, streams)
            .time_us;
        let batched = self.queue(workload, batched_service, num_frames);
        let rtf = batched.rtf();
        MultiStreamReport {
            streams,
            serial_service_us: single * streams as f64,
            per_stream_service_us: batched_service / streams as f64,
            batch_speedup: single * streams as f64 / batched_service,
            batched,
            rtf,
        }
    }

    /// Simulates overload: `offered` streams arrive each round but the
    /// server only batches `capacity` lanes, shedding the rest under
    /// `policy`. The report prices both sides of the trade — the capped
    /// batch that actually runs (and whether its queue is stable) and the
    /// un-shed batch that would have run without admission control (and
    /// whether *it* would have been stable). When `offered <= capacity`
    /// nothing is shed and the capped run equals a plain
    /// [`StreamingSim::run_streams`].
    ///
    /// # Panics
    ///
    /// Panics if `num_frames == 0`, `offered == 0`, `capacity == 0` or the
    /// plan is invalid.
    pub fn run_streams_shed(
        &self,
        workload: &GruWorkload,
        plan: &ExecutionPlan,
        num_frames: usize,
        offered: usize,
        capacity: usize,
        policy: ShedPolicy,
    ) -> ShedReport {
        assert!(offered > 0, "need at least one stream");
        assert!(capacity > 0, "need at least one lane of capacity");
        let served = offered.min(capacity);
        let capped = self.inner.run_frame_batched(workload, plan, served).time_us;
        let unshed = self
            .inner
            .run_frame_batched(workload, plan, offered)
            .time_us;
        let batched = self.queue(workload, capped, num_frames);
        let period = batched.period_us;
        ShedReport {
            offered,
            capacity,
            served,
            shed_per_round: offered - served,
            policy,
            batched,
            unshed_service_us: unshed,
            unshed_stable: unshed < period,
        }
    }

    /// Single-server deterministic queue: arrival k at k·period; service
    /// starts at `max(arrival, previous completion)`.
    fn queue(&self, workload: &GruWorkload, service: f64, num_frames: usize) -> StreamingReport {
        assert!(num_frames > 0, "need at least one frame");
        let period = workload.timesteps_per_frame.max(1) as f64 * self.hop_us;
        let mut latencies = Vec::with_capacity(num_frames);
        let mut prev_done = 0.0f64;
        for k in 0..num_frames {
            let arrival = k as f64 * period;
            let start = arrival.max(prev_done);
            let done = start + service;
            latencies.push(done - arrival);
            prev_done = done;
        }
        let max = latencies.iter().copied().fold(0.0f64, f64::max);
        let mean = latencies.iter().sum::<f64>() / num_frames as f64;
        StreamingReport {
            period_us: period,
            service_us: service,
            stable: service < period,
            latencies_us: latencies,
            max_latency_us: max,
            mean_latency_us: mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_compiler::plan::StorageFormat;

    fn workload(col: f64, row: f64) -> GruWorkload {
        GruWorkload::with_bsp_pattern(40, 1024, 2, col, row, 8, 8, 3)
    }

    #[test]
    fn stable_stream_has_flat_latency() {
        let sim = StreamingSim::new();
        let w = workload(16.0, 2.0);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
        let r = sim.run(&w, &plan, 50);
        assert!(r.stable, "pruned GPU easily keeps up");
        assert!(r.rtf() < 1.0, "stable means RTF below 1");
        assert!((r.rtf() - r.service_us / r.period_us).abs() < 1e-12);
        // Every frame sees exactly the service time: no queueing.
        for &l in &r.latencies_us {
            assert!((l - r.service_us).abs() < 1e-9);
        }
        assert!((r.max_latency_us - r.mean_latency_us).abs() < 1e-9);
    }

    #[test]
    fn overloaded_stream_queue_grows_linearly() {
        // Force overload with a tiny artificial period.
        let mut sim = StreamingSim::new();
        sim.hop_us = 1.0; // 30 us of audio per frame, far below service time
        let w = workload(1.0, 1.0);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Dense).without_optimizations();
        let r = sim.run(&w, &plan, 10);
        assert!(!r.stable);
        // Latency grows monotonically (unbounded queue).
        for pair in r.latencies_us.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        assert!(r.max_latency_us > r.service_us * 5.0);
    }

    #[test]
    fn batched_streams_stay_stable_where_serial_service_would_not() {
        let sim = StreamingSim::new();
        let w = workload(16.0, 2.0);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
        // One stream through run_streams is the plain single-stream run.
        let one = sim.run_streams(&w, &plan, 20, 1);
        assert_eq!(one.batched, sim.run(&w, &plan, 20));
        assert_eq!(one.batch_speedup, 1.0);
        // Find a stream count whose one-at-a-time service would overrun the
        // arrival period but whose batched round still fits.
        let period = one.batched.period_us;
        let single = one.batched.service_us;
        let b = (period / single).ceil() as usize + 1;
        let multi = sim.run_streams(&w, &plan, 20, b);
        assert!(multi.serial_service_us > period, "serial service overruns");
        assert!(multi.batched.stable, "batched rounds keep up at b={b}");
        assert!(multi.rtf < 1.0, "stable batch has RTF below 1");
        assert!((multi.rtf - multi.batched.rtf()).abs() < 1e-12);
        assert!(multi.batch_speedup > 1.0);
        assert!(multi.per_stream_service_us < single);
        // Flat latency in the stable batched regime.
        for &l in &multi.batched.latencies_us {
            assert!((l - multi.batched.service_us).abs() < 1e-9);
        }
    }

    #[test]
    fn overloaded_batch_queue_grows_linearly() {
        // Even with amortization, enough concurrent streams (at a tiny
        // arrival period) overload the device and the batched queue grows.
        let mut sim = StreamingSim::new();
        sim.hop_us = 1.0;
        let w = workload(16.0, 2.0);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
        let r = sim.run_streams(&w, &plan, 10, 8);
        assert!(!r.batched.stable);
        for pair in r.batched.latencies_us.windows(2) {
            assert!(pair[1] > pair[0], "queue must grow");
        }
    }

    #[test]
    fn per_stream_service_falls_with_batch_width() {
        let sim = StreamingSim::new();
        let w = workload(10.0, 1.0);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
        let mut prev = f64::INFINITY;
        for b in [1usize, 2, 4, 8, 16] {
            let r = sim.run_streams(&w, &plan, 5, b);
            assert!(r.per_stream_service_us < prev, "b={b}");
            assert_eq!(r.streams, b);
            prev = r.per_stream_service_us;
        }
    }

    #[test]
    #[should_panic(expected = "need at least one stream")]
    fn zero_streams_rejected_in_streaming() {
        let sim = StreamingSim::new();
        let w = workload(10.0, 1.0);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
        sim.run_streams(&w, &plan, 5, 0);
    }

    #[test]
    fn shedding_restores_stability_under_overload() {
        let sim = StreamingSim::new();
        let w = workload(16.0, 2.0);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
        // Find an offered load whose full batch overruns the period, then
        // cap capacity at the widest stable batch.
        let period = sim.run(&w, &plan, 2).period_us;
        let mut offered = 2;
        while sim.inner.run_frame_batched(&w, &plan, offered).time_us < period {
            offered *= 2;
        }
        let mut capacity = offered;
        while capacity > 1 && sim.inner.run_frame_batched(&w, &plan, capacity).time_us >= period {
            capacity /= 2;
        }
        let r = sim.run_streams_shed(&w, &plan, 20, offered, capacity, ShedPolicy::RejectNew);
        assert!(!r.unshed_stable, "offered load must overrun");
        assert!(r.batched.stable, "capped batch must keep up");
        assert_eq!(r.served, capacity);
        assert_eq!(r.shed_per_round, offered - capacity);
        assert!(r.unshed_service_us > r.batched.service_us);
        // Stable: flat latency after shedding.
        for &l in &r.batched.latencies_us {
            assert!((l - r.batched.service_us).abs() < 1e-9);
        }
    }

    #[test]
    fn no_shedding_below_capacity_matches_plain_run() {
        let sim = StreamingSim::new();
        let w = workload(16.0, 2.0);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
        let r = sim.run_streams_shed(&w, &plan, 10, 4, 8, ShedPolicy::DropOldest);
        assert_eq!(r.shed_per_round, 0);
        assert_eq!(r.served, 4);
        assert_eq!(r.batched, sim.run_streams(&w, &plan, 10, 4).batched);
        assert_eq!(r.policy, ShedPolicy::DropOldest);
    }

    #[test]
    fn shed_policy_parses_and_displays() {
        assert_eq!(ShedPolicy::parse("reject-new"), Some(ShedPolicy::RejectNew));
        assert_eq!(
            ShedPolicy::parse("drop-oldest"),
            Some(ShedPolicy::DropOldest)
        );
        assert_eq!(ShedPolicy::parse("drop"), Some(ShedPolicy::DropOldest));
        assert_eq!(ShedPolicy::parse("nope"), None);
        assert_eq!(ShedPolicy::RejectNew.to_string(), "reject-new");
        assert_eq!(ShedPolicy::DropOldest.to_string(), "drop-oldest");
        assert_eq!(ShedPolicy::default(), ShedPolicy::RejectNew);
    }

    #[test]
    fn period_reflects_timesteps() {
        let sim = StreamingSim::new();
        let w = workload(10.0, 1.0);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
        let r = sim.run(&w, &plan, 3);
        assert_eq!(r.period_us, 30.0 * FRAME_HOP_US);
        assert_eq!(r.latencies_us.len(), 3);
    }

    #[test]
    #[should_panic(expected = "need at least one frame")]
    fn zero_frames_rejected() {
        let sim = StreamingSim::new();
        let w = workload(10.0, 1.0);
        let plan = ExecutionPlan::gpu_default(StorageFormat::Bspc).with_bsp_partition(8, 8);
        sim.run(&w, &plan, 0);
    }
}
