//! Frame-level inference simulation — the Table II / Figure 4 engine.
//!
//! A "frame" follows the paper's accounting: [`GruWorkload`] evaluates
//! `timesteps_per_frame` GRU steps with weight-stationary batching — the
//! weight and index streams are read from DRAM once per frame, while
//! input gathers, output stores and arithmetic scale with the timestep
//! count. Each fused matrix is one kernel launch per frame.
//!
//! [`InferenceSim::run_frame`] prices every kernel through the device model
//! and aggregates time, GOP/s and ESE-normalized energy efficiency — one
//! call per (compression rate × target) cell of Table II.

use crate::device::{CpuModel, GpuModel, KernelCost};
use crate::ese::EseReference;
use crate::workload::GruWorkload;
use rtm_compiler::plan::{ExecutionPlan, StorageFormat, Target};
use rtm_compiler::profile::KernelProfile;

/// Aggregated cost of one inference frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameReport {
    /// Latency in microseconds.
    pub time_us: f64,
    /// Giga-operations executed per frame.
    pub gop: f64,
    /// Effective throughput in GOP/s.
    pub gop_per_s: f64,
    /// Energy per frame in microjoules.
    pub energy_uj: f64,
    /// Energy efficiency normalized by the ESE FPGA reference
    /// (frames per unit energy relative to ESE's).
    pub efficiency_vs_ese: f64,
    /// Kernel launches per frame.
    pub kernels: usize,
    /// Fraction of kernels that were memory-bound.
    pub memory_bound_fraction: f64,
}

/// The frame-level simulator: device models plus the ESE reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceSim {
    /// GPU model (fp16 path).
    pub gpu: GpuModel,
    /// CPU model (fp32 path).
    pub cpu: CpuModel,
    /// Energy normalization reference.
    pub ese: EseReference,
}

impl Default for InferenceSim {
    fn default() -> InferenceSim {
        InferenceSim::new()
    }
}

/// Per-kernel cost breakdown of one frame — the introspection view behind
/// [`FrameReport`], used by the trace ablation and for debugging the cost
/// model itself.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTrace {
    /// One entry per kernel launch: `(label, cost)` in execution order.
    pub kernels: Vec<(String, KernelCost)>,
}

impl FrameTrace {
    /// Renders an aligned text table of the breakdown.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "kernel", "compute us", "memory us", "overhead us", "total us", "KiB moved"
        );
        for (label, c) in &self.kernels {
            let _ = writeln!(
                s,
                "{:<14} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12.1}",
                label,
                c.compute_us,
                c.memory_us,
                c.overhead_us,
                c.total_us(),
                c.bytes as f64 / 1024.0
            );
        }
        s
    }
}

impl InferenceSim {
    /// Simulator with the Snapdragon-855-class models and the paper's ESE
    /// constants.
    pub fn new() -> InferenceSim {
        InferenceSim {
            gpu: GpuModel::adreno640(),
            cpu: CpuModel::kryo485(),
            ese: EseReference::paper(),
        }
    }

    /// Like [`InferenceSim::run_frame`] but also returns the per-kernel
    /// breakdown.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid.
    pub fn run_frame_traced(
        &self,
        workload: &GruWorkload,
        plan: &ExecutionPlan,
    ) -> (FrameReport, FrameTrace) {
        let report = self.run_frame(workload, plan);
        let t = workload.timesteps_per_frame.max(1);
        let mut kernels = Vec::with_capacity(workload.matrices.len());
        for (i, m) in workload.matrices.iter().enumerate() {
            let mut profile = KernelProfile::analyze(m, plan);
            scale_timesteps(&mut profile, t, plan.format);
            let cost = match plan.target {
                Target::MobileGpu => self.gpu.kernel_cost(&profile, plan),
                Target::MobileCpu => self.cpu.kernel_cost(&profile, plan),
            };
            let label = format!("layer{}.{}", i / 2, if i % 2 == 0 { "Wx" } else { "Uh" });
            kernels.push((label, cost));
        }
        (report, FrameTrace { kernels })
    }

    /// Prices one inference frame of `workload` under `plan`.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid.
    pub fn run_frame(&self, workload: &GruWorkload, plan: &ExecutionPlan) -> FrameReport {
        self.run_frame_batched(workload, plan, 1)
    }

    /// Prices one *batched* inference frame: `streams` independent
    /// utterances advance one frame each through a single weight-stationary
    /// pass (the SpMM runtime). Arithmetic, input gathers and output stores
    /// scale with the stream count; weight values, index streams and kernel
    /// launches are paid once per batch — the same amortization
    /// [`scale_timesteps`] applies across timesteps, applied across lanes.
    ///
    /// `streams == 1` is exactly [`InferenceSim::run_frame`]. The report
    /// covers the whole batch: divide `time_us` by `streams` for the
    /// per-stream cost.
    ///
    /// # Panics
    ///
    /// Panics if `streams == 0` or the plan is invalid.
    pub fn run_frame_batched(
        &self,
        workload: &GruWorkload,
        plan: &ExecutionPlan,
        streams: usize,
    ) -> FrameReport {
        assert!(streams > 0, "need at least one stream");
        let t = workload.timesteps_per_frame.max(1);
        let mut costs = Vec::with_capacity(workload.matrices.len());
        for m in &workload.matrices {
            let mut profile = KernelProfile::analyze(m, plan);
            scale_timesteps(&mut profile, t, plan.format);
            scale_streams(&mut profile, streams);
            let cost = match plan.target {
                Target::MobileGpu => self.gpu.kernel_cost(&profile, plan),
                Target::MobileCpu => self.cpu.kernel_cost(&profile, plan),
            };
            costs.push(cost);
        }

        let time_us = KernelCost::sequential_total_us(&costs);
        let flops: usize = costs.iter().map(|c| c.flops).sum();
        let gop = flops as f64 / 1e9;
        let energy_uj = match plan.target {
            Target::MobileGpu => self.gpu.energy_uj(time_us),
            Target::MobileCpu => self.cpu.energy_uj(time_us),
        };
        let memory_bound = costs.iter().filter(|c| c.memory_bound()).count();

        FrameReport {
            time_us,
            gop,
            gop_per_s: if time_us > 0.0 {
                gop * 1e6 / time_us
            } else {
                0.0
            },
            energy_uj,
            efficiency_vs_ese: self.ese.normalized_efficiency(energy_uj.max(1e-12)),
            kernels: costs.len(),
            memory_bound_fraction: memory_bound as f64 / costs.len().max(1) as f64,
        }
    }
}

/// Applies weight-stationary timestep batching to a per-step profile:
/// arithmetic, input gathers and output stores repeat every timestep, while
/// the weight values and index *bytes* stream from DRAM once per frame.
/// Index *decodes* repeat per step for CSR (each step re-walks the
/// per-nonzero index stream) but are amortized for BSPC, whose per-stripe
/// shared patterns stay resident.
///
/// The fused GRU kernel's logical output is `3H` gate pre-activations, but
/// those stay in registers/shared memory: the input-side kernel feeds the
/// recurrent kernel on-chip and only the recurrent kernel writes the
/// `H`-wide hidden vector to DRAM each step. Per layer that is `H` stores
/// across two kernels of `3H` logical rows each, i.e. rows/6 per kernel.
fn scale_timesteps(profile: &mut KernelProfile, t: usize, format: StorageFormat) {
    profile.flops *= t;
    profile.input_loads *= t;
    profile.output_stores = (profile.output_stores / 6).max(1) * t;
    if format == StorageFormat::Csr {
        profile.index_decodes *= t;
    }
}

/// Applies weight-stationary *stream* batching to a frame profile: with `b`
/// utterances sharing each SpMM pass, arithmetic, input gathers and output
/// stores repeat per lane while the weight and index streams (and the
/// launch itself) are read once per batch — each decoded index row is
/// applied to all `b` input columns.
fn scale_streams(profile: &mut KernelProfile, b: usize) {
    profile.flops *= b;
    profile.input_loads *= b;
    profile.output_stores *= b;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload_at(rate_col: f64, rate_row: f64) -> GruWorkload {
        GruWorkload::with_bsp_pattern(40, 1024, 2, rate_col, rate_row, 8, 8, 11)
    }

    #[test]
    fn dense_frame_matches_paper_scale() {
        let sim = InferenceSim::new();
        let w = GruWorkload::paper_dense(1);
        let plan = rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Dense)
            .without_optimizations();
        let r = sim.run_frame(&w, &plan);
        assert!((r.gop - 0.58).abs() < 0.01, "GOP {}", r.gop);
        // Same order of magnitude as the paper's 3590 us (shape match, not
        // absolute): between 1 ms and 10 ms.
        assert!(
            r.time_us > 1000.0 && r.time_us < 10_000.0,
            "time {}",
            r.time_us
        );
        assert_eq!(r.kernels, 4);
        assert!(r.memory_bound_fraction > 0.9, "dense GEMV is memory-bound");
    }

    #[test]
    fn time_falls_monotonically_with_compression() {
        let sim = InferenceSim::new();
        let rates = [
            (1.0, 1.0),
            (10.0, 1.0),
            (16.0, 2.0),
            (20.0, 8.0),
            (20.0, 16.0),
        ];
        let mut prev = f64::INFINITY;
        for &(c, r) in &rates {
            let w = workload_at(c, r);
            let plan = rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Bspc);
            let rep = sim.run_frame(&w, &plan);
            assert!(
                rep.time_us < prev,
                "time must fall with compression: {} at ({c},{r})",
                rep.time_us
            );
            prev = rep.time_us;
        }
    }

    #[test]
    fn gop_per_s_falls_with_compression() {
        // Table II: GOP/s decreases as the workload becomes memory/overhead
        // bound at high compression.
        let sim = InferenceSim::new();
        let dense = sim.run_frame(
            &GruWorkload::paper_dense(3),
            &rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Dense)
                .without_optimizations(),
        );
        let pruned = sim.run_frame(
            &workload_at(20.0, 16.0),
            &rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Bspc),
        );
        assert!(
            pruned.gop_per_s < dense.gop_per_s,
            "pruned {} vs dense {}",
            pruned.gop_per_s,
            dense.gop_per_s
        );
    }

    #[test]
    fn efficiency_rises_with_compression() {
        let sim = InferenceSim::new();
        let dense = sim.run_frame(
            &GruWorkload::paper_dense(3),
            &rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Dense)
                .without_optimizations(),
        );
        let pruned = sim.run_frame(
            &workload_at(20.0, 16.0),
            &rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Bspc),
        );
        assert!(pruned.efficiency_vs_ese > dense.efficiency_vs_ese * 10.0);
        // Headline shape: ~40x over ESE at ~245x compression (±2x band).
        assert!(
            pruned.efficiency_vs_ese > 15.0 && pruned.efficiency_vs_ese < 90.0,
            "efficiency {}",
            pruned.efficiency_vs_ese
        );
    }

    #[test]
    fn gpu_reaches_ese_latency_at_high_compression() {
        // §V-B: "when the compression rate is higher than 245x, RTMobile can
        // outperform in energy efficiency by about 40x compared with ESE
        // while maintaining the same inference time".
        let sim = InferenceSim::new();
        let rep = sim.run_frame(
            &workload_at(20.0, 16.0),
            &rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Bspc),
        );
        let ese = EseReference::paper().time_per_frame_us;
        assert!(
            rep.time_us < ese * 2.0 && rep.time_us > ese * 0.4,
            "GPU at 245x ({} us) should be near ESE's {} us",
            rep.time_us,
            ese
        );
    }

    #[test]
    fn cpu_slower_but_improving() {
        let sim = InferenceSim::new();
        let gpu_plan = rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Bspc);
        let cpu_plan = rtm_compiler::plan::ExecutionPlan::cpu_default(StorageFormat::Bspc);
        for &(c, r) in &[(1.0f64, 1.0f64), (16.0, 2.0), (20.0, 16.0)] {
            let w = workload_at(c, r);
            let g = sim.run_frame(&w, &gpu_plan);
            let cpu = sim.run_frame(&w, &cpu_plan);
            assert!(
                cpu.time_us > g.time_us,
                "CPU must be slower at ({c},{r}): {} vs {}",
                cpu.time_us,
                g.time_us
            );
        }
        // CPU efficiency still crosses ESE's around 10x, as in Table II.
        let w = workload_at(10.0, 1.0);
        let cpu = sim.run_frame(&w, &cpu_plan);
        assert!(
            cpu.efficiency_vs_ese > 0.8,
            "cpu eff {}",
            cpu.efficiency_vs_ese
        );
    }

    #[test]
    fn trace_breakdown_sums_to_frame_total() {
        let sim = InferenceSim::new();
        let w = workload_at(16.0, 2.0);
        let plan = rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Bspc)
            .with_bsp_partition(8, 8);
        let (report, trace) = sim.run_frame_traced(&w, &plan);
        assert_eq!(trace.kernels.len(), report.kernels);
        let sum: f64 = trace.kernels.iter().map(|(_, c)| c.total_us()).sum();
        assert!(
            (sum - report.time_us).abs() < 1e-6,
            "{sum} vs {}",
            report.time_us
        );
        // Labels follow the layer/kernel naming.
        assert_eq!(trace.kernels[0].0, "layer0.Wx");
        assert_eq!(trace.kernels[3].0, "layer1.Uh");
        // Rendering carries the totals.
        let text = trace.render();
        assert!(text.contains("layer1.Uh"));
        assert!(text.contains("total us"));
    }

    #[test]
    fn stream_batching_amortizes_weight_traffic() {
        let sim = InferenceSim::new();
        let w = workload_at(10.0, 1.0);
        for plan in [
            rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Bspc)
                .with_bsp_partition(8, 8),
            rtm_compiler::plan::ExecutionPlan::cpu_default(StorageFormat::Bspc)
                .with_bsp_partition(8, 8),
        ] {
            let single = sim.run_frame(&w, &plan);
            // streams == 1 is exactly the unbatched frame.
            assert_eq!(sim.run_frame_batched(&w, &plan, 1), single);
            let mut prev_per_stream = f64::INFINITY;
            for b in [2usize, 4, 8, 16] {
                let batched = sim.run_frame_batched(&w, &plan, b);
                // Cheaper than b serial frames (weights/index amortized)...
                assert!(
                    batched.time_us < single.time_us * b as f64,
                    "b={b}: {} vs {}",
                    batched.time_us,
                    single.time_us * b as f64
                );
                // ...but not cheaper than the arithmetic lower bound.
                assert!(batched.time_us > single.time_us);
                // Per-stream cost falls monotonically with batch width.
                let per_stream = batched.time_us / b as f64;
                assert!(per_stream < prev_per_stream, "b={b}");
                prev_per_stream = per_stream;
                // The batch does b times the work.
                assert!((batched.gop - single.gop * b as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "need at least one stream")]
    fn zero_streams_rejected() {
        let sim = InferenceSim::new();
        let w = workload_at(10.0, 1.0);
        let plan = rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Bspc);
        sim.run_frame_batched(&w, &plan, 0);
    }

    #[test]
    fn speedup_saturates_at_extreme_compression() {
        // Figure 4: the jump from 245x to 301x barely moves the time.
        let sim = InferenceSim::new();
        let plan = rtm_compiler::plan::ExecutionPlan::gpu_default(StorageFormat::Bspc);
        let a = sim.run_frame(&workload_at(20.0, 16.0), &plan);
        let b = sim.run_frame(&workload_at(20.0, 20.0), &plan);
        let gain = a.time_us / b.time_us;
        assert!(
            gain < 1.25,
            "speedup must saturate: 245x->301x gained {gain}"
        );
    }
}
