//! Software IEEE 754 binary16 ("half precision").
//!
//! Table II of the paper notes "Our GPU implementation uses 16-bit floating
//! point". The mobile-GPU inference path of this reproduction converts
//! weights and activations through [`F16`] so both the *numerics* (rounding
//! to 11-bit significands) and the *bandwidth halving* that the simulator's
//! memory model charges for are faithful to that setting.
//!
//! The conversion implements round-to-nearest-even, gradual underflow to
//! subnormals, and saturating overflow to ±∞, matching hardware `f32`→`f16`
//! conversion instructions.

use std::fmt;

/// IEEE 754 binary16 value stored as its raw bit pattern.
///
/// # Example
///
/// ```
/// use rtm_tensor::F16;
///
/// let h = F16::from_f32(1.5);
/// assert_eq!(h.to_f32(), 1.5);
/// // 2^-20 is subnormal in f16 but still representable
/// assert_eq!(F16::from_f32(2.0_f32.powi(-20)).to_f32(), 2.0_f32.powi(-20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// The largest finite f16, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// One canonical quiet NaN.
    pub const NAN: F16 = F16(0x7E00);

    /// Constructs from a raw bit pattern.
    pub fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN.
            return if mant == 0 {
                F16(sign | 0x7C00)
            } else {
                // Preserve a NaN payload bit so NaN stays NaN.
                F16(sign | 0x7C00 | 0x0200 | ((mant >> 13) as u16 & 0x03FF))
            };
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow -> infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. 10-bit mantissa from 23-bit with RNE.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let shifted = mant >> 13;
            let round_bits = mant & 0x1FFF;
            let mut out = sign | half_exp | (shifted as u16);
            // round-to-nearest-even on the dropped 13 bits
            if round_bits > 0x1000 || (round_bits == 0x1000 && (shifted & 1) == 1) {
                out = out.wrapping_add(1); // may carry into exponent; that is correct
            }
            return F16(out);
        }
        if unbiased >= -24 {
            // Subnormal range: implicit leading 1 becomes explicit.
            let full_mant = mant | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let shifted = full_mant >> shift;
            let round_mask = (1u32 << shift) - 1;
            let round_bits = full_mant & round_mask;
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | (shifted as u16);
            if round_bits > halfway || (round_bits == halfway && (shifted & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Converts back to `f32` (exact; every f16 is representable in f32).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;

        let bits = if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // Subnormal: normalize. After shifting the leading 1 up to
                // bit 10, the unbiased exponent is -14 - shifts.
                let mut e = 0i32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                let f32_exp = ((e + 1 - 15 + 127) as u32) << 23;
                sign | f32_exp | (m << 13)
            }
        } else if exp == 0x1F {
            if mant == 0 {
                sign | 0x7F80_0000 // infinity
            } else {
                sign | 0x7FC0_0000 | (mant << 13) // NaN
            }
        } else {
            let f32_exp = (exp + 127 - 15) << 23;
            sign | f32_exp | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// Returns `true` for either NaN encoding.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` for ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> F16 {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

/// Rounds an `f32` through f16 precision, i.e. `F16::from_f32(x).to_f32()`.
///
/// Used by the GPU inference path to model a 16-bit datapath while keeping
/// buffers in `f32` for convenience.
pub fn quantize_f16(x: f32) -> f32 {
    F16::from_f32(x).to_f32()
}

/// Quantizes every element of a slice through f16 precision in place.
pub fn quantize_f16_slice(xs: &mut [f32]) {
    for x in xs {
        *x = quantize_f16(*x);
    }
}

/// Encodes a slice of `f32` values as raw f16 bit patterns.
///
/// This is the storage direction of the fp16 weight path: values round
/// through binary16 once here; [`f16_bits_to_f32`] restores them exactly.
pub fn f32_to_f16_bits(xs: &[f32]) -> Vec<u16> {
    xs.iter().map(|&v| F16::from_f32(v).to_bits()).collect()
}

/// Decodes raw f16 bit patterns into `dst` (resized to `src.len()`).
///
/// The conversion is exact — every f16 is representable in f32 — so a
/// kernel that decodes f16 storage and runs the f32 arithmetic produces
/// bit-identical results to the same f32 kernel on pre-rounded values.
///
/// On x86-64 hosts with F16C this uses the hardware `vcvtph2ps` widening
/// (8 elements per step); it computes the same IEEE-defined exact map as
/// the software path — including quieted-NaN payloads — so the choice is
/// invisible to every bit-exactness contract. The decode is the inner-loop
/// cost of the f16 weight path, which is why it gets the hardware
/// treatment even though the policy layer treats it as "scalar".
pub fn f16_bits_to_f32(src: &[u16], dst: &mut Vec<f32>) {
    dst.clear();
    dst.reserve(src.len());
    #[cfg(target_arch = "x86_64")]
    {
        if f16c_available() {
            // Safety: the feature check gates the target_feature fn; dst
            // was reserved to src.len() above.
            unsafe { x86_decode::convert_into(src, dst) };
            return;
        }
    }
    dst.extend(src.iter().map(|&b| F16::from_bits(b).to_f32()));
}

/// Whether the hardware f16 decode path is compiled in and available.
#[cfg(target_arch = "x86_64")]
fn f16c_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let yes = std::arch::is_x86_feature_detected!("f16c");
            STATE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
        1 => false,
        _ => true,
    }
}

#[cfg(target_arch = "x86_64")]
mod x86_decode {
    use std::arch::x86_64::*;

    /// F16C bulk decode: appends `src.len()` converted values to `dst`
    /// (capacity already reserved by the caller).
    #[target_feature(enable = "f16c")]
    pub unsafe fn convert_into(src: &[u16], dst: &mut Vec<f32>) {
        let n = src.len();
        let base = dst.len();
        let out = dst.as_mut_ptr().add(base);
        let mut k = 0usize;
        while k + 8 <= n {
            let h = _mm_loadu_si128(src.as_ptr().add(k) as *const __m128i);
            _mm256_storeu_ps(out.add(k), _mm256_cvtph_ps(h));
            k += 8;
        }
        while k < n {
            *out.add(k) = super::F16::from_bits(*src.get_unchecked(k)).to_f32();
            k += 1;
        }
        dst.set_len(base + n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let v = i as f32;
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn powers_of_two_roundtrip() {
        for e in -24..=15 {
            let v = 2.0f32.powi(e);
            assert_eq!(F16::from_f32(v).to_f32(), v, "2^{e}");
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(70000.0).is_infinite());
        assert!(F16::from_f32(-70000.0).is_infinite());
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(F16::from_f32(1e-30).to_f32(), 0.0);
        // signed zero preserved
        assert_eq!(F16::from_f32(-1e-30).to_bits(), 0x8000);
    }

    #[test]
    fn subnormals_representable() {
        // Smallest positive subnormal is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_bits(), 1);
        assert_eq!(F16::from_bits(1).to_f32(), tiny);
    }

    #[test]
    fn nan_and_infinity_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::INFINITY).is_infinite());
        assert!(F16::from_f32(f32::NEG_INFINITY).is_infinite());
        assert!(F16::NAN.to_f32().is_nan());
        assert_eq!(F16::INFINITY.to_f32(), f32::INFINITY);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16 (1 + 2^-10);
        // RNE picks the even mantissa, i.e. 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn rounding_carry_into_exponent() {
        // The largest f16 mantissa rounding up must carry into the exponent:
        // nextafter(2.0, 0) in f16 is 2 - 2^-10; a value just above
        // 2 - 2^-11 rounds to 2.0.
        let v = 2.0 - 2.0f32.powi(-11) + 1e-6;
        assert_eq!(F16::from_f32(v).to_f32(), 2.0);
    }

    #[test]
    fn quantize_helpers() {
        let mut xs = vec![1.0 / 3.0, 0.1];
        quantize_f16_slice(&mut xs);
        // Quantized values differ from f32 originals but are close.
        assert!((xs[0] - 1.0 / 3.0).abs() < 1e-3);
        assert!((xs[1] - 0.1).abs() < 1e-3);
        assert_eq!(
            quantize_f16(xs[0]),
            xs[0],
            "already quantized is a fixpoint"
        );
    }

    #[test]
    fn relative_error_bounded_for_normals() {
        // Machine epsilon for f16 is 2^-10; RNE halves it.
        let mut x = 1.0f32;
        while x < 1000.0 {
            let q = quantize_f16(x * 1.000_3);
            let rel = ((q - x * 1.000_3) / (x * 1.000_3)).abs();
            assert!(rel <= 2.0f32.powi(-11) + 1e-7, "x={x} rel={rel}");
            x *= 1.7;
        }
    }

    #[test]
    fn bulk_decode_matches_software_for_every_pattern_class() {
        // Normals, subnormals, zeros, infinities and NaN payloads, at
        // lengths that hit the 8-wide hardware step and its scalar tail.
        let patterns: Vec<u16> = vec![
            0x0000, 0x8000, 0x0001, 0x8001, 0x03FF, 0x0400, 0x3C00, 0xBC00, 0x7BFF, 0xFBFF, 0x7C00,
            0xFC00, 0x7C01, 0x7E00, 0xFE55, 0x1234, 0xABCD, 0x5555,
        ];
        for len in [0usize, 1, 7, 8, 9, 16, 18] {
            let src: Vec<u16> = (0..len).map(|i| patterns[i % patterns.len()]).collect();
            let mut dst = Vec::new();
            f16_bits_to_f32(&src, &mut dst);
            assert_eq!(dst.len(), len);
            for (i, (&bits, &got)) in src.iter().zip(&dst).enumerate() {
                let want = F16::from_bits(bits).to_f32();
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "len {len} idx {i} pattern {bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(format!("{}", F16::from_f32(1.5)), "1.5");
    }

    #[test]
    fn conversion_traits() {
        let h: F16 = 2.0f32.into();
        let back: f32 = h.into();
        assert_eq!(back, 2.0);
    }
}
