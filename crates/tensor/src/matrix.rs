//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is the workhorse container of the whole reproduction: GRU weight
//! matrices, pruning masks (as 0/1 matrices), gradients and intermediate
//! activations are all `Matrix` values. The representation is a flat
//! `Vec<f32>` in row-major order, which keeps rows contiguous — the layout the
//! compiler crate's row-reordering and redundant-load analyses assume.

use std::error::Error;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// Error returned when two shapes that must agree do not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable operation name, e.g. `"matmul"`.
    pub op: &'static str,
    /// Left-hand shape involved in the mismatch.
    pub lhs: (usize, usize),
    /// Right-hand shape involved in the mismatch.
    pub rhs: (usize, usize),
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: {}x{} vs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl Error for ShapeError {}

/// A dense, row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use rtm_tensor::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(0, 1)] = 5.0;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(0, 1)], 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let max_cols = 8.min(self.cols);
            write!(f, "  [")?;
            for c in 0..max_cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(r, c)])?;
            }
            if self.cols > max_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// Creates a `rows`×`cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows`×`cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, ShapeError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(ShapeError {
                    op: "from_rows",
                    lhs: (r, c),
                    rhs: (r, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds for {} rows",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds for {} rows",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "col {} out of bounds for {} cols",
            c,
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Checked element access.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Iterates over `(row, col, value)` triples in row-major order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }

    /// Returns the transpose.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise combination of two equally-shaped matrices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn zip_map(
        &self,
        other: &Matrix,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError {
                op: "zip_map",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// `self += alpha * other`, the BLAS `axpy` shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError {
                op: "axpy",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (v, &o) in self.data.iter_mut().zip(&other.data) {
            *v += alpha * o;
        }
        Ok(())
    }

    /// Frobenius norm, `sqrt(sum of squares)`.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Number of nonzero elements (exact zero comparison; pruning writes
    /// literal `0.0`).
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Fraction of elements that are exactly zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.count_nonzero() as f64 / self.data.len() as f64
    }

    /// Extracts the sub-matrix `rows_range × cols_range`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the matrix bounds.
    pub fn submatrix(
        &self,
        row_start: usize,
        row_end: usize,
        col_start: usize,
        col_end: usize,
    ) -> Matrix {
        assert!(
            row_start <= row_end && row_end <= self.rows,
            "row range out of bounds"
        );
        assert!(
            col_start <= col_end && col_end <= self.cols,
            "col range out of bounds"
        );
        Matrix::from_fn(row_end - row_start, col_end - col_start, |r, c| {
            self[(row_start + r, col_start + c)]
        })
    }

    /// Overwrites the block starting at `(row_start, col_start)` with `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_submatrix(&mut self, row_start: usize, col_start: usize, block: &Matrix) {
        assert!(
            row_start + block.rows <= self.rows,
            "block rows exceed matrix"
        );
        assert!(
            col_start + block.cols <= self.cols,
            "block cols exceed matrix"
        );
        for r in 0..block.rows {
            for c in 0..block.cols {
                self[(row_start + r, col_start + c)] = block[(r, c)];
            }
        }
    }

    /// Vertical concatenation `[self; other]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.cols {
            return Err(ShapeError {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Horizontal concatenation `[self, other]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows != other.rows {
            return Err(ShapeError {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Returns a copy with the rows permuted so output row `i` is input row
    /// `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.rows()` or any index is out of bounds.
    pub fn permute_rows(&self, perm: &[usize]) -> Matrix {
        assert_eq!(
            perm.len(),
            self.rows,
            "permutation length must equal row count"
        );
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (dst, &src) in perm.iter().enumerate() {
            assert!(src < self.rows, "permutation index out of bounds");
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Index of the maximum element of row `r` (ties break to the first).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()` or the matrix has zero columns.
    pub fn row_argmax(&self, r: usize) -> usize {
        let row = self.row(r);
        assert!(!row.is_empty(), "argmax of empty row");
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics when shapes differ; use [`Matrix::zip_map`] for a fallible path.
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
            .expect("add: shape mismatch")
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics when shapes differ; use [`Matrix::zip_map`] for a fallible path.
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
            .expect("sub: shape mismatch")
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs).expect("add_assign: shape mismatch");
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.axpy(-1.0, rhs).expect("sub_assign: shape mismatch");
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.map(|v| -v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(err.op, "from_vec");
    }

    #[test]
    fn from_rows_ragged_rejected() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert_eq!(err.op, "from_rows");
    }

    #[test]
    fn indexing_row_major() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn get_bounds() {
        let m = Matrix::zeros(2, 2);
        assert_eq!(m.get(1, 1), Some(0.0));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 2), None);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::filled(2, 2, 2.0);
        let b = Matrix::filled(2, 2, 3.0);
        assert_eq!(a.map(|v| v * v).sum(), 16.0);
        assert_eq!(a.hadamard(&b).unwrap().sum(), 24.0);
        assert!(a.zip_map(&Matrix::zeros(2, 3), |x, _| x).is_err());
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!((&a + &b).sum(), 12.0);
        assert_eq!((&b - &a).sum(), 4.0);
        assert_eq!((&a * 3.0).sum(), 12.0);
        assert_eq!((-&a).sum(), -4.0);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.sum(), 12.0);
        c -= &b;
        assert_eq!(c, a);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 10.0);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.sum(), 24.0);
    }

    #[test]
    fn norms_and_sparsity() {
        let m = Matrix::from_vec(1, 4, vec![3.0, 0.0, 4.0, 0.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.count_nonzero(), 2);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn submatrix_and_set() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], m[(1, 2)]);
        let mut n = Matrix::zeros(4, 4);
        n.set_submatrix(1, 2, &s);
        assert_eq!(n[(1, 2)], m[(1, 2)]);
        assert_eq!(n[(2, 3)], m[(2, 3)]);
        assert_eq!(n[(0, 0)], 0.0);
    }

    #[test]
    fn stack_operations() {
        let a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(1, 2, 2.0);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v[(1, 0)], 2.0);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h[(0, 3)], 2.0);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
        assert!(a.hstack(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn permute_rows_reorders() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]).unwrap();
        let p = m.permute_rows(&[2, 0, 1]);
        assert_eq!(p.col(0), vec![2.0, 0.0, 1.0]);
    }

    #[test]
    fn row_argmax_first_tie() {
        let m = Matrix::from_rows(&[&[1.0, 3.0, 3.0, 0.0]]).unwrap();
        assert_eq!(m.row_argmax(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(1, 1);
        let _ = m[(1, 0)];
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::zeros(1, 1));
        assert!(s.contains("Matrix 1x1"));
    }

    #[test]
    fn iter_entries_row_major() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let entries: Vec<_> = m.iter_entries().collect();
        assert_eq!(entries[0], (0, 0, 1.0));
        assert_eq!(entries[1], (0, 1, 2.0));
        assert_eq!(entries[2], (1, 0, 3.0));
        assert_eq!(entries[3], (1, 1, 4.0));
    }
}
