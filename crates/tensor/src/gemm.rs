//! Dense matrix-multiply kernels.
//!
//! Three kernels are provided:
//!
//! * [`matmul`] — naive triple loop in `ikj` order (row-major friendly);
//! * [`matmul_blocked`] — cache-blocked variant used by the dense CPU
//!   baseline in the benchmarks;
//! * [`gemv`] / [`gemv_transposed`] — matrix-vector products, the inner
//!   operation of every RNN time step.
//!
//! The simulator crate does not *run* these for its timing model (it models
//! cycles analytically), but the accuracy experiments do, so correctness here
//! is load-bearing for Table I.

use crate::matrix::{Matrix, ShapeError};

/// Default cache-block edge for [`matmul_blocked`]; 64×64 f32 tiles fit
/// comfortably in a typical mobile L1 (16 KiB per tile operand).
pub const DEFAULT_BLOCK: usize = 64;

/// `C = A * B` with the naive `ikj` loop order.
///
/// # Errors
///
/// Returns [`ShapeError`] when `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use rtm_tensor::{Matrix, gemm};
///
/// # fn main() -> Result<(), rtm_tensor::ShapeError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0]])?;
/// let b = Matrix::from_rows(&[&[3.0], &[4.0]])?;
/// let c = gemm::matmul(&a, &b)?;
/// assert_eq!(c[(0, 0)], 11.0);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for (p, &aip) in a_row.iter().enumerate().take(k) {
            if aip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            let c_row = c.row_mut(i);
            for (cij, &bpj) in c_row.iter_mut().zip(b_row).take(n) {
                *cij += aip * bpj;
            }
        }
    }
    Ok(c)
}

/// `C = A * B` with square cache blocking of edge `block`.
///
/// # Errors
///
/// Returns [`ShapeError`] when `a.cols() != b.rows()`.
///
/// # Panics
///
/// Panics if `block == 0`.
pub fn matmul_blocked(a: &Matrix, b: &Matrix, block: usize) -> Result<Matrix, ShapeError> {
    assert!(block > 0, "block size must be positive");
    if a.cols() != b.rows() {
        return Err(ShapeError {
            op: "matmul_blocked",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for ii in (0..m).step_by(block) {
        let i_end = (ii + block).min(m);
        for pp in (0..k).step_by(block) {
            let p_end = (pp + block).min(k);
            for jj in (0..n).step_by(block) {
                let j_end = (jj + block).min(n);
                for i in ii..i_end {
                    let a_row = a.row(i);
                    for (p, &aip) in a_row.iter().enumerate().take(p_end).skip(pp) {
                        if aip == 0.0 {
                            continue;
                        }
                        let b_row = b.row(p);
                        let c_row = c.row_mut(i);
                        for j in jj..j_end {
                            c_row[j] += aip * b_row[j];
                        }
                    }
                }
            }
        }
    }
    Ok(c)
}

/// `y = A * x` (matrix-vector product).
///
/// # Errors
///
/// Returns [`ShapeError`] when `a.cols() != x.len()`.
pub fn gemv(a: &Matrix, x: &[f32]) -> Result<Vec<f32>, ShapeError> {
    let mut y = vec![0.0f32; a.rows()];
    gemv_into(a, x, &mut y)?;
    Ok(y)
}

/// `y = A * x` into a caller-provided buffer — the allocation-free
/// steady-state form. Each row is one [`simd`](crate::simd) dot product;
/// the kernel variant is hoisted out of the row loop so every row of a
/// call runs the same realization.
///
/// # Errors
///
/// Returns [`ShapeError`] when `a.cols() != x.len()` or
/// `y.len() != a.rows()`.
pub fn gemv_into(a: &Matrix, x: &[f32], y: &mut [f32]) -> Result<(), ShapeError> {
    if a.cols() != x.len() || y.len() != a.rows() {
        return Err(ShapeError {
            op: "gemv",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    rtm_trace::count_many(&[
        (rtm_trace::key::GEMV_DENSE, 1),
        (rtm_trace::key::KERNEL_ROWS, a.rows() as u64),
        (rtm_trace::key::KERNEL_NNZ, (a.rows() * a.cols()) as u64),
    ]);
    let v = crate::simd::active_variant();
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = crate::simd::dot_variant(v, a.row(i), x);
    }
    Ok(())
}

/// `Y = A * X` for `b` interleaved input lanes — the dense fallback of the
/// batched (SpMM) inference path. `xs` holds element `c` of lane `j` at
/// `xs[c·b + j]` and `ys` receives row `r` of lane `j` at `ys[r·b + j]`,
/// so one walk of each weight row feeds all `b` streams.
///
/// Lane contract: lane `j` of the result is **bit-identical** to
/// [`gemv_into`] of lane `j`'s column under the same ambient policy (see
/// [`simd::dot_batch_variant`](crate::simd::dot_batch_variant)).
///
/// # Errors
///
/// Returns [`ShapeError`] when `xs.len() != a.cols() * b` or
/// `ys.len() != a.rows() * b`.
pub fn gemv_batch_into(a: &Matrix, xs: &[f32], b: usize, ys: &mut [f32]) -> Result<(), ShapeError> {
    if xs.len() != a.cols() * b || ys.len() != a.rows() * b {
        return Err(ShapeError {
            op: "gemv_batch",
            lhs: a.shape(),
            rhs: (xs.len(), b),
        });
    }
    if b == 0 {
        return Ok(());
    }
    rtm_trace::count_many(&[
        (rtm_trace::key::GEMM_DENSE, 1),
        (rtm_trace::key::KERNEL_ROWS, a.rows() as u64),
        (rtm_trace::key::KERNEL_NNZ, (a.rows() * a.cols()) as u64),
    ]);
    let v = crate::simd::active_variant();
    for (i, yr) in ys.chunks_exact_mut(b).enumerate() {
        crate::simd::dot_batch_variant(v, a.row(i), xs, b, yr);
    }
    Ok(())
}

/// `y = Aᵀ * x` without materializing the transpose: one
/// [`simd`](crate::simd) axpy per nonzero element of `x` (the zero-skip
/// matters after row pruning).
///
/// # Errors
///
/// Returns [`ShapeError`] when `a.rows() != x.len()`.
pub fn gemv_transposed(a: &Matrix, x: &[f32]) -> Result<Vec<f32>, ShapeError> {
    if a.rows() != x.len() {
        return Err(ShapeError {
            op: "gemv_transposed",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    let mut y = vec![0.0f32; a.cols()];
    let v = crate::simd::active_variant();
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        crate::simd::axpy_variant(v, xi, a.row(i), &mut y);
    }
    Ok(y)
}

/// Rank-1 update `A += alpha * x * yᵀ` (outer product accumulate), the
/// gradient shape of every weight matrix in backpropagation.
///
/// # Errors
///
/// Returns [`ShapeError`] when `a.shape() != (x.len(), y.len())`.
pub fn ger(a: &mut Matrix, alpha: f32, x: &[f32], y: &[f32]) -> Result<(), ShapeError> {
    if a.shape() != (x.len(), y.len()) {
        return Err(ShapeError {
            op: "ger",
            lhs: a.shape(),
            rhs: (x.len(), y.len()),
        });
    }
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        let row = a.row_mut(i);
        let s = alpha * xi;
        for (aij, &yj) in row.iter_mut().zip(y) {
            *aij += s * yj;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn seq_matrix(r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |i, j| (i * c + j) as f32 + 1.0)
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_identity() {
        let a = seq_matrix(4, 4);
        assert_eq!(matmul(&a, &Matrix::identity(4)).unwrap(), a);
        assert_eq!(matmul(&Matrix::identity(4), &a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn blocked_matches_naive() {
        let a = seq_matrix(17, 23);
        let b = seq_matrix(23, 11);
        let naive = matmul(&a, &b).unwrap();
        for block in [1, 3, 8, 64, 100] {
            let blocked = matmul_blocked(&a, &b, block).unwrap();
            for (x, y) in naive.as_slice().iter().zip(blocked.as_slice()) {
                assert!(approx_eq(*x, *y, 1e-2), "block={block}: {x} vs {y}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn blocked_zero_block_panics() {
        let _ = matmul_blocked(&Matrix::zeros(1, 1), &Matrix::zeros(1, 1), 0);
    }

    #[test]
    fn gemv_matches_matmul() {
        let a = seq_matrix(5, 7);
        let x: Vec<f32> = (0..7).map(|i| i as f32 * 0.5).collect();
        let xm = Matrix::from_vec(7, 1, x.clone()).unwrap();
        let want = matmul(&a, &xm).unwrap();
        let got = gemv(&a, &x).unwrap();
        for i in 0..5 {
            assert!(approx_eq(got[i], want[(i, 0)], 1e-4));
        }
    }

    #[test]
    fn gemv_shape_error() {
        assert!(gemv(&Matrix::zeros(2, 3), &[1.0, 2.0]).is_err());
    }

    #[test]
    fn gemv_batch_lanes_match_serial_gemv() {
        let a = seq_matrix(9, 13);
        for b in [1usize, 2, 5, 8, 11] {
            let xs: Vec<f32> = (0..13 * b).map(|i| (i as f32 * 0.37).sin()).collect();
            let mut ys = vec![f32::NAN; 9 * b];
            gemv_batch_into(&a, &xs, b, &mut ys).unwrap();
            for j in 0..b {
                let col: Vec<f32> = (0..13).map(|c| xs[c * b + j]).collect();
                let want = gemv(&a, &col).unwrap();
                for i in 0..9 {
                    assert_eq!(ys[i * b + j], want[i], "b={b} lane {j} row {i}");
                }
            }
        }
        assert!(gemv_batch_into(&a, &[0.0; 5], 2, &mut [0.0; 18]).is_err());
    }

    #[test]
    fn gemv_transposed_matches_explicit_transpose() {
        let a = seq_matrix(5, 7);
        let x: Vec<f32> = (0..5).map(|i| i as f32 - 2.0).collect();
        let want = gemv(&a.transposed(), &x).unwrap();
        let got = gemv_transposed(&a, &x).unwrap();
        for (w, g) in want.iter().zip(&got) {
            assert!(approx_eq(*w, *g, 1e-4));
        }
    }

    #[test]
    fn ger_outer_product() {
        let mut a = Matrix::zeros(2, 3);
        ger(&mut a, 2.0, &[1.0, 2.0], &[1.0, 0.5, 0.0]).unwrap();
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(0, 1)], 1.0);
        assert_eq!(a[(1, 0)], 4.0);
        assert_eq!(a[(1, 2)], 0.0);
        assert!(ger(&mut a, 1.0, &[1.0], &[1.0]).is_err());
    }

    #[test]
    fn matmul_skips_zeros_consistently() {
        // The zero-skip fast path must not change results.
        let mut a = seq_matrix(6, 6);
        for i in 0..6 {
            a[(i, i)] = 0.0;
        }
        let b = seq_matrix(6, 6);
        let dense = matmul(&a, &b).unwrap();
        let blocked = matmul_blocked(&a, &b, 4).unwrap();
        for (x, y) in dense.as_slice().iter().zip(blocked.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-3));
        }
    }
}
