//! Seeded weight initializers.
//!
//! Every stochastic component in the workspace takes an explicit `u64` seed so
//! each experiment (Table I training runs in particular) is reproducible.
//! The distributions are the standard deep-learning choices:
//!
//! * [`xavier_uniform`] — `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`,
//!   the default for sigmoid/tanh gates (GRU);
//! * [`he_normal`] — `N(0, sqrt(2 / fan_in))`, for ReLU layers;
//! * [`uniform`] — plain `U(lo, hi)` for synthetic data.

use crate::matrix::Matrix;
use crate::rng::StdRng;

/// Creates a deterministic RNG from a seed.
///
/// All crates in the workspace obtain their RNGs through this helper so the
/// stream implementation can be swapped in one place.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Xavier/Glorot uniform initialization for a `rows`×`cols` matrix.
///
/// Bound is `sqrt(6 / (fan_in + fan_out))` with `fan_in = cols`,
/// `fan_out = rows` (the matrix maps a `cols`-vector to a `rows`-vector).
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let fan_sum = (rows + cols).max(1) as f32;
    let a = (6.0 / fan_sum).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
}

/// He/Kaiming normal initialization (`N(0, sqrt(2/fan_in))`), via Box-Muller.
pub fn he_normal(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let std = (2.0 / cols.max(1) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| std * standard_normal(rng))
}

/// Uniform `U(lo, hi)` matrix.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut StdRng) -> Matrix {
    assert!(lo <= hi, "uniform: lo must not exceed hi");
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..=hi))
}

/// One sample from the standard normal distribution via Box-Muller.
pub fn standard_normal(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut r1 = rng_from_seed(42);
        let mut r2 = rng_from_seed(42);
        let a = xavier_uniform(4, 4, &mut r1);
        let b = xavier_uniform(4, 4, &mut r2);
        assert_eq!(a, b);
        let mut r3 = rng_from_seed(43);
        let c = xavier_uniform(4, 4, &mut r3);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = rng_from_seed(7);
        let m = xavier_uniform(100, 50, &mut rng);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound + 1e-6));
        // Not all zero.
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    fn he_normal_statistics() {
        let mut rng = rng_from_seed(11);
        let m = he_normal(64, 128, &mut rng);
        let n = m.len() as f32;
        let mean = m.sum() / n;
        let var = m.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        let want_std = (2.0f32 / 128.0).sqrt();
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - want_std).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_range() {
        let mut rng = rng_from_seed(3);
        let m = uniform(10, 10, -2.0, 3.0, &mut rng);
        assert!(m.as_slice().iter().all(|&v| (-2.0..=3.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn uniform_bad_range_panics() {
        let mut rng = rng_from_seed(0);
        uniform(1, 1, 1.0, 0.0, &mut rng);
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = rng_from_seed(5);
        for _ in 0..1000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
