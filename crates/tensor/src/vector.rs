//! Dense `f32` vector helpers.
//!
//! RNN state vectors (hidden state, gates, feature frames) are plain
//! `Vec<f32>` values throughout the workspace; [`Vector`] collects the small
//! set of operations they need — dot products, axpy, norms, argmax — as free
//! functions on slices so callers never have to wrap their buffers.

/// Namespace struct for vector operations on `&[f32]` slices.
///
/// All functions are associated so call-sites read as `Vector::dot(a, b)`.
///
/// # Example
///
/// ```
/// use rtm_tensor::Vector;
///
/// let d = Vector::dot(&[1.0, 2.0], &[3.0, 4.0]);
/// assert_eq!(d, 11.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Vector;

impl Vector {
    /// Dot product of two equally-long slices, dispatched through the
    /// [`simd`](crate::simd) kernel layer
    /// ([`active_variant`](crate::simd::active_variant) selects the
    /// realization).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        crate::simd::dot(a, b)
    }

    /// `y += alpha * x` in place, dispatched through the
    /// [`simd`](crate::simd) kernel layer.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        crate::simd::axpy(alpha, x, y)
    }

    /// Euclidean (L2) norm.
    pub fn norm(a: &[f32]) -> f32 {
        a.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Scales every element in place.
    pub fn scale(a: &mut [f32], s: f32) {
        for v in a {
            *v *= s;
        }
    }

    /// Element-wise sum into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
        assert_eq!(a.len(), b.len(), "add: length mismatch");
        a.iter().zip(b).map(|(&x, &y)| x + y).collect()
    }

    /// Element-wise difference `a - b` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
        assert_eq!(a.len(), b.len(), "sub: length mismatch");
        a.iter().zip(b).map(|(&x, &y)| x - y).collect()
    }

    /// Element-wise (Hadamard) product into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hadamard(a: &[f32], b: &[f32]) -> Vec<f32> {
        assert_eq!(a.len(), b.len(), "hadamard: length mismatch");
        let mut out = vec![0.0f32; a.len()];
        crate::simd::hadamard_into(a, b, &mut out);
        out
    }

    /// Element-wise (Hadamard) product into a caller-provided buffer — the
    /// allocation-free steady-state form, dispatched through the
    /// [`simd`](crate::simd) kernel layer.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hadamard_into(a: &[f32], b: &[f32], out: &mut [f32]) {
        crate::simd::hadamard_into(a, b, out)
    }

    /// Index of the maximum element (ties break to the first).
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn argmax(a: &[f32]) -> usize {
        assert!(!a.is_empty(), "argmax of empty slice");
        let mut best = 0;
        for (i, &v) in a.iter().enumerate() {
            if v > a[best] {
                best = i;
            }
        }
        best
    }

    /// Maximum element value.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn max(a: &[f32]) -> f32 {
        a[Self::argmax(a)]
    }

    /// Arithmetic mean; `0.0` for an empty slice.
    pub fn mean(a: &[f32]) -> f32 {
        if a.is_empty() {
            0.0
        } else {
            a.iter().sum::<f32>() / a.len() as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product() {
        assert_eq!(Vector::dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(Vector::dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_len_mismatch() {
        Vector::dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        Vector::axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norm_pythagorean() {
        assert!((Vector::norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(Vector::norm(&[]), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(Vector::add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(Vector::sub(&[3.0, 4.0], &[1.0, 2.0]), vec![2.0, 2.0]);
        assert_eq!(Vector::hadamard(&[2.0, 3.0], &[4.0, 5.0]), vec![8.0, 15.0]);
        let mut a = vec![1.0, 2.0];
        Vector::scale(&mut a, 3.0);
        assert_eq!(a, vec![3.0, 6.0]);
    }

    #[test]
    fn argmax_and_mean() {
        assert_eq!(Vector::argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
        assert_eq!(Vector::max(&[1.0, 5.0, 2.0]), 5.0);
        assert_eq!(Vector::mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(Vector::mean(&[]), 0.0);
    }
}
