//! SIMD kernel layer with runtime CPU-feature dispatch (paper §IV-C).
//!
//! RTMobile's compiler generates "vectorized codes with the best checked
//! unroll factor"; this module is the executable half of that claim. Every
//! hot inner loop of the inference stack — `dot`, `axpy`, `hadamard`, the
//! indexed dot of the CSR/BSPC SpMV, and the sigmoid/tanh activation
//! sweeps — is provided in four **variants**:
//!
//! | variant     | realization                           | numeric contract        |
//! |-------------|---------------------------------------|-------------------------|
//! | `scalar-u1` | the naive loop (pre-SIMD reference)   | bit-exact reference     |
//! | `scalar-u4` | 4-wide unrolled, single accumulator   | bit-exact with u1       |
//! | `scalar-u8` | 8-wide unrolled, single accumulator   | bit-exact with u1       |
//! | `vector`    | AVX2+FMA (x86_64) / NEON (aarch64)    | ≤ 4 ULPs of u1 (see below) |
//!
//! The scalar unrolls keep one accumulator and the original left-to-right
//! association, so they are *bit-identical* to the naive loop — unrolling
//! only removes loop overhead; the floating-point dependency chain is
//! unchanged, which is also why real speedups need the vector path. The
//! vector path uses one 8-lane (AVX2) / 4-lane (NEON) FMA accumulator
//! register plus a fixed-tree horizontal reduction, which reassociates the
//! sum and contracts multiply-adds.
//!
//! **ULP policy.** Reductions are compared at the *accumulation magnitude*:
//! `|vector − scalar| ≤ 4 · ulp(Σ|aᵢ·bᵢ|)`. Measuring ULPs at the result
//! magnitude is meaningless under cancellation (the result can be
//! arbitrarily smaller than the terms), and for sign-uniform data the
//! sequential scalar reference itself drifts tens of ULPs from the true
//! sum — the accumulation-magnitude bound is the tightest contract that is
//! actually sound. Element-wise kernels (`hadamard`, the activation sweeps)
//! are bit-exact in every variant; `axpy` differs from scalar by at most
//! one FMA contraction per element.
//!
//! **Order discipline.** The vector dense dot and the vector indexed dot
//! share the same lane grouping (consecutive chunks of one lane width, one
//! accumulator register, identical reduction tree, in-order scalar tail),
//! so gathering a sparse row into a dense scratch and dotting it —
//! `rtm-exec`'s blocked BSPC kernel — produces bit-identical results to the
//! in-register gather used by the serial SpMV. That invariant is what keeps
//! PR 1's parallel-vs-serial bit-exactness guarantees intact under every
//! [`SimdPolicy`].
//!
//! **Batched lanes.** The SpMM kernels ([`dot_batch`], [`indexed_dot_batch`])
//! take `b` interleaved input streams (element `c` of lane `j` at
//! `xs[c·b + j]`) and walk the row's values/indices once for all of them.
//! Their contract is stronger than the 4-ULP reduction bound: lane `j` of a
//! batched kernel is *bit-identical* to the single-vector kernel of the same
//! variant applied to column `j`, because the batch realizations replay the
//! serial kernels' accumulator layout and reduction tree per lane. That is
//! what lets the batched inference path claim exact equivalence with `b`
//! serial runs.
//!
//! Dispatch is process-global: [`active_variant`] resolves the
//! [`SimdPolicy`] (programmatic [`set_policy`] wins over the `RTM_SIMD`
//! environment variable, which is read once on first use) against the
//! cached CPU-feature detection. The `*_variant` entry points bypass the
//! policy for differential tests, the tuner's measured-cost hook, and the
//! benchmark harness.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A concrete kernel realization the dispatcher can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The naive loop — the bit-exact reference (pre-SIMD behaviour).
    ScalarU1,
    /// 4-wide unrolled scalar, single accumulator (bit-exact with u1).
    ScalarU4,
    /// 8-wide unrolled scalar, single accumulator (bit-exact with u1).
    ScalarU8,
    /// AVX2+FMA on x86_64 / NEON on aarch64 (≤ 4-ULP contract).
    Vector,
}

impl Variant {
    /// All variants, scalar first (useful for sweeps and benches).
    pub const ALL: [Variant; 4] = [
        Variant::ScalarU1,
        Variant::ScalarU4,
        Variant::ScalarU8,
        Variant::Vector,
    ];

    /// Stable display name (used in plans, benches and JSON artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Variant::ScalarU1 => "scalar-u1",
            Variant::ScalarU4 => "scalar-u4",
            Variant::ScalarU8 => "scalar-u8",
            Variant::Vector => "vector",
        }
    }

    /// The unroll factor this variant realizes (lanes processed per
    /// iteration of the inner loop). This is the quantity the tuner's
    /// `unroll` plan field selects; see
    /// `rtm_compiler::tuner::variant_for_unroll`.
    pub fn unroll(self) -> usize {
        match self {
            Variant::ScalarU1 => 1,
            Variant::ScalarU4 => 4,
            Variant::ScalarU8 => 8,
            Variant::Vector => lane_width().max(1),
        }
    }
}

/// How the process-global dispatcher picks a [`Variant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPolicy {
    /// Use the vector path when the CPU supports it, `scalar-u8` otherwise.
    Auto,
    /// Always use the given variant ([`Variant::Vector`] still degrades to
    /// `scalar-u8` on CPUs without AVX2+FMA / NEON).
    Fixed(Variant),
}

const P_UNSET: u8 = 0;
const P_AUTO: u8 = 1;
const P_U1: u8 = 2;
const P_U4: u8 = 3;
const P_U8: u8 = 4;
const P_VEC: u8 = 5;

static POLICY: AtomicU8 = AtomicU8::new(P_UNSET);

fn encode(p: SimdPolicy) -> u8 {
    match p {
        SimdPolicy::Auto => P_AUTO,
        SimdPolicy::Fixed(Variant::ScalarU1) => P_U1,
        SimdPolicy::Fixed(Variant::ScalarU4) => P_U4,
        SimdPolicy::Fixed(Variant::ScalarU8) => P_U8,
        SimdPolicy::Fixed(Variant::Vector) => P_VEC,
    }
}

fn decode(v: u8) -> SimdPolicy {
    match v {
        P_U1 => SimdPolicy::Fixed(Variant::ScalarU1),
        P_U4 => SimdPolicy::Fixed(Variant::ScalarU4),
        P_U8 => SimdPolicy::Fixed(Variant::ScalarU8),
        P_VEC => SimdPolicy::Fixed(Variant::Vector),
        _ => SimdPolicy::Auto,
    }
}

/// Parses an `RTM_SIMD` value (or a `--simd` CLI flag). Recognized:
/// `auto`/`on`, `off`/`scalar`/`0`/`u1`, `u4`, `u8`, `vector`/`simd`
/// (case-insensitive). Returns `None` for anything else.
pub fn parse_policy(s: &str) -> Option<SimdPolicy> {
    match s.trim().to_ascii_lowercase().as_str() {
        "auto" | "on" | "" => Some(SimdPolicy::Auto),
        "off" | "scalar" | "0" | "u1" | "scalar-u1" => Some(SimdPolicy::Fixed(Variant::ScalarU1)),
        "u4" | "scalar-u4" => Some(SimdPolicy::Fixed(Variant::ScalarU4)),
        "u8" | "scalar-u8" => Some(SimdPolicy::Fixed(Variant::ScalarU8)),
        "vector" | "simd" => Some(SimdPolicy::Fixed(Variant::Vector)),
        _ => None,
    }
}

/// Overrides the process-global dispatch policy (wins over `RTM_SIMD`).
pub fn set_policy(p: SimdPolicy) {
    POLICY.store(encode(p), Ordering::Relaxed);
}

/// The current dispatch policy. On first use (before any [`set_policy`])
/// the `RTM_SIMD` environment variable is consulted; unset or unparseable
/// values mean [`SimdPolicy::Auto`].
pub fn policy() -> SimdPolicy {
    let v = POLICY.load(Ordering::Relaxed);
    if v != P_UNSET {
        return decode(v);
    }
    let p = rtm_trace::env::raw("RTM_SIMD")
        .as_deref()
        .and_then(parse_policy)
        .unwrap_or(SimdPolicy::Auto);
    let _ = POLICY.compare_exchange(P_UNSET, encode(p), Ordering::Relaxed, Ordering::Relaxed);
    decode(POLICY.load(Ordering::Relaxed))
}

/// The variant the dispatched entry points (`dot`, `axpy`, …) will run
/// right now, after resolving [`policy`] against CPU support.
///
/// When tracing is enabled, every resolution bumps the per-variant
/// dispatch counter named by [`dispatch_key`] — each kernel call resolves
/// the variant exactly once (hoisted out of its row loop), so the counters
/// count dispatched kernel calls per realization.
pub fn active_variant() -> Variant {
    let v = match policy() {
        SimdPolicy::Auto | SimdPolicy::Fixed(Variant::Vector) => {
            if vector_available() {
                Variant::Vector
            } else {
                Variant::ScalarU8
            }
        }
        SimdPolicy::Fixed(v) => v,
    };
    if rtm_trace::enabled() {
        rtm_trace::global().counter_add(dispatch_key(v), 1);
    }
    v
}

/// The registry counter a dispatch of `v` increments:
/// `simd.dispatch.<variant-name>`.
pub fn dispatch_key(v: Variant) -> &'static str {
    match v {
        Variant::ScalarU1 => "simd.dispatch.scalar-u1",
        Variant::ScalarU4 => "simd.dispatch.scalar-u4",
        Variant::ScalarU8 => "simd.dispatch.scalar-u8",
        Variant::Vector => "simd.dispatch.vector",
    }
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(target_arch = "aarch64")]
fn detect() -> bool {
    std::arch::is_aarch64_feature_detected!("neon")
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn detect() -> bool {
    false
}

/// Whether the host CPU supports this build's vector path
/// (AVX2+FMA on x86_64, NEON on aarch64). Detection runs once and is cached.
pub fn vector_available() -> bool {
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(detect)
}

/// SIMD lanes per register of the vector path: 8 on AVX2, 4 on NEON,
/// 1 when no vector path is available.
pub fn lane_width() -> usize {
    if !vector_available() {
        1
    } else if cfg!(target_arch = "x86_64") {
        8
    } else {
        4
    }
}

/// Human-readable name of the detected vector ISA (`"avx2+fma"`, `"neon"`
/// or `"none"`), recorded by the benchmark JSON.
pub fn vector_isa() -> &'static str {
    if !vector_available() {
        "none"
    } else if cfg!(target_arch = "x86_64") {
        "avx2+fma"
    } else {
        "neon"
    }
}

// ---------------------------------------------------------------------------
// Scalar variants. One accumulator, original left-to-right association:
// u1, u4 and u8 are bit-identical by construction.
// ---------------------------------------------------------------------------

fn dot_u1(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

fn dot_u4(a: &[f32], b: &[f32]) -> f32 {
    let m = a.len() - a.len() % 4;
    let mut acc = 0.0f32;
    for (ca, cb) in a[..m].chunks_exact(4).zip(b[..m].chunks_exact(4)) {
        acc += ca[0] * cb[0];
        acc += ca[1] * cb[1];
        acc += ca[2] * cb[2];
        acc += ca[3] * cb[3];
    }
    for (&x, &y) in a[m..].iter().zip(&b[m..]) {
        acc += x * y;
    }
    acc
}

fn dot_u8(a: &[f32], b: &[f32]) -> f32 {
    let m = a.len() - a.len() % 8;
    let mut acc = 0.0f32;
    for (ca, cb) in a[..m].chunks_exact(8).zip(b[..m].chunks_exact(8)) {
        acc += ca[0] * cb[0];
        acc += ca[1] * cb[1];
        acc += ca[2] * cb[2];
        acc += ca[3] * cb[3];
        acc += ca[4] * cb[4];
        acc += ca[5] * cb[5];
        acc += ca[6] * cb[6];
        acc += ca[7] * cb[7];
    }
    for (&x, &y) in a[m..].iter().zip(&b[m..]) {
        acc += x * y;
    }
    acc
}

fn indexed_dot_u1(vals: &[f32], idx: &[u32], x: &[f32]) -> f32 {
    vals.iter().zip(idx).map(|(&w, &c)| w * x[c as usize]).sum()
}

fn indexed_dot_u4(vals: &[f32], idx: &[u32], x: &[f32]) -> f32 {
    let m = vals.len() - vals.len() % 4;
    let mut acc = 0.0f32;
    for (cw, ci) in vals[..m].chunks_exact(4).zip(idx[..m].chunks_exact(4)) {
        acc += cw[0] * x[ci[0] as usize];
        acc += cw[1] * x[ci[1] as usize];
        acc += cw[2] * x[ci[2] as usize];
        acc += cw[3] * x[ci[3] as usize];
    }
    for (&w, &c) in vals[m..].iter().zip(&idx[m..]) {
        acc += w * x[c as usize];
    }
    acc
}

fn indexed_dot_u8(vals: &[f32], idx: &[u32], x: &[f32]) -> f32 {
    let m = vals.len() - vals.len() % 8;
    let mut acc = 0.0f32;
    for (cw, ci) in vals[..m].chunks_exact(8).zip(idx[..m].chunks_exact(8)) {
        acc += cw[0] * x[ci[0] as usize];
        acc += cw[1] * x[ci[1] as usize];
        acc += cw[2] * x[ci[2] as usize];
        acc += cw[3] * x[ci[3] as usize];
        acc += cw[4] * x[ci[4] as usize];
        acc += cw[5] * x[ci[5] as usize];
        acc += cw[6] * x[ci[6] as usize];
        acc += cw[7] * x[ci[7] as usize];
    }
    for (&w, &c) in vals[m..].iter().zip(&idx[m..]) {
        acc += w * x[c as usize];
    }
    acc
}

fn axpy_u1(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

fn axpy_u4(alpha: f32, x: &[f32], y: &mut [f32]) {
    let m = x.len() - x.len() % 4;
    for (cy, cx) in y[..m].chunks_exact_mut(4).zip(x[..m].chunks_exact(4)) {
        cy[0] += alpha * cx[0];
        cy[1] += alpha * cx[1];
        cy[2] += alpha * cx[2];
        cy[3] += alpha * cx[3];
    }
    for (yi, &xi) in y[m..].iter_mut().zip(&x[m..]) {
        *yi += alpha * xi;
    }
}

fn axpy_u8(alpha: f32, x: &[f32], y: &mut [f32]) {
    let m = x.len() - x.len() % 8;
    for (cy, cx) in y[..m].chunks_exact_mut(8).zip(x[..m].chunks_exact(8)) {
        cy[0] += alpha * cx[0];
        cy[1] += alpha * cx[1];
        cy[2] += alpha * cx[2];
        cy[3] += alpha * cx[3];
        cy[4] += alpha * cx[4];
        cy[5] += alpha * cx[5];
        cy[6] += alpha * cx[6];
        cy[7] += alpha * cx[7];
    }
    for (yi, &xi) in y[m..].iter_mut().zip(&x[m..]) {
        *yi += alpha * xi;
    }
}

fn hadamard_into_u1(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

fn hadamard_into_u4(a: &[f32], b: &[f32], out: &mut [f32]) {
    let m = a.len() - a.len() % 4;
    for ((co, ca), cb) in out[..m]
        .chunks_exact_mut(4)
        .zip(a[..m].chunks_exact(4))
        .zip(b[..m].chunks_exact(4))
    {
        co[0] = ca[0] * cb[0];
        co[1] = ca[1] * cb[1];
        co[2] = ca[2] * cb[2];
        co[3] = ca[3] * cb[3];
    }
    for ((o, &x), &y) in out[m..].iter_mut().zip(&a[m..]).zip(&b[m..]) {
        *o = x * y;
    }
}

fn hadamard_into_u8(a: &[f32], b: &[f32], out: &mut [f32]) {
    let m = a.len() - a.len() % 8;
    for ((co, ca), cb) in out[..m]
        .chunks_exact_mut(8)
        .zip(a[..m].chunks_exact(8))
        .zip(b[..m].chunks_exact(8))
    {
        co[0] = ca[0] * cb[0];
        co[1] = ca[1] * cb[1];
        co[2] = ca[2] * cb[2];
        co[3] = ca[3] * cb[3];
        co[4] = ca[4] * cb[4];
        co[5] = ca[5] * cb[5];
        co[6] = ca[6] * cb[6];
        co[7] = ca[7] * cb[7];
    }
    for ((o, &x), &y) in out[m..].iter_mut().zip(&a[m..]).zip(&b[m..]) {
        *o = x * y;
    }
}

// ---------------------------------------------------------------------------
// Batched (SpMM) kernels. The input is `b` interleaved lanes — element `c`
// of lane `j` lives at `xs[c * b + j]` — so one walk of a row's index
// structure feeds all `b` streams, and the vector path gets unit-stride
// loads across the batch dimension (no gathers even for irregular rows).
//
// Numeric contract: lane `j` of a batched kernel is **bit-identical** to
// the single-vector kernel of the same variant applied to column `j`. The
// three scalar unrolls share one realization (they are already bit-exact
// with each other per lane: single accumulator, left-to-right association);
// the vector realization keeps the serial kernel's k-sublane accumulators
// and replays its horizontal-reduction tree element-wise per lane.
// ---------------------------------------------------------------------------

fn dot_batch_scalar(a: &[f32], xs: &[f32], b: usize, out: &mut [f32]) {
    out.fill(0.0);
    for (k, &w) in a.iter().enumerate() {
        let lanes = &xs[k * b..k * b + b];
        for (o, &xv) in out.iter_mut().zip(lanes) {
            *o += w * xv;
        }
    }
}

fn indexed_dot_batch_scalar(vals: &[f32], idx: &[u32], xs: &[f32], b: usize, out: &mut [f32]) {
    out.fill(0.0);
    for (&w, &c) in vals.iter().zip(idx) {
        let base = c as usize * b;
        let lanes = &xs[base..base + b];
        for (o, &xv) in out.iter_mut().zip(lanes) {
            *o += w * xv;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2+FMA (x86_64). One accumulator register, fixed reduction tree,
// in-order scalar tail. The dense dot and the indexed (gather) dot use the
// *same* lane grouping so gathered-then-dotted sparse rows are bit-identical
// to in-register gathers — see the module docs.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Fixed horizontal-sum tree: lanes (0+4, 1+5, 2+6, 3+7) → pairwise →
    /// scalar. Every reduction in this module uses this exact tree.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps::<1>(v);
        let lo = _mm256_castps256_ps128(v);
        let q = _mm_add_ps(lo, hi);
        let h = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let s = _mm_add_ss(h, _mm_shuffle_ps::<0b01>(h, h));
        _mm_cvtss_f32(s)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 8;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = _mm256_setzero_ps();
        for i in 0..chunks {
            let va = _mm256_loadu_ps(ap.add(i * 8));
            let vb = _mm256_loadu_ps(bp.add(i * 8));
            acc = _mm256_fmadd_ps(va, vb, acc);
        }
        let mut sum = hsum256(acc);
        for i in chunks * 8..n {
            sum += a[i] * b[i];
        }
        sum
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn indexed_dot(vals: &[f32], idx: &[u32], x: &[f32]) -> f32 {
        let n = vals.len();
        let chunks = n / 8;
        let vp = vals.as_ptr();
        let ip = idx.as_ptr();
        let xp = x.as_ptr();
        let mut acc = _mm256_setzero_ps();
        for i in 0..chunks {
            let w = _mm256_loadu_ps(vp.add(i * 8));
            let ci = _mm256_loadu_si256(ip.add(i * 8) as *const __m256i);
            let g = _mm256_i32gather_ps::<4>(xp, ci);
            acc = _mm256_fmadd_ps(w, g, acc);
        }
        let mut sum = hsum256(acc);
        for i in chunks * 8..n {
            sum += vals[i] * x[idx[i] as usize];
        }
        sum
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let chunks = n / 8;
        let va = _mm256_set1_ps(alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for i in 0..chunks {
            let vx = _mm256_loadu_ps(xp.add(i * 8));
            let vy = _mm256_loadu_ps(yp.add(i * 8));
            _mm256_storeu_ps(yp.add(i * 8), _mm256_fmadd_ps(va, vx, vy));
        }
        for i in chunks * 8..n {
            y[i] += alpha * x[i];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn hadamard_into(a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = a.len();
        let chunks = n / 8;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for i in 0..chunks {
            let va = _mm256_loadu_ps(ap.add(i * 8));
            let vb = _mm256_loadu_ps(bp.add(i * 8));
            _mm256_storeu_ps(op.add(i * 8), _mm256_mul_ps(va, vb));
        }
        for i in chunks * 8..n {
            out[i] = a[i] * b[i];
        }
    }

    /// The `hsum256` reduction tree applied element-wise across eight
    /// accumulator registers: per batch lane this is exactly the scalar
    /// `((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7))` that `hsum256` performs on
    /// one register's eight k-sublanes.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tree_reduce8(acc: &[__m256; 8]) -> __m256 {
        let q0 = _mm256_add_ps(acc[0], acc[4]);
        let q1 = _mm256_add_ps(acc[1], acc[5]);
        let q2 = _mm256_add_ps(acc[2], acc[6]);
        let q3 = _mm256_add_ps(acc[3], acc[7]);
        _mm256_add_ps(_mm256_add_ps(q0, q2), _mm256_add_ps(q1, q3))
    }

    /// Scalar replay of one batch lane of the vector dot: eight k-sublane
    /// accumulators (hardware-FMA via `mul_add`, the same single-rounding
    /// operation as `_mm256_fmadd_ps`), the `hsum256` tree, then the
    /// in-order mul+add tail. `fetch(k)` returns this lane's input for
    /// element `k`.
    #[inline]
    fn lane_dot<F: Fn(usize) -> f32>(a: &[f32], fetch: F) -> f32 {
        let n = a.len();
        let chunks = n / 8;
        let mut acc = [0.0f32; 8];
        for i in 0..chunks {
            for (l, al) in acc.iter_mut().enumerate() {
                let k = i * 8 + l;
                *al = a[k].mul_add(fetch(k), *al);
            }
        }
        let mut sum =
            ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
        for (k, &ak) in a.iter().enumerate().skip(chunks * 8) {
            sum += ak * fetch(k);
        }
        sum
    }

    /// Batched dense dot: lane `j` of `out` is bit-identical to `dot` of
    /// `a` with column `j` of the lane-major `xs` buffer.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_batch(a: &[f32], xs: &[f32], b: usize, out: &mut [f32]) {
        let n = a.len();
        let chunks = n / 8;
        let xp = xs.as_ptr();
        let op = out.as_mut_ptr();
        let jb = b - b % 8;
        let mut j0 = 0;
        while j0 < jb {
            let mut acc = [_mm256_setzero_ps(); 8];
            for i in 0..chunks {
                for (l, al) in acc.iter_mut().enumerate() {
                    let k = i * 8 + l;
                    let w = _mm256_set1_ps(a[k]);
                    let xv = _mm256_loadu_ps(xp.add(k * b + j0));
                    *al = _mm256_fmadd_ps(w, xv, *al);
                }
            }
            let mut s = tree_reduce8(&acc);
            for (k, &ak) in a.iter().enumerate().skip(chunks * 8) {
                let w = _mm256_set1_ps(ak);
                let xv = _mm256_loadu_ps(xp.add(k * b + j0));
                s = _mm256_add_ps(s, _mm256_mul_ps(w, xv));
            }
            _mm256_storeu_ps(op.add(j0), s);
            j0 += 8;
        }
        for j in jb..b {
            out[j] = lane_dot(a, |k| xs[k * b + j]);
        }
    }

    /// Batched indexed dot: lane `j` of `out` is bit-identical to
    /// `indexed_dot` against column `j` of the lane-major `xs` buffer. One
    /// index walk feeds all lanes; the loads across the batch dimension are
    /// unit-stride (no gathers).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn indexed_dot_batch(
        vals: &[f32],
        idx: &[u32],
        xs: &[f32],
        b: usize,
        out: &mut [f32],
    ) {
        let n = vals.len();
        let chunks = n / 8;
        let xp = xs.as_ptr();
        let op = out.as_mut_ptr();
        let jb = b - b % 8;
        let mut j0 = 0;
        while j0 < jb {
            let mut acc = [_mm256_setzero_ps(); 8];
            for i in 0..chunks {
                for (l, al) in acc.iter_mut().enumerate() {
                    let k = i * 8 + l;
                    let w = _mm256_set1_ps(vals[k]);
                    let xv = _mm256_loadu_ps(xp.add(idx[k] as usize * b + j0));
                    *al = _mm256_fmadd_ps(w, xv, *al);
                }
            }
            let mut s = tree_reduce8(&acc);
            for k in chunks * 8..n {
                let w = _mm256_set1_ps(vals[k]);
                let xv = _mm256_loadu_ps(xp.add(idx[k] as usize * b + j0));
                s = _mm256_add_ps(s, _mm256_mul_ps(w, xv));
            }
            _mm256_storeu_ps(op.add(j0), s);
            j0 += 8;
        }
        for j in jb..b {
            out[j] = lane_dot(vals, |k| xs[idx[k] as usize * b + j]);
        }
    }
}

// ---------------------------------------------------------------------------
// NEON (aarch64). 4-lane counterpart of the AVX2 kernels with the same
// structure: one accumulator register, `vaddvq` reduction, in-order tail.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    #[target_feature(enable = "neon")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let chunks = n / 4;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = vdupq_n_f32(0.0);
        for i in 0..chunks {
            let va = vld1q_f32(ap.add(i * 4));
            let vb = vld1q_f32(bp.add(i * 4));
            acc = vfmaq_f32(acc, va, vb);
        }
        let mut sum = vaddvq_f32(acc);
        for i in chunks * 4..n {
            sum += a[i] * b[i];
        }
        sum
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn indexed_dot(vals: &[f32], idx: &[u32], x: &[f32]) -> f32 {
        let n = vals.len();
        let chunks = n / 4;
        let vp = vals.as_ptr();
        let mut acc = vdupq_n_f32(0.0);
        for i in 0..chunks {
            let j = i * 4;
            // NEON has no gather: stage the four inputs through a stack
            // array so the lane grouping matches the dense dot exactly.
            let g = [
                x[idx[j] as usize],
                x[idx[j + 1] as usize],
                x[idx[j + 2] as usize],
                x[idx[j + 3] as usize],
            ];
            let w = vld1q_f32(vp.add(j));
            acc = vfmaq_f32(acc, w, vld1q_f32(g.as_ptr()));
        }
        let mut sum = vaddvq_f32(acc);
        for i in chunks * 4..n {
            sum += vals[i] * x[idx[i] as usize];
        }
        sum
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let chunks = n / 4;
        let va = vdupq_n_f32(alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for i in 0..chunks {
            let vx = vld1q_f32(xp.add(i * 4));
            let vy = vld1q_f32(yp.add(i * 4));
            vst1q_f32(yp.add(i * 4), vfmaq_f32(vy, va, vx));
        }
        for i in chunks * 4..n {
            y[i] += alpha * x[i];
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn hadamard_into(a: &[f32], b: &[f32], out: &mut [f32]) {
        let n = a.len();
        let chunks = n / 4;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for i in 0..chunks {
            vst1q_f32(
                op.add(i * 4),
                vmulq_f32(vld1q_f32(ap.add(i * 4)), vld1q_f32(bp.add(i * 4))),
            );
        }
        for i in chunks * 4..n {
            out[i] = a[i] * b[i];
        }
    }

    /// Scalar replay of one batch lane of the NEON dot: four k-sublane
    /// accumulators (`mul_add` = the same single-rounding FMA as `vfmaq`),
    /// the `vaddvq` pairwise tree `(a0+a1)+(a2+a3)`, then the in-order
    /// mul+add tail.
    #[inline]
    fn lane_dot<F: Fn(usize) -> f32>(a: &[f32], fetch: F) -> f32 {
        let n = a.len();
        let chunks = n / 4;
        let mut acc = [0.0f32; 4];
        for i in 0..chunks {
            for (l, al) in acc.iter_mut().enumerate() {
                let k = i * 4 + l;
                *al = a[k].mul_add(fetch(k), *al);
            }
        }
        let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for k in chunks * 4..n {
            sum += a[k] * fetch(k);
        }
        sum
    }

    /// Batched dense dot: lane `j` of `out` is bit-identical to `dot` of
    /// `a` with column `j` of the lane-major `xs` buffer. The reduction
    /// applies `vaddvq`'s pairwise tree element-wise across the four
    /// k-sublane accumulators.
    #[target_feature(enable = "neon")]
    pub unsafe fn dot_batch(a: &[f32], xs: &[f32], b: usize, out: &mut [f32]) {
        let n = a.len();
        let chunks = n / 4;
        let xp = xs.as_ptr();
        let op = out.as_mut_ptr();
        let jb = b - b % 4;
        let mut j0 = 0;
        while j0 < jb {
            let mut acc = [vdupq_n_f32(0.0); 4];
            for i in 0..chunks {
                for (l, al) in acc.iter_mut().enumerate() {
                    let k = i * 4 + l;
                    let w = vdupq_n_f32(a[k]);
                    let xv = vld1q_f32(xp.add(k * b + j0));
                    *al = vfmaq_f32(*al, w, xv);
                }
            }
            let mut s = vaddq_f32(vaddq_f32(acc[0], acc[1]), vaddq_f32(acc[2], acc[3]));
            for k in chunks * 4..n {
                let w = vdupq_n_f32(a[k]);
                let xv = vld1q_f32(xp.add(k * b + j0));
                s = vaddq_f32(s, vmulq_f32(w, xv));
            }
            vst1q_f32(op.add(j0), s);
            j0 += 4;
        }
        for j in jb..b {
            out[j] = lane_dot(a, |k| xs[k * b + j]);
        }
    }

    /// Batched indexed dot: lane `j` of `out` is bit-identical to
    /// `indexed_dot` against column `j` of the lane-major `xs` buffer.
    #[target_feature(enable = "neon")]
    pub unsafe fn indexed_dot_batch(
        vals: &[f32],
        idx: &[u32],
        xs: &[f32],
        b: usize,
        out: &mut [f32],
    ) {
        let n = vals.len();
        let chunks = n / 4;
        let xp = xs.as_ptr();
        let op = out.as_mut_ptr();
        let jb = b - b % 4;
        let mut j0 = 0;
        while j0 < jb {
            let mut acc = [vdupq_n_f32(0.0); 4];
            for i in 0..chunks {
                for (l, al) in acc.iter_mut().enumerate() {
                    let k = i * 4 + l;
                    let w = vdupq_n_f32(vals[k]);
                    let xv = vld1q_f32(xp.add(idx[k] as usize * b + j0));
                    *al = vfmaq_f32(*al, w, xv);
                }
            }
            let mut s = vaddq_f32(vaddq_f32(acc[0], acc[1]), vaddq_f32(acc[2], acc[3]));
            for k in chunks * 4..n {
                let w = vdupq_n_f32(vals[k]);
                let xv = vld1q_f32(xp.add(idx[k] as usize * b + j0));
                s = vaddq_f32(s, vmulq_f32(w, xv));
            }
            vst1q_f32(op.add(j0), s);
            j0 += 4;
        }
        for j in jb..b {
            out[j] = lane_dot(vals, |k| xs[idx[k] as usize * b + j]);
        }
    }
}

// ---------------------------------------------------------------------------
// Vector dispatchers: runtime-checked entry into the unsafe ISA modules,
// degrading to scalar-u8 when the CPU lacks the features.
// ---------------------------------------------------------------------------

fn dot_vector(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if vector_available() {
        // SAFETY: AVX2+FMA presence verified by `vector_available`.
        return unsafe { x86::dot(a, b) };
    }
    #[cfg(target_arch = "aarch64")]
    if vector_available() {
        // SAFETY: NEON presence verified by `vector_available`.
        return unsafe { neon::dot(a, b) };
    }
    dot_u8(a, b)
}

fn indexed_dot_vector(vals: &[f32], idx: &[u32], x: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if vector_available() {
        // SAFETY: AVX2+FMA presence verified by `vector_available`.
        return unsafe { x86::indexed_dot(vals, idx, x) };
    }
    #[cfg(target_arch = "aarch64")]
    if vector_available() {
        // SAFETY: NEON presence verified by `vector_available`.
        return unsafe { neon::indexed_dot(vals, idx, x) };
    }
    indexed_dot_u8(vals, idx, x)
}

fn axpy_vector(alpha: f32, x: &[f32], y: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if vector_available() {
        // SAFETY: AVX2+FMA presence verified by `vector_available`.
        return unsafe { x86::axpy(alpha, x, y) };
    }
    #[cfg(target_arch = "aarch64")]
    if vector_available() {
        // SAFETY: NEON presence verified by `vector_available`.
        return unsafe { neon::axpy(alpha, x, y) };
    }
    axpy_u8(alpha, x, y)
}

fn hadamard_into_vector(a: &[f32], b: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if vector_available() {
        // SAFETY: AVX2+FMA presence verified by `vector_available`.
        return unsafe { x86::hadamard_into(a, b, out) };
    }
    #[cfg(target_arch = "aarch64")]
    if vector_available() {
        // SAFETY: NEON presence verified by `vector_available`.
        return unsafe { neon::hadamard_into(a, b, out) };
    }
    hadamard_into_u8(a, b, out)
}

fn dot_batch_vector(a: &[f32], xs: &[f32], b: usize, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if vector_available() {
        // SAFETY: AVX2+FMA presence verified by `vector_available`.
        return unsafe { x86::dot_batch(a, xs, b, out) };
    }
    #[cfg(target_arch = "aarch64")]
    if vector_available() {
        // SAFETY: NEON presence verified by `vector_available`.
        return unsafe { neon::dot_batch(a, xs, b, out) };
    }
    // Without the ISA the serial vector kernels degrade to scalar-u8, which
    // is bit-exact with the shared scalar batch realization per lane.
    dot_batch_scalar(a, xs, b, out)
}

fn indexed_dot_batch_vector(vals: &[f32], idx: &[u32], xs: &[f32], b: usize, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if vector_available() {
        // SAFETY: AVX2+FMA presence verified by `vector_available`.
        return unsafe { x86::indexed_dot_batch(vals, idx, xs, b, out) };
    }
    #[cfg(target_arch = "aarch64")]
    if vector_available() {
        // SAFETY: NEON presence verified by `vector_available`.
        return unsafe { neon::indexed_dot_batch(vals, idx, xs, b, out) };
    }
    indexed_dot_batch_scalar(vals, idx, xs, b, out)
}

// ---------------------------------------------------------------------------
// Public kernels: `foo()` runs the policy-selected variant, `foo_variant()`
// runs an explicit one (differential tests, tuner, benches).
// ---------------------------------------------------------------------------

/// Dot product of two equally-long slices under an explicit variant.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot_variant(v: Variant, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    match v {
        Variant::ScalarU1 => dot_u1(a, b),
        Variant::ScalarU4 => dot_u4(a, b),
        Variant::ScalarU8 => dot_u8(a, b),
        Variant::Vector => dot_vector(a, b),
    }
}

/// Dot product under the [`active_variant`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_variant(active_variant(), a, b)
}

/// Sparse (indexed) dot `Σ vals[i] · x[idx[i]]` — the CSR/BSPC SpMV inner
/// loop — under an explicit variant. On AVX2 the gather runs in-register
/// (`vgatherdps`); lane grouping matches [`dot_variant`] exactly.
///
/// # Panics
///
/// Panics if `vals` and `idx` lengths differ or an index is out of range
/// for `x`.
pub fn indexed_dot_variant(v: Variant, vals: &[f32], idx: &[u32], x: &[f32]) -> f32 {
    assert_eq!(vals.len(), idx.len(), "indexed_dot: length mismatch");
    if let Some(&max) = idx.iter().max() {
        assert!((max as usize) < x.len(), "indexed_dot: index out of range");
    }
    match v {
        Variant::ScalarU1 => indexed_dot_u1(vals, idx, x),
        Variant::ScalarU4 => indexed_dot_u4(vals, idx, x),
        Variant::ScalarU8 => indexed_dot_u8(vals, idx, x),
        Variant::Vector => indexed_dot_vector(vals, idx, x),
    }
}

/// Sparse (indexed) dot under the [`active_variant`].
///
/// # Panics
///
/// Panics if `vals` and `idx` lengths differ or an index is out of range.
pub fn indexed_dot(vals: &[f32], idx: &[u32], x: &[f32]) -> f32 {
    indexed_dot_variant(active_variant(), vals, idx, x)
}

/// `y += alpha * x` under an explicit variant.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy_variant(v: Variant, alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match v {
        Variant::ScalarU1 => axpy_u1(alpha, x, y),
        Variant::ScalarU4 => axpy_u4(alpha, x, y),
        Variant::ScalarU8 => axpy_u8(alpha, x, y),
        Variant::Vector => axpy_vector(alpha, x, y),
    }
}

/// `y += alpha * x` under the [`active_variant`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    axpy_variant(active_variant(), alpha, x, y)
}

/// Element-wise product `out[i] = a[i] * b[i]` under an explicit variant.
/// Bit-exact in every variant (one correctly-rounded multiply per element).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn hadamard_into_variant(v: Variant, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "hadamard: length mismatch");
    assert_eq!(a.len(), out.len(), "hadamard: output length mismatch");
    match v {
        Variant::ScalarU1 => hadamard_into_u1(a, b, out),
        Variant::ScalarU4 => hadamard_into_u4(a, b, out),
        Variant::ScalarU8 => hadamard_into_u8(a, b, out),
        Variant::Vector => hadamard_into_vector(a, b, out),
    }
}

/// Element-wise product under the [`active_variant`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn hadamard_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    hadamard_into_variant(active_variant(), a, b, out)
}

/// Batched dense dot under an explicit variant: `out[j] = Σₖ a[k]·xs[k·b+j]`
/// for each of the `b` interleaved lanes of `xs` (element `k` of lane `j`
/// lives at `xs[k·b + j]`).
///
/// Lane contract: `out[j]` is **bit-identical** to
/// [`dot_variant`]`(v, a, column_j)` — the SpMM building block inherits the
/// single-vector kernels' numeric behaviour per stream, in every variant.
///
/// # Panics
///
/// Panics if `out.len() != b` or `xs.len() != a.len() * b`.
pub fn dot_batch_variant(v: Variant, a: &[f32], xs: &[f32], b: usize, out: &mut [f32]) {
    assert_eq!(out.len(), b, "dot_batch: output length mismatch");
    assert_eq!(
        xs.len(),
        a.len() * b,
        "dot_batch: lane buffer length mismatch"
    );
    if b == 0 {
        return;
    }
    match v {
        Variant::ScalarU1 | Variant::ScalarU4 | Variant::ScalarU8 => {
            dot_batch_scalar(a, xs, b, out)
        }
        Variant::Vector => dot_batch_vector(a, xs, b, out),
    }
}

/// Batched dense dot under the [`active_variant`].
///
/// # Panics
///
/// Panics if `out.len() != b` or `xs.len() != a.len() * b`.
pub fn dot_batch(a: &[f32], xs: &[f32], b: usize, out: &mut [f32]) {
    dot_batch_variant(active_variant(), a, xs, b, out)
}

/// Batched sparse (indexed) dot under an explicit variant:
/// `out[j] = Σᵢ vals[i] · xs[idx[i]·b + j]` — the CSR/BSPC SpMM inner loop.
/// The index array is walked **once** for all `b` lanes, and the loads
/// across the batch dimension are unit-stride (no gathers even on rows with
/// irregular column patterns).
///
/// Lane contract: `out[j]` is **bit-identical** to
/// [`indexed_dot_variant`]`(v, vals, idx, column_j)` in every variant.
///
/// # Panics
///
/// Panics if `vals` and `idx` lengths differ, `out.len() != b`, `xs.len()`
/// is not a multiple of `b`, or an index is out of range for `xs.len() / b`
/// elements.
pub fn indexed_dot_batch_variant(
    v: Variant,
    vals: &[f32],
    idx: &[u32],
    xs: &[f32],
    b: usize,
    out: &mut [f32],
) {
    assert_eq!(vals.len(), idx.len(), "indexed_dot_batch: length mismatch");
    assert_eq!(out.len(), b, "indexed_dot_batch: output length mismatch");
    if b == 0 {
        return;
    }
    assert_eq!(
        xs.len() % b,
        0,
        "indexed_dot_batch: lane buffer not a multiple of the batch width"
    );
    if let Some(&max) = idx.iter().max() {
        assert!(
            (max as usize) < xs.len() / b,
            "indexed_dot_batch: index out of range"
        );
    }
    match v {
        Variant::ScalarU1 | Variant::ScalarU4 | Variant::ScalarU8 => {
            indexed_dot_batch_scalar(vals, idx, xs, b, out)
        }
        Variant::Vector => indexed_dot_batch_vector(vals, idx, xs, b, out),
    }
}

/// Batched sparse (indexed) dot under the [`active_variant`].
///
/// # Panics
///
/// As [`indexed_dot_batch_variant`].
pub fn indexed_dot_batch(vals: &[f32], idx: &[u32], xs: &[f32], b: usize, out: &mut [f32]) {
    indexed_dot_batch_variant(active_variant(), vals, idx, xs, b, out)
}

/// Broadcasts `bias[i]` into every lane of row `i` of a lane-major buffer:
/// `out[i·b + j] += bias[i]`.
///
/// One correctly-rounded add per element, so the result is bit-identical to
/// running `axpy(1.0, bias, column_j)` per lane under *every* variant — an
/// FMA with α = 1 rounds exactly like the plain add (`1.0 · x` is exact).
/// This is the batched GRU step's bias application; it needs no variant
/// parameter because all variants agree.
///
/// # Panics
///
/// Panics if `out.len() != bias.len() * b`.
pub fn broadcast_add(bias: &[f32], b: usize, out: &mut [f32]) {
    assert_eq!(out.len(), bias.len() * b, "broadcast_add: length mismatch");
    if b == 0 {
        return;
    }
    for (lanes, &bi) in out.chunks_exact_mut(b).zip(bias) {
        for o in lanes {
            *o += bi;
        }
    }
}

/// In-place sigmoid sweep under an explicit variant.
///
/// Every variant applies the same scalar, numerically-stable
/// `activations::sigmoid` per element — `libm`'s `exp` has no vector
/// counterpart that could honour the 4-ULP contract, so the "vector"
/// realization of the sweeps is the 8-wide unrolled loop and all variants
/// are bit-identical. The sweep's win is loop-overhead removal; the
/// transcendental dominates.
pub fn sigmoid_sweep_variant(v: Variant, xs: &mut [f32]) {
    use crate::activations::sigmoid;
    match v {
        Variant::ScalarU1 => {
            for x in xs {
                *x = sigmoid(*x);
            }
        }
        Variant::ScalarU4 => {
            let m = xs.len() - xs.len() % 4;
            for c in xs[..m].chunks_exact_mut(4) {
                c[0] = sigmoid(c[0]);
                c[1] = sigmoid(c[1]);
                c[2] = sigmoid(c[2]);
                c[3] = sigmoid(c[3]);
            }
            for x in &mut xs[m..] {
                *x = sigmoid(*x);
            }
        }
        Variant::ScalarU8 | Variant::Vector => {
            let m = xs.len() - xs.len() % 8;
            for c in xs[..m].chunks_exact_mut(8) {
                c[0] = sigmoid(c[0]);
                c[1] = sigmoid(c[1]);
                c[2] = sigmoid(c[2]);
                c[3] = sigmoid(c[3]);
                c[4] = sigmoid(c[4]);
                c[5] = sigmoid(c[5]);
                c[6] = sigmoid(c[6]);
                c[7] = sigmoid(c[7]);
            }
            for x in &mut xs[m..] {
                *x = sigmoid(*x);
            }
        }
    }
}

/// In-place sigmoid sweep under the [`active_variant`].
pub fn sigmoid_sweep(xs: &mut [f32]) {
    sigmoid_sweep_variant(active_variant(), xs)
}

/// In-place tanh sweep under an explicit variant (bit-identical across
/// variants; see [`sigmoid_sweep_variant`]).
pub fn tanh_sweep_variant(v: Variant, xs: &mut [f32]) {
    use crate::activations::tanh;
    match v {
        Variant::ScalarU1 => {
            for x in xs {
                *x = tanh(*x);
            }
        }
        Variant::ScalarU4 => {
            let m = xs.len() - xs.len() % 4;
            for c in xs[..m].chunks_exact_mut(4) {
                c[0] = tanh(c[0]);
                c[1] = tanh(c[1]);
                c[2] = tanh(c[2]);
                c[3] = tanh(c[3]);
            }
            for x in &mut xs[m..] {
                *x = tanh(*x);
            }
        }
        Variant::ScalarU8 | Variant::Vector => {
            let m = xs.len() - xs.len() % 8;
            for c in xs[..m].chunks_exact_mut(8) {
                c[0] = tanh(c[0]);
                c[1] = tanh(c[1]);
                c[2] = tanh(c[2]);
                c[3] = tanh(c[3]);
                c[4] = tanh(c[4]);
                c[5] = tanh(c[5]);
                c[6] = tanh(c[6]);
                c[7] = tanh(c[7]);
            }
            for x in &mut xs[m..] {
                *x = tanh(*x);
            }
        }
    }
}

/// In-place tanh sweep under the [`active_variant`].
pub fn tanh_sweep(xs: &mut [f32]) {
    tanh_sweep_variant(active_variant(), xs)
}

/// Spacing between consecutive `f32` values at magnitude `m` — the "ULP"
/// unit of the vector path's numeric contract. Subnormal-safe (clamps to
/// the smallest normal).
pub fn ulp_at(m: f32) -> f32 {
    let m = m.abs().max(f32::MIN_POSITIVE);
    f32::from_bits(m.to_bits() + 1) - m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_f32() * 2.0 - 1.0).collect()
    }

    #[test]
    fn scalar_unrolls_bit_exact_with_naive() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [0usize, 1, 3, 4, 7, 8, 9, 31, 64, 100, 257] {
            let a = rand_vec(n, &mut rng);
            let b = rand_vec(n, &mut rng);
            let want = dot_u1(&a, &b);
            assert_eq!(dot_variant(Variant::ScalarU4, &a, &b), want, "u4 n={n}");
            assert_eq!(dot_variant(Variant::ScalarU8, &a, &b), want, "u8 n={n}");
        }
    }

    #[test]
    fn vector_dot_within_ulp_contract() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 5, 8, 13, 64, 127, 1024] {
            let a = rand_vec(n, &mut rng);
            let b = rand_vec(n, &mut rng);
            let want = dot_variant(Variant::ScalarU1, &a, &b);
            let got = dot_variant(Variant::Vector, &a, &b);
            let mag: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            assert!(
                (got - want).abs() <= 4.0 * ulp_at(mag),
                "n={n}: {got} vs {want} (mag {mag})"
            );
        }
    }

    #[test]
    fn indexed_dot_matches_dense_gather() {
        // The order-discipline invariant: gathering into a dense scratch and
        // dotting must equal the in-register indexed dot, bit for bit, in
        // every variant.
        let mut rng = StdRng::seed_from_u64(23);
        for n in [0usize, 2, 8, 11, 29, 96, 250] {
            let x = rand_vec(300, &mut rng);
            let vals = rand_vec(n, &mut rng);
            let mut idx: Vec<u32> = (0..n).map(|_| rng.next_u32() % 300).collect();
            idx.sort_unstable();
            let gathered: Vec<f32> = idx.iter().map(|&c| x[c as usize]).collect();
            for v in Variant::ALL {
                assert_eq!(
                    indexed_dot_variant(v, &vals, &idx, &x),
                    dot_variant(v, &vals, &gathered),
                    "{} n={n}",
                    v.name()
                );
            }
        }
    }

    #[test]
    fn axpy_and_hadamard_all_variants() {
        let mut rng = StdRng::seed_from_u64(41);
        for n in [0usize, 1, 6, 8, 17, 130] {
            let x = rand_vec(n, &mut rng);
            let y0 = rand_vec(n, &mut rng);
            let mut want = y0.clone();
            axpy_u1(0.37, &x, &mut want);
            for v in [Variant::ScalarU4, Variant::ScalarU8] {
                let mut y = y0.clone();
                axpy_variant(v, 0.37, &x, &mut y);
                assert_eq!(y, want, "{} n={n}", v.name());
            }
            // Vector axpy contracts mul+add into one FMA per element.
            let mut y = y0.clone();
            axpy_variant(Variant::Vector, 0.37, &x, &mut y);
            for i in 0..n {
                let mag = (0.37 * x[i]).abs().max(y0[i].abs());
                assert!((y[i] - want[i]).abs() <= 4.0 * ulp_at(mag), "n={n} i={i}");
            }
            // Hadamard is one rounded multiply per element: exact everywhere.
            let b = rand_vec(n, &mut rng);
            let mut out_want = vec![0.0f32; n];
            hadamard_into_u1(&x, &b, &mut out_want);
            for v in Variant::ALL {
                let mut out = vec![f32::NAN; n];
                hadamard_into_variant(v, &x, &b, &mut out);
                assert_eq!(out, out_want, "{} n={n}", v.name());
            }
        }
    }

    #[test]
    fn sweeps_bit_identical_across_variants() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [0usize, 3, 8, 21, 100] {
            let base = rand_vec(n, &mut rng);
            let mut want_s = base.clone();
            sigmoid_sweep_variant(Variant::ScalarU1, &mut want_s);
            let mut want_t = base.clone();
            tanh_sweep_variant(Variant::ScalarU1, &mut want_t);
            for v in Variant::ALL {
                let mut s = base.clone();
                sigmoid_sweep_variant(v, &mut s);
                assert_eq!(s, want_s, "sigmoid {} n={n}", v.name());
                let mut t = base.clone();
                tanh_sweep_variant(v, &mut t);
                assert_eq!(t, want_t, "tanh {} n={n}", v.name());
            }
        }
    }

    #[test]
    fn batched_dot_lanes_match_serial_columns() {
        // The batched kernels' core contract: every lane is bit-identical to
        // the serial kernel of the same variant on that lane's column, across
        // ragged nnz counts AND ragged batch widths (tails on both axes).
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        for n in [0usize, 1, 5, 8, 9, 24, 61] {
            for b in [1usize, 2, 3, 4, 7, 8, 9, 16, 19] {
                let a = rand_vec(n, &mut rng);
                let xs = rand_vec(n * b, &mut rng);
                for v in Variant::ALL {
                    let mut out = vec![f32::NAN; b];
                    dot_batch_variant(v, &a, &xs, b, &mut out);
                    for (j, &oj) in out.iter().enumerate() {
                        let col: Vec<f32> = (0..n).map(|k| xs[k * b + j]).collect();
                        assert_eq!(
                            oj,
                            dot_variant(v, &a, &col),
                            "{} n={n} b={b} lane {j}",
                            v.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_indexed_dot_lanes_match_serial_columns() {
        let mut rng = StdRng::seed_from_u64(0x1BA7);
        let x_len = 90usize;
        for n in [0usize, 2, 8, 11, 29, 57] {
            for b in [1usize, 3, 4, 8, 13, 16] {
                let vals = rand_vec(n, &mut rng);
                let mut idx: Vec<u32> = (0..n).map(|_| rng.next_u32() % x_len as u32).collect();
                idx.sort_unstable();
                let xs = rand_vec(x_len * b, &mut rng);
                for v in Variant::ALL {
                    let mut out = vec![f32::NAN; b];
                    indexed_dot_batch_variant(v, &vals, &idx, &xs, b, &mut out);
                    for (j, &oj) in out.iter().enumerate() {
                        let col: Vec<f32> = (0..x_len).map(|c| xs[c * b + j]).collect();
                        assert_eq!(
                            oj,
                            indexed_dot_variant(v, &vals, &idx, &col),
                            "{} nnz={n} b={b} lane {j}",
                            v.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn broadcast_add_matches_per_lane_axpy() {
        let mut rng = StdRng::seed_from_u64(0xB1A5);
        for (h, b) in [(1usize, 1usize), (5, 3), (8, 8), (13, 4), (32, 9)] {
            let bias = rand_vec(h, &mut rng);
            let base = rand_vec(h * b, &mut rng);
            let mut got = base.clone();
            broadcast_add(&bias, b, &mut got);
            for v in Variant::ALL {
                for j in 0..b {
                    let mut col: Vec<f32> = (0..h).map(|i| base[i * b + j]).collect();
                    axpy_variant(v, 1.0, &bias, &mut col);
                    for i in 0..h {
                        assert_eq!(got[i * b + j], col[i], "{} h={h} b={b}", v.name());
                    }
                }
            }
        }
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(parse_policy("auto"), Some(SimdPolicy::Auto));
        assert_eq!(parse_policy("ON"), Some(SimdPolicy::Auto));
        assert_eq!(
            parse_policy("off"),
            Some(SimdPolicy::Fixed(Variant::ScalarU1))
        );
        assert_eq!(
            parse_policy("Scalar"),
            Some(SimdPolicy::Fixed(Variant::ScalarU1))
        );
        assert_eq!(
            parse_policy("u4"),
            Some(SimdPolicy::Fixed(Variant::ScalarU4))
        );
        assert_eq!(
            parse_policy("u8"),
            Some(SimdPolicy::Fixed(Variant::ScalarU8))
        );
        assert_eq!(
            parse_policy("vector"),
            Some(SimdPolicy::Fixed(Variant::Vector))
        );
        assert_eq!(parse_policy("bogus"), None);
    }

    #[test]
    fn variant_metadata() {
        assert_eq!(Variant::ScalarU1.name(), "scalar-u1");
        assert_eq!(Variant::ScalarU1.unroll(), 1);
        assert_eq!(Variant::ScalarU4.unroll(), 4);
        assert_eq!(Variant::ScalarU8.unroll(), 8);
        assert!(Variant::Vector.unroll() >= 1);
        // lane_width and ISA name agree with availability.
        if vector_available() {
            assert!(lane_width() >= 4);
            assert_ne!(vector_isa(), "none");
        } else {
            assert_eq!(lane_width(), 1);
            assert_eq!(vector_isa(), "none");
        }
    }

    #[test]
    fn ulp_spacing_sane() {
        assert_eq!(ulp_at(1.0), f32::EPSILON);
        assert!(ulp_at(0.0) > 0.0);
        assert!(ulp_at(1024.0) > ulp_at(1.0));
    }
}
