//! Scalar and slice activation functions with derivatives.
//!
//! The GRU cell (paper Fig. 1) uses the logistic sigmoid for its update and
//! reset gates and `tanh` for the candidate state; the classifier head uses
//! softmax + cross-entropy. Derivatives are expressed in terms of the
//! *activated* value (`y = f(x)`), which is what backpropagation has in hand.

/// Logistic sigmoid `1 / (1 + e^-x)`, numerically stable for large `|x|`.
///
/// # Example
///
/// ```
/// use rtm_tensor::activations::sigmoid;
/// assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
/// ```
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of sigmoid given the *activated* value `y = sigmoid(x)`.
pub fn sigmoid_deriv_from_output(y: f32) -> f32 {
    y * (1.0 - y)
}

/// Hyperbolic tangent.
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh given the *activated* value `y = tanh(x)`.
pub fn tanh_deriv_from_output(y: f32) -> f32 {
    1.0 - y * y
}

/// Rectified linear unit.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU given the pre-activation `x` (subgradient 0 at 0).
pub fn relu_deriv(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Applies sigmoid to every element in place.
///
/// Dispatched through the [`simd`](crate::simd) sweep kernels. All sweep
/// variants apply the same scalar stable [`sigmoid`] per element, so the
/// result is bit-identical under every
/// [`SimdPolicy`](crate::simd::SimdPolicy).
pub fn sigmoid_slice(xs: &mut [f32]) {
    crate::simd::sigmoid_sweep(xs);
}

/// Applies tanh to every element in place (see [`sigmoid_slice`] for the
/// dispatch contract).
pub fn tanh_slice(xs: &mut [f32]) {
    crate::simd::tanh_sweep(xs);
}

/// In-place numerically-stable softmax (subtracts the max before
/// exponentiating).
///
/// An empty slice is left unchanged.
pub fn softmax_slice(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

/// Cross-entropy loss `-log p[target]` of a probability vector with a clamp
/// protecting against `log(0)`.
///
/// # Panics
///
/// Panics if `target >= probs.len()`.
pub fn cross_entropy(probs: &[f32], target: usize) -> f32 {
    assert!(target < probs.len(), "target class out of range");
    -(probs[target].max(1e-12)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn sigmoid_known_values() {
        assert!(approx_eq(sigmoid(0.0), 0.5, 1e-7));
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        // symmetry: sigmoid(-x) = 1 - sigmoid(x)
        for x in [-3.0f32, -1.0, 0.5, 2.0] {
            assert!(approx_eq(sigmoid(-x), 1.0 - sigmoid(x), 1e-6));
        }
    }

    #[test]
    fn sigmoid_stable_extremes() {
        assert!(sigmoid(1e10).is_finite());
        assert!(sigmoid(-1e10).is_finite());
        assert_eq!(sigmoid(-1e10), 0.0);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-3f32;
        for x in [-2.0f32, -0.5, 0.0, 0.7, 1.5] {
            let fd = (sigmoid(x + h) - sigmoid(x - h)) / (2.0 * h);
            assert!(approx_eq(sigmoid_deriv_from_output(sigmoid(x)), fd, 1e-3));
            let fd_t = (tanh(x + h) - tanh(x - h)) / (2.0 * h);
            assert!(approx_eq(tanh_deriv_from_output(tanh(x)), fd_t, 1e-3));
        }
    }

    #[test]
    fn relu_behaviour() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
        assert_eq!(relu_deriv(-1.0), 0.0);
        assert_eq!(relu_deriv(1.0), 1.0);
        assert_eq!(relu_deriv(0.0), 0.0);
    }

    #[test]
    fn slice_activations() {
        let mut xs = vec![0.0, 100.0];
        sigmoid_slice(&mut xs);
        assert!(approx_eq(xs[0], 0.5, 1e-6));
        assert!(xs[1] > 0.999);
        let mut ys = vec![0.0, 1.0];
        tanh_slice(&mut ys);
        assert!(approx_eq(ys[1], 1.0f32.tanh(), 1e-6));
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax_slice(&mut xs);
        assert!(approx_eq(xs.iter().sum::<f32>(), 1.0, 1e-6));
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_handles_large_inputs() {
        let mut xs = vec![1000.0, 1000.0];
        softmax_slice(&mut xs);
        assert!(approx_eq(xs[0], 0.5, 1e-6));
        assert!(xs.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_empty_noop() {
        let mut xs: Vec<f32> = vec![];
        softmax_slice(&mut xs);
        assert!(xs.is_empty());
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_zero() {
        assert!(approx_eq(cross_entropy(&[0.0, 1.0], 1), 0.0, 1e-6));
        assert!(cross_entropy(&[0.5, 0.5], 0) > 0.6);
        // clamp prevents infinity
        assert!(cross_entropy(&[0.0, 1.0], 0).is_finite());
    }

    #[test]
    #[should_panic(expected = "target class out of range")]
    fn cross_entropy_bad_target_panics() {
        cross_entropy(&[1.0], 3);
    }
}
