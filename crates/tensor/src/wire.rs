//! Little-endian wire buffer traits — the workspace's offline replacement
//! for the `bytes` crate.
//!
//! The serialization code in `rtm-sparse::io` and `rtmobile::model_file`
//! only needs a small slice of the `bytes` API: append primitives to a
//! growable buffer and consume primitives from a shrinking slice. The trait
//! and method names match `bytes` so the call sites read identically.

/// Append-side buffer operations (implemented for `Vec<u8>`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends an `f32` in little-endian order.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Consume-side buffer operations (implemented for `&[u8]`, which advances
/// through the underlying bytes as values are read).
///
/// The `get_*`/`copy_to_slice`/`advance` methods panic when the buffer holds
/// fewer bytes than requested, matching `bytes`; decoders guard with
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copies `dst.len()` bytes out and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_f32_le(-1.5);
        out.put_slice(&[1, 2, 3]);

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 4 + 3);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16_le(), 0x1234);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_f32_le(), -1.5);
        let mut tail = [0u8; 3];
        buf.copy_to_slice(&mut tail);
        assert_eq!(tail, [1, 2, 3]);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u32_le(0x0102_0304);
        assert_eq!(out, [0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn advance_skips() {
        let mut buf: &[u8] = &[9, 9, 7];
        buf.advance(2);
        assert_eq!(buf.get_u8(), 7);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn short_read_panics() {
        let mut buf: &[u8] = &[1];
        buf.get_u32_le();
    }
}
