//! Little-endian wire buffer traits — the workspace's offline replacement
//! for the `bytes` crate.
//!
//! The serialization code in `rtm-sparse::io` and `rtmobile::model_file`
//! only needs a small slice of the `bytes` API: append primitives to a
//! growable buffer and consume primitives from a shrinking slice. The trait
//! and method names match `bytes` so the call sites read identically.

/// Append-side buffer operations (implemented for `Vec<u8>`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends an `f32` in little-endian order.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Consume-side buffer operations (implemented for `&[u8]`, which advances
/// through the underlying bytes as values are read).
///
/// The `get_*`/`copy_to_slice`/`advance` methods panic when the buffer holds
/// fewer bytes than requested, matching `bytes`; decoders guard with
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copies `dst.len()` bytes out and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Hard ceiling on a single frame's payload (16 MiB). A length prefix
/// above it is treated as corruption/abuse, not as a request to allocate:
/// the decoder surfaces [`FrameError::Oversized`] instead of growing its
/// buffer toward whatever a hostile peer claims.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Appends `payload` as one length-prefixed frame (`u32` little-endian
/// length, then the payload bytes) — the transport unit of the serve wire
/// protocol. Inverse of [`FrameDecoder::next_frame`].
///
/// Panics if the payload exceeds [`MAX_FRAME_LEN`]; encoders own their
/// payloads, so an oversized one is a local bug rather than peer input.
pub fn put_frame<B: BufMut>(out: &mut B, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame payload {} exceeds MAX_FRAME_LEN",
        payload.len()
    );
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
}

/// A frame declared a payload length over [`MAX_FRAME_LEN`] — the one
/// non-recoverable decode outcome (the stream offset is lost, so the
/// connection must be dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameOversized {
    /// The length the prefix claimed.
    pub claimed: usize,
}

impl std::fmt::Display for FrameOversized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame length {} exceeds maximum {}",
            self.claimed, MAX_FRAME_LEN
        )
    }
}

impl std::error::Error for FrameOversized {}

/// Incremental decoder for the length-prefixed framing written by
/// [`put_frame`].
///
/// Built for non-blocking sockets, where reads deliver arbitrary byte
/// runs: a `push` may carry half a length prefix, three frames at once, or
/// one byte of a large payload. Bytes accumulate internally and
/// [`next_frame`](FrameDecoder::next_frame) yields complete payloads in
/// order, returning `Ok(None)` while a frame is still torn.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read offset into `buf`; consumed bytes are compacted away lazily so
    /// steady-state decoding never reallocates.
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes received from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` is dead.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet yielded as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame payload, `Ok(None)` if the buffered
    /// bytes end mid-prefix or mid-payload (feed more via
    /// [`push`](FrameDecoder::push)), or [`FrameOversized`] if the prefix
    /// claims more than [`MAX_FRAME_LEN`].
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameOversized> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameOversized { claimed: len });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0102_0304_0506_0708);
        out.put_f32_le(-1.5);
        out.put_slice(&[1, 2, 3]);

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 4 + 3);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16_le(), 0x1234);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(buf.get_f32_le(), -1.5);
        let mut tail = [0u8; 3];
        buf.copy_to_slice(&mut tail);
        assert_eq!(tail, [1, 2, 3]);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u32_le(0x0102_0304);
        assert_eq!(out, [0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn advance_skips() {
        let mut buf: &[u8] = &[9, 9, 7];
        buf.advance(2);
        assert_eq!(buf.get_u8(), 7);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn short_read_panics() {
        let mut buf: &[u8] = &[1];
        buf.get_u32_le();
    }

    #[test]
    fn frame_roundtrip_multiple() {
        let mut out: Vec<u8> = Vec::new();
        put_frame(&mut out, b"hello");
        put_frame(&mut out, b"");
        put_frame(&mut out, &[7u8; 300]);

        let mut dec = FrameDecoder::new();
        dec.push(&out);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"hello");
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"");
        assert_eq!(dec.next_frame().unwrap().unwrap(), vec![7u8; 300]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn torn_prefix_and_payload_resume_cleanly() {
        let mut out: Vec<u8> = Vec::new();
        put_frame(&mut out, b"abcdef");
        put_frame(&mut out, b"xyz");

        // Deliver the stream one byte at a time: every intermediate state
        // is a torn prefix or torn payload, and each frame appears exactly
        // once, intact, at the byte that completes it.
        let mut dec = FrameDecoder::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for b in &out {
            dec.push(std::slice::from_ref(b));
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, vec![b"abcdef".to_vec(), b"xyz".to_vec()]);
    }

    #[test]
    fn oversized_prefix_is_rejected_not_allocated() {
        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err.claimed, MAX_FRAME_LEN + 1);
        assert!(err.to_string().contains("exceeds maximum"));
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        let mut dec = FrameDecoder::new();
        let mut out: Vec<u8> = Vec::new();
        put_frame(&mut out, &[1u8; 2048]);
        // Many frames through the same decoder: the internal buffer must
        // not grow with the total bytes ever pushed.
        for _ in 0..64 {
            dec.push(&out);
            assert!(dec.next_frame().unwrap().is_some());
        }
        assert!(dec.buf.len() < 3 * out.len(), "buffer grew unboundedly");
    }
}
