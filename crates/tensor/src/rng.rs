//! Vendored deterministic PRNG — the workspace's offline replacement for
//! the `rand` crate.
//!
//! The build environment has no registry access, so the few primitives the
//! workspace needs (seeded stream, uniform floats, bounded integers) are
//! implemented here directly: a [xoshiro256**] generator seeded through
//! SplitMix64, the combination recommended by the xoshiro authors. The type
//! is named [`StdRng`] so existing call sites keep reading naturally; the
//! stream is stable across platforms and releases, which the seeded
//! experiments rely on.
//!
//! [xoshiro256**]: https://prng.di.unimi.it/

use std::ops::{Range, RangeInclusive};

/// A small, fast, seedable pseudo-random generator (xoshiro256**).
///
/// Not cryptographically secure — this is an experiment-reproducibility
/// stream, nothing more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    ///
    /// The four xoshiro words are expanded from the seed with SplitMix64,
    /// as the xoshiro reference implementation prescribes, so nearby seeds
    /// still produce decorrelated streams.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform sample from `range`; supports `Range`/`RangeInclusive` of
    /// `f32` and `usize`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range (`lo >= hi` for half-open, `lo > hi` for
    /// inclusive), matching `rand`'s contract.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fills `buf` with random bytes (used by the decoder fuzz tests).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Range types [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty f32 range");
        let v = self.start + rng.gen_f32() * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; nudge back in.
        if v < self.end {
            v
        } else {
            self.start.max(f32::from_bits(self.end.to_bits() - 1))
        }
    }
}

impl SampleRange for RangeInclusive<f32> {
    type Output = f32;
    fn sample(self, rng: &mut StdRng) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f32 range");
        lo + rng.gen_f32() * (hi - lo)
    }
}

/// Unbiased-enough bounded integer via the 128-bit multiply reduction.
fn bounded(rng: &mut StdRng, width: u64) -> u64 {
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "gen_range: empty usize range");
        self.start + bounded(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty usize range");
        lo + bounded(rng, (hi - lo) as u64 + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f32_in_unit_interval_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let v = rng.gen_f32();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let u = rng.gen_range(3usize..7);
            assert!((3..7).contains(&u));
            let v = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&v));
        }
    }

    #[test]
    fn usize_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn degenerate_inclusive_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(rng.gen_range(4usize..=4), 4);
        assert_eq!(rng.gen_range(1.5f32..=1.5), 1.5);
    }

    #[test]
    #[should_panic(expected = "empty usize range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(3usize..3);
    }

    #[test]
    fn fill_bytes_varies() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        rng.fill_bytes(&mut a);
        rng.fill_bytes(&mut b);
        assert_ne!(a, b);
    }
}
