#![warn(missing_docs)]

//! # rtm-tensor
//!
//! Dense linear-algebra substrate for the RTMobile reproduction.
//!
//! This crate provides the numeric foundation every other crate builds on:
//!
//! * [`Matrix`] — a row-major, heap-allocated `f32` matrix with shape-checked
//!   arithmetic, slicing and mapping helpers.
//! * [`gemm`] — general matrix multiply / matrix-vector kernels, including a
//!   cache-blocked variant used by the dense baselines.
//! * [`activations`] — sigmoid / tanh / ReLU / softmax and their derivatives,
//!   as used by the GRU and LSTM cells in `rtm-rnn`.
//! * [`mod@f16`] — a software IEEE 754 binary16 module modelling the paper's
//!   16-bit-float mobile-GPU datapath (§V, Table II caption).
//! * [`init`] — seeded weight initializers (Xavier/He/uniform) so every
//!   experiment is reproducible from a `u64` seed.
//! * [`stats`] — column/row norms, top-k selection and summary statistics
//!   used by the pruning mask projections.
//! * [`rng`] — a vendored deterministic PRNG (the workspace builds offline,
//!   with no registry access).
//! * [`wire`] — little-endian buffer read/write traits used by the
//!   serialization formats in `rtm-sparse` and `rtmobile`.
//!
//! # Example
//!
//! ```
//! use rtm_tensor::{Matrix, gemm};
//!
//! # fn main() -> Result<(), rtm_tensor::ShapeError> {
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
//! let b = Matrix::identity(2);
//! let c = gemm::matmul(&a, &b)?;
//! assert_eq!(c, a);
//! # Ok(())
//! # }
//! ```

pub mod activations;
pub mod f16;
pub mod gemm;
pub mod init;
pub mod matrix;
pub mod quant;
pub mod rng;
pub mod simd;
pub mod simd_i8;
pub mod stats;
pub mod vector;
pub mod wire;

pub use f16::F16;
pub use matrix::{Matrix, ShapeError};
pub use quant::QuantizedMatrix;
pub use vector::Vector;

/// Absolute tolerance used by the test suites when comparing floats that went
/// through different (but mathematically equivalent) computation orders.
pub const TEST_EPSILON: f32 = 1e-4;

/// Returns `true` when `a` and `b` are within `tol` of each other,
/// treating NaNs as never equal.
///
/// # Example
///
/// ```
/// assert!(rtm_tensor::approx_eq(1.0, 1.0 + 1e-6, 1e-4));
/// assert!(!rtm_tensor::approx_eq(1.0, 1.1, 1e-4));
/// ```
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(0.0, 0.0, 0.0));
        assert!(approx_eq(1.0, 1.00001, 1e-3));
        assert!(!approx_eq(1.0, 2.0, 0.5));
    }

    #[test]
    fn approx_eq_rejects_nan() {
        assert!(!approx_eq(f32::NAN, f32::NAN, 1.0));
        assert!(!approx_eq(0.0, f32::NAN, 1.0));
    }
}
