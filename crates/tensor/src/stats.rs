//! Norms, top-k selection and summary statistics over matrices.
//!
//! These are the primitives the ADMM projections in `rtm-pruning` are built
//! from: BSP step 1 keeps the top-k *column norms inside each block*, step 2
//! keeps the top-k *row norms of the whole matrix*; the baselines use
//! element magnitudes or bank-local magnitudes. Keeping the selection logic
//! here lets the pruning crate stay purely about mask policy.

use crate::matrix::Matrix;

/// L2 norm of every row; `out[r] = ||W[r, :]||₂`.
pub fn row_norms(m: &Matrix) -> Vec<f32> {
    (0..m.rows())
        .map(|r| m.row(r).iter().map(|v| v * v).sum::<f32>().sqrt())
        .collect()
}

/// L2 norm of every column; `out[c] = ||W[:, c]||₂`.
pub fn col_norms(m: &Matrix) -> Vec<f32> {
    let mut sums = vec![0.0f32; m.cols()];
    for r in 0..m.rows() {
        for (c, &v) in m.row(r).iter().enumerate() {
            sums[c] += v * v;
        }
    }
    sums.into_iter().map(f32::sqrt).collect()
}

/// L2 norms of the columns of a sub-block `rows × [col_start, col_end)`.
pub fn block_col_norms(
    m: &Matrix,
    row_start: usize,
    row_end: usize,
    col_start: usize,
    col_end: usize,
) -> Vec<f32> {
    let mut sums = vec![0.0f32; col_end - col_start];
    for r in row_start..row_end {
        let row = m.row(r);
        for (i, c) in (col_start..col_end).enumerate() {
            sums[i] += row[c] * row[c];
        }
    }
    sums.into_iter().map(f32::sqrt).collect()
}

/// Indices of the `k` largest values of `scores`, in descending score order.
///
/// Ties break toward the lower index so the result is deterministic.
/// When `k >= scores.len()` all indices are returned.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k.min(scores.len()));
    idx
}

/// The `k`-th largest absolute value of a matrix (1-indexed: `k = 1` gives
/// the max). Returns `0.0` for `k = 0` or an empty matrix.
///
/// Used by magnitude pruning to derive a global threshold.
pub fn kth_largest_abs(m: &Matrix, k: usize) -> f32 {
    if k == 0 || m.is_empty() {
        return 0.0;
    }
    let mut mags: Vec<f32> = m.as_slice().iter().map(|v| v.abs()).collect();
    let k = k.min(mags.len());
    // Select the k-th largest (0-indexed k-1 in descending order).
    let target = k - 1;
    mags.select_nth_unstable_by(target, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    mags[target]
}

/// Mean and (population) variance of all elements.
pub fn mean_var(m: &Matrix) -> (f32, f32) {
    if m.is_empty() {
        return (0.0, 0.0);
    }
    let n = m.len() as f32;
    let mean = m.sum() / n;
    let var = m.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
    (mean, var)
}

/// Histogram of row nonzero counts, used by the compiler's reorder analysis
/// to estimate thread-divergence before and after grouping.
pub fn row_nnz_histogram(m: &Matrix) -> Vec<usize> {
    (0..m.rows())
        .map(|r| m.row(r).iter().filter(|&&v| v != 0.0).count())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn row_and_col_norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert_eq!(row_norms(&m), vec![3.0, 4.0]);
        assert_eq!(col_norms(&m), vec![3.0, 4.0]);
    }

    #[test]
    fn block_col_norms_subrange() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 2.0], &[0.0, 2.0, 1.0]]).unwrap();
        // Columns 1..3 over both rows: col1 = sqrt(4+4), col2 = sqrt(4+1)
        let norms = block_col_norms(&m, 0, 2, 1, 3);
        assert!(approx_eq(norms[0], 8.0f32.sqrt(), 1e-6));
        assert!(approx_eq(norms[1], 5.0f32.sqrt(), 1e-6));
        // Row-restricted block.
        let norms = block_col_norms(&m, 1, 2, 0, 3);
        assert_eq!(norms, vec![0.0, 2.0, 1.0]);
    }

    #[test]
    fn top_k_descending_with_ties() {
        let scores = [1.0, 3.0, 3.0, 2.0];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 2]);
        assert_eq!(top_k_indices(&scores, 10), vec![1, 2, 3, 0]);
        assert!(top_k_indices(&scores, 0).is_empty());
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn kth_largest_magnitude() {
        let m = Matrix::from_vec(1, 5, vec![-5.0, 1.0, 3.0, -2.0, 4.0]).unwrap();
        assert_eq!(kth_largest_abs(&m, 1), 5.0);
        assert_eq!(kth_largest_abs(&m, 2), 4.0);
        assert_eq!(kth_largest_abs(&m, 5), 1.0);
        assert_eq!(kth_largest_abs(&m, 100), 1.0);
        assert_eq!(kth_largest_abs(&m, 0), 0.0);
        assert_eq!(kth_largest_abs(&Matrix::zeros(0, 0), 1), 0.0);
    }

    #[test]
    fn mean_var_known() {
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let (mean, var) = mean_var(&m);
        assert!(approx_eq(mean, 2.5, 1e-6));
        assert!(approx_eq(var, 1.25, 1e-6));
        assert_eq!(mean_var(&Matrix::zeros(0, 0)), (0.0, 0.0));
    }

    #[test]
    fn nnz_histogram() {
        let m = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0]]).unwrap();
        assert_eq!(row_nnz_histogram(&m), vec![2, 0]);
    }
}
